//! The end-to-end extraction pipeline: pages in, per-attribute
//! (site, entity) occurrence tables out.
//!
//! This is the paper's §3.1 methodology: "for each domain, we go through
//! the entire Web cache and look for the identifying attributes of the
//! entities on each page. We group pages by hosts, and for each host, we
//! aggregate the set of entities found on all the pages in that host."

use crate::html;
use crate::isbn_scan::for_each_isbn;
use crate::nb::NaiveBayes;
use crate::phone_scan::for_each_phone;
use webstruct_corpus::domain::Attribute;
use webstruct_corpus::entity::EntityCatalog;
use webstruct_corpus::page::{Page, PageConfig, PageScratch, PageStream};
use webstruct_corpus::web::Web;
use webstruct_util::hash::{FxHashMap, FxHashSet};
use webstruct_util::ids::{EntityId, SiteId};
use webstruct_util::obs::{self, LocalHistogram};
use webstruct_util::par;
use webstruct_util::rng::Seed;

/// What one page yielded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageExtraction {
    /// Entities matched via phone numbers.
    pub phone_entities: Vec<EntityId>,
    /// Entities matched via ISBNs.
    pub isbn_entities: Vec<EntityId>,
    /// Entities matched via homepage hrefs.
    pub homepage_entities: Vec<EntityId>,
    /// Phone matches that hit no catalog entity (precision diagnostics).
    pub unmatched_phones: u32,
    /// ISBN matches that hit no catalog entity.
    pub unmatched_isbns: u32,
    /// Anchor hosts that matched no catalog homepage.
    pub unmatched_hrefs: u32,
    /// Review-classifier verdict (false when no classifier is installed).
    pub is_review: bool,
    /// Whether this extraction ran on a truncated page (partial yield).
    pub truncated: bool,
}

impl PageExtraction {
    /// Reset to the empty extraction, keeping the entity `Vec` capacities —
    /// the hot path reuses one `PageExtraction` across every page.
    pub fn clear(&mut self) {
        self.phone_entities.clear();
        self.isbn_entities.clear();
        self.homepage_entities.clear();
        self.unmatched_phones = 0;
        self.unmatched_isbns = 0;
        self.unmatched_hrefs = 0;
        self.is_review = false;
        self.truncated = false;
    }
}

/// Every buffer the per-page extraction work needs, allocated once and
/// reused across pages. Steady state (after the buffers have grown to the
/// largest page seen) the render→extract hot path allocates nothing.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    /// The rendered page, written in place by the fused stream.
    page: PageScratch,
    bufs: PageBuffers,
}

impl ExtractScratch {
    /// Fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent per-page extraction result.
    #[must_use]
    pub fn extraction(&self) -> &PageExtraction {
        &self.bufs.extraction
    }

    /// The most recently rendered page (fused stream path only).
    #[must_use]
    pub fn page(&self) -> &PageScratch {
        &self.page
    }
}

/// The reusable per-page working buffers, separate from [`PageScratch`] so
/// the fused loop can borrow the rendered page text and the buffers
/// disjointly.
#[derive(Debug, Default)]
struct PageBuffers {
    /// Tag-stripped visible text.
    text: String,
    /// Token assembly buffer for the review classifier.
    tokens: String,
    /// Normalised anchor host.
    host: String,
    seen_phones: FxHashSet<EntityId>,
    seen_isbns: FxHashSet<EntityId>,
    seen_homepages: FxHashSet<EntityId>,
    extraction: PageExtraction,
}

/// The extractor: catalog indexes plus an optional review classifier.
pub struct Extractor<'a> {
    catalog: &'a EntityCatalog,
    review_clf: Option<NaiveBayes>,
}

impl<'a> Extractor<'a> {
    /// Build an extractor without review classification.
    #[must_use]
    pub fn new(catalog: &'a EntityCatalog) -> Self {
        Extractor {
            catalog,
            review_clf: None,
        }
    }

    /// Install a review classifier (required for the Review attribute).
    #[must_use]
    pub fn with_review_classifier(mut self, clf: NaiveBayes) -> Self {
        self.review_clf = Some(clf);
        self
    }

    /// The allocation-free core: extract everything from one page body
    /// into the reused buffers. Result lands in `bufs.extraction`.
    fn extract_html_into(&self, html: &str, bufs: &mut PageBuffers) {
        let PageBuffers {
            text,
            tokens,
            host,
            seen_phones,
            seen_isbns,
            seen_homepages,
            extraction,
        } = bufs;
        extraction.clear();
        seen_phones.clear();
        seen_isbns.clear();
        seen_homepages.clear();
        html::strip_tags_into(html, text);

        for_each_phone(text, |m| match self.catalog.by_phone(m.phone.digits()) {
            Some(e) => {
                if seen_phones.insert(e) {
                    extraction.phone_entities.push(e);
                }
            }
            None => extraction.unmatched_phones += 1,
        });

        for_each_isbn(text, |m| match self.catalog.by_isbn(m.isbn.core()) {
            Some(e) => {
                if seen_isbns.insert(e) {
                    extraction.isbn_entities.push(e);
                }
            }
            None => extraction.unmatched_isbns += 1,
        });

        html::for_each_anchor_href(html, |href, _offset| {
            if !html::url_host_into(href, host) {
                extraction.unmatched_hrefs += 1;
                return;
            }
            match self.catalog.by_homepage(host) {
                Some(e) => {
                    if seen_homepages.insert(e) {
                        extraction.homepage_entities.push(e);
                    }
                }
                None => extraction.unmatched_hrefs += 1,
            }
        });

        if let Some(clf) = &self.review_clf {
            extraction.is_review = clf.is_review_with(text, tokens);
        }
    }

    /// Truncate `full_text` to the leading `frac` (backed off to a UTF-8
    /// character boundary) and extract the partial page. Returns the
    /// number of bytes that actually entered extraction.
    fn extract_prefix_parts(&self, full_text: &str, frac: f64, bufs: &mut PageBuffers) -> usize {
        let keep = (full_text.len() as f64 * frac.clamp(0.0, 1.0)) as usize;
        let cut = html::truncate_at_char_boundary(full_text, keep);
        self.extract_html_into(cut, bufs);
        bufs.extraction.truncated = true;
        cut.len()
    }

    /// Extract everything from one page.
    ///
    /// Owned-result convenience over [`Extractor::extract_page_into`]:
    /// allocates fresh working buffers per call. Loops should reuse an
    /// [`ExtractScratch`] instead.
    #[must_use]
    pub fn extract_page(&self, page: &Page) -> PageExtraction {
        let mut bufs = PageBuffers::default();
        self.extract_html_into(&page.text, &mut bufs);
        bufs.extraction
    }

    /// Extract everything from one page through reused scratch buffers.
    /// Steady state this allocates nothing beyond entity-set growth.
    pub fn extract_page_into<'s>(
        &self,
        page: &Page,
        scratch: &'s mut ExtractScratch,
    ) -> &'s PageExtraction {
        self.extract_html_into(&page.text, &mut scratch.bufs);
        &scratch.bufs.extraction
    }

    /// Extract from a page of which only the leading `frac` of the body
    /// arrived — what a truncated fetch leaves the pipeline. The cut is
    /// backed off to a UTF-8 character boundary, so partial pages never
    /// panic the scanners; whatever matches survive the cut are yielded
    /// as a partial extraction with [`PageExtraction::truncated`] set.
    #[must_use]
    pub fn extract_page_prefix(&self, page: &Page, frac: f64) -> PageExtraction {
        let mut bufs = PageBuffers::default();
        self.extract_prefix_parts(&page.text, frac, &mut bufs);
        bufs.extraction
    }

    /// [`Extractor::extract_page_prefix`] through reused scratch buffers —
    /// the truncation path no longer clones the page.
    pub fn extract_prefix_into<'s>(
        &self,
        page: &Page,
        frac: f64,
        scratch: &'s mut ExtractScratch,
    ) -> &'s PageExtraction {
        self.extract_prefix_parts(&page.text, frac, &mut scratch.bufs);
        &scratch.bufs.extraction
    }

    /// Run the full pipeline over a stream of owned pages.
    ///
    /// The compatibility path for callers that already hold `Page` values
    /// (tests, the crawler): working buffers are reused across pages, but
    /// each page body was still allocated by whoever built the iterator.
    /// The fused [`Extractor::extract_stream`] renders and extracts
    /// through one scratch without materialising pages at all.
    #[must_use]
    pub fn extract_all<I>(&self, n_sites: usize, pages: I) -> ExtractedWeb
    where
        I: IntoIterator<Item = Page>,
    {
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        let mut bufs = PageBuffers::default();
        for page in pages {
            self.extract_html_into(&page.text, &mut bufs);
            acc.bytes_rendered += page.text.len() as u64;
            acc.page_bytes.record(page.text.len() as u64);
            acc.ingest(page.site, &bufs.extraction);
        }
        acc
    }

    /// Run the fused render→extract loop: each page is rendered into
    /// `scratch` and extracted in place, so steady state the whole hot
    /// path performs zero heap allocations per page.
    #[must_use]
    pub fn extract_stream(
        &self,
        n_sites: usize,
        pages: &mut PageStream<'_>,
        scratch: &mut ExtractScratch,
    ) -> ExtractedWeb {
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        self.extract_stream_into(pages, scratch, &mut acc);
        acc
    }

    /// [`Extractor::extract_stream`] into a caller-owned accumulator —
    /// the fully pooled path: with `acc` reused across runs (see
    /// [`ExtractPool`]) even the accumulator's sets stop allocating once
    /// they have grown to the workload.
    pub fn extract_stream_into(
        &self,
        pages: &mut PageStream<'_>,
        scratch: &mut ExtractScratch,
        acc: &mut ExtractedWeb,
    ) {
        let ExtractScratch { page, bufs } = scratch;
        while pages.render_into(page) {
            self.extract_html_into(page.text(), bufs);
            acc.bytes_rendered += page.text().len() as u64;
            acc.page_bytes.record(page.text().len() as u64);
            acc.ingest(page.site(), &bufs.extraction);
        }
    }

    /// Run the pipeline over a page stream served by a faulty web. The
    /// fault coordinate for a page is its per-site ordinal, so the
    /// decision stream is independent of how sites interleave in the
    /// input. Pages from dead sites and pages whose fetch failed are
    /// skipped (counted in [`ExtractedWeb::skipped_pages`]); truncated
    /// pages yield partial extractions via
    /// [`Extractor::extract_page_prefix`].
    #[must_use]
    pub fn extract_all_faulty<I>(
        &self,
        n_sites: usize,
        pages: I,
        plan: &webstruct_util::fault::FaultPlan,
    ) -> ExtractedWeb
    where
        I: IntoIterator<Item = Page>,
    {
        use webstruct_util::fault::Fault;
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        let mut ordinal = vec![0u32; n_sites];
        let mut bufs = PageBuffers::default();
        for page in pages {
            let s = page.site.index();
            let attempt = ordinal[s];
            ordinal[s] += 1;
            match plan.fault(s, attempt) {
                None => {
                    self.extract_html_into(&page.text, &mut bufs);
                    acc.bytes_rendered += page.text.len() as u64;
                    acc.page_bytes.record(page.text.len() as u64);
                    acc.ingest(page.site, &bufs.extraction);
                }
                Some(Fault::Truncated(frac)) => {
                    let kept = self.extract_prefix_parts(&page.text, frac, &mut bufs);
                    acc.bytes_rendered += kept as u64;
                    acc.page_bytes.record(kept as u64);
                    acc.ingest(page.site, &bufs.extraction);
                }
                Some(_) => acc.skipped_pages += 1,
            }
        }
        acc
    }

    /// Render and extract every page of `web`, sharding sites across
    /// `threads` workers.
    ///
    /// Pages aggregate per host (§3.1), so partitioning *sites* across
    /// workers keeps each site's accumulation local to one shard. Each
    /// shard renders its own [`PageStream::for_site_range`] — page
    /// rendering is a pure function of `(seed, page id)`, and every shard
    /// is told its first global page id — so the merged result is
    /// byte-identical to [`Extractor::extract_all`] over the full stream.
    /// `threads == 1` takes the sequential path exactly.
    #[must_use]
    pub fn extract_web(
        &self,
        web: &Web,
        config: &PageConfig,
        seed: Seed,
        threads: usize,
    ) -> ExtractedWeb {
        let n_sites = web.n_sites();
        let _span = webstruct_util::span!("extract_web", n_sites, threads);
        if threads <= 1 || n_sites <= 1 {
            let mut pages = PageStream::new(web, self.catalog, config.clone(), seed);
            let mut scratch = ExtractScratch::new();
            let acc = self.extract_stream(n_sites, &mut pages, &mut scratch);
            acc.publish_metrics();
            return acc;
        }
        // First global page id of every site, by prefix sum.
        let mut first_page = vec![0u32; n_sites + 1];
        for i in 0..n_sites {
            first_page[i + 1] = first_page[i] + PageStream::site_page_count(web, config, i);
        }
        let total_pages = first_page[n_sites];
        // Cut sites into contiguous shards of roughly equal page counts
        // (site sizes are heavy-tailed; balancing by site count alone
        // leaves the aggregator-bearing shard dominating the wall clock).
        let k = threads.min(n_sites);
        let mut shards: Vec<std::ops::Range<usize>> = Vec::with_capacity(k);
        let mut start = 0usize;
        for s in 0..k {
            let target = (u64::from(total_pages) * (s as u64 + 1) / k as u64) as u32;
            let mut end = start;
            while end < n_sites && (first_page[end + 1] <= target || end < start + 1) {
                end += 1;
            }
            if s == k - 1 {
                end = n_sites;
            }
            shards.push(start..end);
            start = end;
        }
        let merged = par::par_map_threads(threads, shards, |sites| {
            let lo = sites.start;
            let hi = sites.end;
            let _shard_span = webstruct_util::span!("extract_shard", lo, hi);
            let mut pages = PageStream::for_site_range(
                web,
                self.catalog,
                config.clone(),
                seed,
                sites,
                first_page[lo],
            );
            // One scratch per shard: workers never share buffers.
            let mut scratch = ExtractScratch::new();
            self.extract_stream(n_sites, &mut pages, &mut scratch)
        })
        .into_iter()
        .fold(
            ExtractedWeb::new(n_sites, self.catalog.len()),
            |mut acc, shard| {
                acc.merge(shard);
                acc
            },
        );
        merged.publish_metrics();
        merged
    }

    /// [`Extractor::extract_web`] through a caller-owned [`ExtractPool`]:
    /// identical output (same sharding, same per-shard streams), but every
    /// piece of per-run state — shard scratches, shard accumulators, the
    /// merged accumulator, the prefix-sum and shard-range vectors — is
    /// reused across calls. After one warmup call the extraction runs in
    /// true steady state at every thread count.
    pub fn extract_web_pooled<'p>(
        &self,
        web: &Web,
        config: &PageConfig,
        seed: Seed,
        threads: usize,
        pool: &'p mut ExtractPool,
    ) -> &'p ExtractedWeb {
        let n_sites = web.n_sites();
        let n_entities = self.catalog.len();
        let _span = webstruct_util::span!("extract_web", n_sites, threads);
        if threads <= 1 || n_sites <= 1 {
            if pool.shards.is_empty() {
                pool.shards
                    .push((ExtractScratch::new(), ExtractedWeb::new(n_sites, n_entities)));
            }
            let (scratch, acc) = &mut pool.shards[0];
            acc.reset_for(n_sites, n_entities);
            let mut pages = PageStream::new(web, self.catalog, config.clone(), seed);
            self.extract_stream_into(&mut pages, scratch, acc);
            acc.publish_metrics();
            return &pool.shards[0].1;
        }
        // Identical shard computation to `extract_web`, into reused vectors.
        pool.first_page.clear();
        pool.first_page.resize(n_sites + 1, 0);
        for i in 0..n_sites {
            pool.first_page[i + 1] =
                pool.first_page[i] + PageStream::site_page_count(web, config, i);
        }
        let total_pages = pool.first_page[n_sites];
        let k = threads.min(n_sites);
        pool.ranges.clear();
        let mut start = 0usize;
        for s in 0..k {
            let target = (u64::from(total_pages) * (s as u64 + 1) / k as u64) as u32;
            let mut end = start;
            while end < n_sites && (pool.first_page[end + 1] <= target || end < start + 1) {
                end += 1;
            }
            if s == k - 1 {
                end = n_sites;
            }
            pool.ranges.push(start..end);
            start = end;
        }
        while pool.shards.len() < k {
            pool.shards
                .push((ExtractScratch::new(), ExtractedWeb::new(n_sites, n_entities)));
        }
        for (_, acc) in &mut pool.shards[..k] {
            acc.reset_for(n_sites, n_entities);
        }
        let first_page = &pool.first_page;
        let items: Vec<(std::ops::Range<usize>, &mut (ExtractScratch, ExtractedWeb))> = pool
            .ranges
            .iter()
            .cloned()
            .zip(pool.shards[..k].iter_mut())
            .collect();
        par::par_map_threads(threads, items, |(sites, shard)| {
            let lo = sites.start;
            let hi = sites.end;
            let _shard_span = webstruct_util::span!("extract_shard", lo, hi);
            let mut pages = PageStream::for_site_range(
                web,
                self.catalog,
                config.clone(),
                seed,
                sites,
                first_page[lo],
            );
            let (scratch, acc) = shard;
            self.extract_stream_into(&mut pages, scratch, acc);
        });
        pool.merged.reset_for(n_sites, n_entities);
        for (_, acc) in &pool.shards[..k] {
            pool.merged.merge_ref(acc);
        }
        pool.merged.publish_metrics();
        &pool.merged
    }
}

/// Reusable state for repeated [`Extractor::extract_web_pooled`] runs.
///
/// Holds one `(ExtractScratch, ExtractedWeb)` pair per shard plus the
/// merged accumulator and the sharding vectors, so a benchmark loop (or a
/// long-lived service) pays per-run setup allocations exactly once instead
/// of on every call — previously that setup was charged to the measured
/// window and made `bytes_alloc_per_page` climb with thread count.
#[derive(Default)]
pub struct ExtractPool {
    shards: Vec<(ExtractScratch, ExtractedWeb)>,
    merged: ExtractedWeb,
    first_page: Vec<u32>,
    ranges: Vec<std::ops::Range<usize>>,
}

impl ExtractPool {
    /// An empty pool; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        ExtractPool::default()
    }
}

/// Aggregated extraction results, grouped by host as in the paper.
#[derive(Debug, Clone)]
pub struct ExtractedWeb {
    n_entities: usize,
    phone: Vec<FxHashSet<EntityId>>,
    isbn: Vec<FxHashSet<EntityId>>,
    homepage: Vec<FxHashSet<EntityId>>,
    /// Review *pages* per (site, entity): Figure 4(b) counts pages.
    review_pages: Vec<FxHashMap<EntityId, u32>>,
    /// Diagnostics.
    pub pages_processed: u64,
    /// Total bytes of page text that entered extraction (truncated pages
    /// count only the bytes that survived the cut). Drives MB/sec
    /// throughput reporting in the bench.
    pub bytes_rendered: u64,
    /// Phone matches not in the catalog (noise hits).
    pub unmatched_phones: u64,
    /// ISBN matches not in the catalog.
    pub unmatched_isbns: u64,
    /// Anchors pointing outside the catalog.
    pub unmatched_hrefs: u64,
    /// Pages ingested from truncated fetches (partial yield).
    pub truncated_pages: u64,
    /// Pages dropped entirely (dead site or failed fetch).
    pub skipped_pages: u64,
    /// Log₂-bucketed distribution of per-page text sizes — scratch-local
    /// (plain array increments on the hot path), merged shard-wise with
    /// the rest of the accumulator and published once per
    /// [`Extractor::extract_web`] run.
    pub page_bytes: LocalHistogram,
}

impl ExtractedWeb {
    /// Empty accumulator for `n_sites` sites.
    #[must_use]
    pub fn new(n_sites: usize, n_entities: usize) -> Self {
        ExtractedWeb {
            n_entities,
            phone: vec![FxHashSet::default(); n_sites],
            isbn: vec![FxHashSet::default(); n_sites],
            homepage: vec![FxHashSet::default(); n_sites],
            review_pages: vec![FxHashMap::default(); n_sites],
            pages_processed: 0,
            bytes_rendered: 0,
            unmatched_phones: 0,
            unmatched_isbns: 0,
            unmatched_hrefs: 0,
            truncated_pages: 0,
            skipped_pages: 0,
            page_bytes: LocalHistogram::new(),
        }
    }

    /// Reset to the empty accumulation over a `(n_sites, n_entities)`
    /// universe. When the universe matches the current one, every set and
    /// map keeps its capacity — the pooled extraction path allocates
    /// nothing on reuse; otherwise the accumulator is rebuilt.
    pub fn reset_for(&mut self, n_sites: usize, n_entities: usize) {
        if self.n_sites() != n_sites || self.n_entities != n_entities {
            *self = ExtractedWeb::new(n_sites, n_entities);
            return;
        }
        for s in &mut self.phone {
            s.clear();
        }
        for s in &mut self.isbn {
            s.clear();
        }
        for s in &mut self.homepage {
            s.clear();
        }
        for m in &mut self.review_pages {
            m.clear();
        }
        self.pages_processed = 0;
        self.bytes_rendered = 0;
        self.unmatched_phones = 0;
        self.unmatched_isbns = 0;
        self.unmatched_hrefs = 0;
        self.truncated_pages = 0;
        self.skipped_pages = 0;
        self.page_bytes = LocalHistogram::new();
    }

    /// Publish this accumulation's totals to the global `extract.*`
    /// metrics. Every value is a pure function of the workload (counter
    /// addition and histogram merge are commutative), so the registry
    /// snapshot is identical for any shard count.
    pub fn publish_metrics(&self) {
        let m = obs::metrics();
        m.add("extract.pages", self.pages_processed);
        m.add("extract.bytes", self.bytes_rendered);
        m.add("extract.truncated_pages", self.truncated_pages);
        m.add("extract.skipped_pages", self.skipped_pages);
        m.add("extract.unmatched_phones", self.unmatched_phones);
        m.add("extract.unmatched_isbns", self.unmatched_isbns);
        m.add("extract.unmatched_hrefs", self.unmatched_hrefs);
        m.merge_histogram("extract.page_bytes", &self.page_bytes);
    }

    /// Fold one page's extraction into the per-site aggregates.
    ///
    /// # Panics
    /// Panics when `site` is out of range for the accumulator.
    pub fn ingest(&mut self, site: SiteId, ex: &PageExtraction) {
        let s = site.index();
        self.pages_processed += 1;
        if ex.truncated {
            self.truncated_pages += 1;
        }
        self.unmatched_phones += u64::from(ex.unmatched_phones);
        self.unmatched_isbns += u64::from(ex.unmatched_isbns);
        self.unmatched_hrefs += u64::from(ex.unmatched_hrefs);
        self.phone[s].extend(ex.phone_entities.iter().copied());
        self.isbn[s].extend(ex.isbn_entities.iter().copied());
        self.homepage[s].extend(ex.homepage_entities.iter().copied());
        if ex.is_review {
            // The paper attributes a review page to every restaurant whose
            // phone appears on it (usually exactly one).
            for &e in &ex.phone_entities {
                *self.review_pages[s].entry(e).or_insert(0) += 1;
            }
        }
    }

    /// Number of sites tracked.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.phone.len()
    }

    /// Number of catalog entities.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Per-site sorted entity lists for an attribute — the same shape as
    /// `Web::occurrence_lists`, so oracle and extracted data feed the same
    /// analyses.
    ///
    /// # Panics
    /// Panics for attributes the pipeline does not extract (none today).
    #[must_use]
    pub fn occurrence_lists(&self, attr: Attribute) -> Vec<Vec<EntityId>> {
        let source: Box<dyn Iterator<Item = Vec<EntityId>> + '_> = match attr {
            Attribute::Phone => Box::new(self.phone.iter().map(set_to_sorted)),
            Attribute::Isbn => Box::new(self.isbn.iter().map(set_to_sorted)),
            Attribute::Homepage => Box::new(self.homepage.iter().map(set_to_sorted)),
            Attribute::Review => Box::new(
                self.review_pages
                    .iter()
                    .map(|m| {
                        let mut v: Vec<EntityId> = m.keys().copied().collect();
                        v.sort_unstable();
                        v
                    }),
            ),
        };
        source.collect()
    }

    /// Per-site `(entity, review_page_count)` lists.
    #[must_use]
    pub fn review_page_lists(&self) -> Vec<Vec<(EntityId, u32)>> {
        self.review_pages
            .iter()
            .map(|m| {
                let mut v: Vec<(EntityId, u32)> = m.iter().map(|(&e, &c)| (e, c)).collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// Total (site, entity) pairs for an attribute.
    ///
    /// Computed straight from the per-site set sizes — no sorting, no
    /// per-site list materialisation.
    #[must_use]
    pub fn total_occurrences(&self, attr: Attribute) -> usize {
        match attr {
            Attribute::Phone => self.phone.iter().map(FxHashSet::len).sum(),
            Attribute::Isbn => self.isbn.iter().map(FxHashSet::len).sum(),
            Attribute::Homepage => self.homepage.iter().map(FxHashSet::len).sum(),
            Attribute::Review => self.review_pages.iter().map(FxHashMap::len).sum(),
        }
    }

    /// Fold another accumulator over the same site/entity universe into
    /// this one. Shards produced by site-partitioned extraction touch
    /// disjoint sites, but the merge is correct for overlapping ones too:
    /// entity sets union, review page counts add, diagnostics add.
    ///
    /// # Panics
    /// Panics when the accumulators track different numbers of sites or
    /// entities.
    pub fn merge(&mut self, other: ExtractedWeb) {
        assert_eq!(self.n_sites(), other.n_sites(), "site universe mismatch");
        assert_eq!(self.n_entities, other.n_entities, "entity universe mismatch");
        self.pages_processed += other.pages_processed;
        self.bytes_rendered += other.bytes_rendered;
        self.unmatched_phones += other.unmatched_phones;
        self.unmatched_isbns += other.unmatched_isbns;
        self.unmatched_hrefs += other.unmatched_hrefs;
        self.truncated_pages += other.truncated_pages;
        self.skipped_pages += other.skipped_pages;
        self.page_bytes.merge(&other.page_bytes);
        for (dst, src) in self.phone.iter_mut().zip(other.phone) {
            merge_set(dst, src);
        }
        for (dst, src) in self.isbn.iter_mut().zip(other.isbn) {
            merge_set(dst, src);
        }
        for (dst, src) in self.homepage.iter_mut().zip(other.homepage) {
            merge_set(dst, src);
        }
        for (dst, src) in self.review_pages.iter_mut().zip(other.review_pages) {
            if dst.is_empty() {
                *dst = src;
            } else {
                for (e, c) in src {
                    *dst.entry(e).or_insert(0) += c;
                }
            }
        }
    }

    /// [`ExtractedWeb::merge`] from a borrowed accumulator: entity ids are
    /// `Copy`, so nothing is stolen from `other` — the pooled path merges
    /// shard accumulators while leaving their capacity in the pool.
    ///
    /// # Panics
    /// Panics when the accumulators track different numbers of sites or
    /// entities.
    pub fn merge_ref(&mut self, other: &ExtractedWeb) {
        assert_eq!(self.n_sites(), other.n_sites(), "site universe mismatch");
        assert_eq!(self.n_entities, other.n_entities, "entity universe mismatch");
        self.pages_processed += other.pages_processed;
        self.bytes_rendered += other.bytes_rendered;
        self.unmatched_phones += other.unmatched_phones;
        self.unmatched_isbns += other.unmatched_isbns;
        self.unmatched_hrefs += other.unmatched_hrefs;
        self.truncated_pages += other.truncated_pages;
        self.skipped_pages += other.skipped_pages;
        self.page_bytes.merge(&other.page_bytes);
        for (dst, src) in self.phone.iter_mut().zip(&other.phone) {
            dst.extend(src.iter().copied());
        }
        for (dst, src) in self.isbn.iter_mut().zip(&other.isbn) {
            dst.extend(src.iter().copied());
        }
        for (dst, src) in self.homepage.iter_mut().zip(&other.homepage) {
            dst.extend(src.iter().copied());
        }
        for (dst, src) in self.review_pages.iter_mut().zip(&other.review_pages) {
            for (&e, &c) in src {
                *dst.entry(e).or_insert(0) += c;
            }
        }
    }
}

impl Default for ExtractedWeb {
    /// The empty accumulator over the empty universe — the placeholder a
    /// fresh [`ExtractPool`] starts from before its first run resizes it.
    fn default() -> Self {
        ExtractedWeb::new(0, 0)
    }
}

fn merge_set(dst: &mut FxHashSet<EntityId>, src: FxHashSet<EntityId>) {
    if dst.is_empty() {
        *dst = src;
    } else {
        dst.extend(src);
    }
}

fn set_to_sorted(set: &FxHashSet<EntityId>) -> Vec<EntityId> {
    let mut v: Vec<EntityId> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_review_classifier;
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::CatalogConfig;
    use webstruct_corpus::page::{PageConfig, PageKind, PageStream};
    use webstruct_corpus::web::{Web, WebConfig};
    use webstruct_util::rng::Seed;

    fn restaurant_fixture() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 400), Seed(31));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Restaurants).scaled(0.01),
            Seed(31),
        );
        (catalog, web)
    }

    #[test]
    fn extracted_phone_relation_equals_ground_truth() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Phone),
            web.occurrence_lists(Attribute::Phone),
            "extraction must reproduce the ground-truth phone relation"
        );
    }

    #[test]
    fn extracted_homepage_relation_equals_ground_truth() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Homepage),
            web.occurrence_lists(Attribute::Homepage)
        );
        // Noise anchors were present but never matched the catalog.
        assert!(extracted.unmatched_hrefs > 0);
    }

    #[test]
    fn extracted_isbn_relation_equals_ground_truth() {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(Domain::Books, 400), Seed(33));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Books).scaled(0.01),
            Seed(33),
        );
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(34));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Isbn),
            web.occurrence_lists(Attribute::Isbn)
        );
    }

    #[test]
    fn review_extraction_recovers_review_pages() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let n_review_pages = pages.iter().filter(|p| p.kind == PageKind::Review).count();
        let extracted = extractor.extract_all(web.n_sites(), pages);
        let recovered: u32 = extracted
            .review_page_lists()
            .iter()
            .flat_map(|l| l.iter().map(|&(_, c)| c))
            .sum();
        assert!(n_review_pages > 0);
        // The classifier is imperfect, but recall should be high and false
        // positives rare.
        let recall = f64::from(recovered) / n_review_pages as f64;
        assert!(
            (0.9..=1.1).contains(&recall),
            "recovered {recovered} of {n_review_pages} review pages"
        );
    }

    #[test]
    fn unmatched_phone_noise_is_counted_but_excluded() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        // Invalid lookalikes (area < 200) are rejected by the scanner, so
        // they never even reach the unmatched counter; tracking numbers are
        // too long. Unmatched phones only arise from valid-format numbers
        // in training-noise, which our listing pages do not contain.
        assert_eq!(extracted.unmatched_phones, 0);
        assert!(extracted.pages_processed > 0);
    }

    #[test]
    fn parallel_extraction_is_bit_identical_to_sequential() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let sequential = extractor.extract_web(&web, &PageConfig::default(), Seed(32), 1);
        for threads in [2, 3, 8] {
            let parallel = extractor.extract_web(&web, &PageConfig::default(), Seed(32), threads);
            for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
                assert_eq!(
                    parallel.occurrence_lists(attr),
                    sequential.occurrence_lists(attr),
                    "{attr:?} diverged at {threads} threads"
                );
            }
            assert_eq!(parallel.review_page_lists(), sequential.review_page_lists());
            assert_eq!(parallel.pages_processed, sequential.pages_processed);
            assert_eq!(parallel.unmatched_phones, sequential.unmatched_phones);
            assert_eq!(parallel.unmatched_isbns, sequential.unmatched_isbns);
            assert_eq!(parallel.unmatched_hrefs, sequential.unmatched_hrefs);
        }
    }

    #[test]
    fn extract_web_single_thread_matches_extract_all() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let via_web = extractor.extract_web(&web, &PageConfig::default(), Seed(32), 1);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let via_stream = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            via_web.occurrence_lists(Attribute::Phone),
            via_stream.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(via_web.pages_processed, via_stream.pages_processed);
    }

    #[test]
    fn merge_unions_sets_and_adds_counts() {
        let mut a = ExtractedWeb::new(2, 10);
        let mut b = ExtractedWeb::new(2, 10);
        let e1 = EntityId::new(1);
        let e2 = EntityId::new(2);
        a.ingest(
            SiteId::new(0),
            &PageExtraction {
                phone_entities: vec![e1],
                is_review: true,
                ..PageExtraction::default()
            },
        );
        b.ingest(
            SiteId::new(0),
            &PageExtraction {
                phone_entities: vec![e1, e2],
                is_review: true,
                ..PageExtraction::default()
            },
        );
        b.ingest(
            SiteId::new(1),
            &PageExtraction {
                unmatched_phones: 3,
                ..PageExtraction::default()
            },
        );
        a.merge(b);
        assert_eq!(a.pages_processed, 3);
        assert_eq!(a.unmatched_phones, 3);
        assert_eq!(a.total_occurrences(Attribute::Phone), 2);
        assert_eq!(a.review_page_lists()[0], vec![(e1, 2), (e2, 1)]);
    }

    #[test]
    fn total_occurrences_matches_list_lengths() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
            let listed: usize = extracted
                .occurrence_lists(attr)
                .iter()
                .map(Vec::len)
                .sum();
            assert_eq!(extracted.total_occurrences(attr), listed, "{attr:?}");
        }
    }

    #[test]
    fn faulty_extraction_under_none_plan_is_identical() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let clean = extractor.extract_all(web.n_sites(), pages.clone());
        let faulty = extractor.extract_all_faulty(
            web.n_sites(),
            pages,
            &webstruct_util::fault::FaultPlan::none(),
        );
        assert_eq!(
            faulty.occurrence_lists(Attribute::Phone),
            clean.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(faulty.pages_processed, clean.pages_processed);
        assert_eq!(faulty.truncated_pages, 0);
        assert_eq!(faulty.skipped_pages, 0);
    }

    #[test]
    fn truncated_pages_yield_partial_extractions() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let clean = extractor.extract_all(web.n_sites(), pages.clone());
        let plan = FaultPlan::new(
            FaultConfig {
                truncation_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(40),
        );
        let faulty = extractor.extract_all_faulty(web.n_sites(), pages, &plan);
        assert_eq!(faulty.pages_processed, clean.pages_processed);
        assert_eq!(faulty.truncated_pages, faulty.pages_processed);
        // Partial pages can only lose matches, never invent them.
        assert!(
            faulty.total_occurrences(Attribute::Phone)
                <= clean.total_occurrences(Attribute::Phone)
        );
        for (partial, full) in faulty
            .occurrence_lists(Attribute::Phone)
            .iter()
            .zip(clean.occurrence_lists(Attribute::Phone))
        {
            for e in partial {
                assert!(full.contains(e), "truncation invented entity {e:?}");
            }
        }
    }

    #[test]
    fn dead_sites_drop_their_pages() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let n_pages = pages.len() as u64;
        let plan = FaultPlan::new(
            FaultConfig {
                dead_site_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(41),
        );
        let faulty = extractor.extract_all_faulty(web.n_sites(), pages, &plan);
        assert_eq!(faulty.pages_processed, 0);
        assert_eq!(faulty.skipped_pages, n_pages);
        assert_eq!(faulty.total_occurrences(Attribute::Phone), 0);
    }

    #[test]
    fn faulty_extraction_is_order_independent() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let plan = FaultPlan::new(FaultConfig::flaky(0.4), Seed(42));
        let forward = extractor.extract_all_faulty(web.n_sites(), pages.clone(), &plan);
        // Reorder pages across sites (stable by site would be the shard
        // order; full reversal also permutes within sites, which per-site
        // ordinals must absorb only across-site — so keep within-site
        // order while interleaving sites differently).
        let mut by_site: Vec<Vec<Page>> = vec![Vec::new(); web.n_sites()];
        for p in pages {
            by_site[p.site.index()].push(p);
        }
        let reordered: Vec<Page> = by_site.into_iter().rev().flatten().collect();
        let shuffled = extractor.extract_all_faulty(web.n_sites(), reordered, &plan);
        assert_eq!(
            forward.occurrence_lists(Attribute::Phone),
            shuffled.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(forward.truncated_pages, shuffled.truncated_pages);
        assert_eq!(forward.skipped_pages, shuffled.skipped_pages);
    }

    #[test]
    fn prefix_extraction_never_panics_on_multibyte_text() {
        let (catalog, _web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let page = Page {
            id: webstruct_util::ids::PageId::new(0),
            site: SiteId::new(0),
            url: "http://x.example.com/".into(),
            kind: PageKind::Listing,
            text: "caf\u{e9} \u{2603} 206-555-0100 \u{1F600} caf\u{e9}".repeat(3),
        };
        for i in 0..=20 {
            let frac = f64::from(i) / 20.0;
            let ex = extractor.extract_page_prefix(&page, frac);
            assert!(ex.truncated);
        }
        // Out-of-range fractions clamp instead of slicing out of bounds.
        let _ = extractor.extract_page_prefix(&page, -1.0);
        let _ = extractor.extract_page_prefix(&page, 2.0);
    }

    #[test]
    fn extraction_of_empty_accumulator_is_empty() {
        let acc = ExtractedWeb::new(3, 10);
        assert_eq!(acc.n_sites(), 3);
        assert_eq!(acc.n_entities(), 10);
        assert_eq!(acc.total_occurrences(Attribute::Phone), 0);
        assert!(acc
            .occurrence_lists(Attribute::Review)
            .iter()
            .all(Vec::is_empty));
    }
}
