//! The end-to-end extraction pipeline: pages in, per-attribute
//! (site, entity) occurrence tables out.
//!
//! This is the paper's §3.1 methodology: "for each domain, we go through
//! the entire Web cache and look for the identifying attributes of the
//! entities on each page. We group pages by hosts, and for each host, we
//! aggregate the set of entities found on all the pages in that host."

use crate::html;
use crate::isbn_scan::for_each_isbn;
use crate::nb::NaiveBayes;
use crate::phone_scan::for_each_phone;
use webstruct_corpus::domain::Attribute;
use webstruct_corpus::entity::EntityCatalog;
use webstruct_corpus::page::{Page, PageConfig, PageScratch, PageStream};
use webstruct_corpus::shard::{ShardError, ShardStore, ShardedWeb};
use webstruct_corpus::web::Web;
use webstruct_util::hash::FxHashSet;
use webstruct_util::ids::{EntityId, SiteId};
use webstruct_util::obs::{self, LocalHistogram};
use webstruct_util::par;
use webstruct_util::rng::Seed;

/// Extraction-semantics version, hashed into extractor-config
/// fingerprints that key the content-addressed cache. Bump whenever the
/// pipeline's output for the same page bytes can change — matching rules,
/// classifier features, aggregation semantics, or the
/// [`ExtractedWeb::shard_snapshot_bytes`] encoding — so stale cached
/// extractions stop matching instead of being silently trusted.
pub const EXTRACTOR_VERSION: u32 = 1;

/// Magic of the serialized shard-extraction snapshot ("WebStruct
/// eXtraction v1") produced by [`ExtractedWeb::shard_snapshot_bytes`].
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"WSX1";
/// Fixed header bytes before the per-site lists in a snapshot.
const SNAPSHOT_HEADER_LEN: usize = 4 + 4 + 4 + 4 + 7 * 8 + LocalHistogram::WIRE_LEN;

/// What one page yielded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageExtraction {
    /// Entities matched via phone numbers.
    pub phone_entities: Vec<EntityId>,
    /// Entities matched via ISBNs.
    pub isbn_entities: Vec<EntityId>,
    /// Entities matched via homepage hrefs.
    pub homepage_entities: Vec<EntityId>,
    /// Phone matches that hit no catalog entity (precision diagnostics).
    pub unmatched_phones: u32,
    /// ISBN matches that hit no catalog entity.
    pub unmatched_isbns: u32,
    /// Anchor hosts that matched no catalog homepage.
    pub unmatched_hrefs: u32,
    /// Review-classifier verdict (false when no classifier is installed).
    pub is_review: bool,
    /// Whether this extraction ran on a truncated page (partial yield).
    pub truncated: bool,
}

impl PageExtraction {
    /// Reset to the empty extraction, keeping the entity `Vec` capacities —
    /// the hot path reuses one `PageExtraction` across every page.
    pub fn clear(&mut self) {
        self.phone_entities.clear();
        self.isbn_entities.clear();
        self.homepage_entities.clear();
        self.unmatched_phones = 0;
        self.unmatched_isbns = 0;
        self.unmatched_hrefs = 0;
        self.is_review = false;
        self.truncated = false;
    }
}

/// Every buffer the per-page extraction work needs, allocated once and
/// reused across pages. Steady state (after the buffers have grown to the
/// largest page seen) the render→extract hot path allocates nothing.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    /// The rendered page, written in place by the fused stream.
    page: PageScratch,
    bufs: PageBuffers,
}

impl ExtractScratch {
    /// Fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent per-page extraction result.
    #[must_use]
    pub fn extraction(&self) -> &PageExtraction {
        &self.bufs.extraction
    }

    /// The most recently rendered page (fused stream path only).
    #[must_use]
    pub fn page(&self) -> &PageScratch {
        &self.page
    }
}

/// The reusable per-page working buffers, separate from [`PageScratch`] so
/// the fused loop can borrow the rendered page text and the buffers
/// disjointly.
#[derive(Debug, Default)]
struct PageBuffers {
    /// Tag-stripped visible text.
    text: String,
    /// Token assembly buffer for the review classifier.
    tokens: String,
    /// Normalised anchor host.
    host: String,
    seen_phones: FxHashSet<EntityId>,
    seen_isbns: FxHashSet<EntityId>,
    seen_homepages: FxHashSet<EntityId>,
    extraction: PageExtraction,
}

/// The extractor: catalog indexes plus an optional review classifier.
pub struct Extractor<'a> {
    catalog: &'a EntityCatalog,
    review_clf: Option<NaiveBayes>,
}

impl<'a> Extractor<'a> {
    /// Build an extractor without review classification.
    #[must_use]
    pub fn new(catalog: &'a EntityCatalog) -> Self {
        Extractor {
            catalog,
            review_clf: None,
        }
    }

    /// Install a review classifier (required for the Review attribute).
    #[must_use]
    pub fn with_review_classifier(mut self, clf: NaiveBayes) -> Self {
        self.review_clf = Some(clf);
        self
    }

    /// The allocation-free core: extract everything from one page body
    /// into the reused buffers. Result lands in `bufs.extraction`.
    fn extract_html_into(&self, html: &str, bufs: &mut PageBuffers) {
        let PageBuffers {
            text,
            tokens,
            host,
            seen_phones,
            seen_isbns,
            seen_homepages,
            extraction,
        } = bufs;
        extraction.clear();
        seen_phones.clear();
        seen_isbns.clear();
        seen_homepages.clear();
        html::strip_tags_into(html, text);

        for_each_phone(text, |m| match self.catalog.by_phone(m.phone.digits()) {
            Some(e) => {
                if seen_phones.insert(e) {
                    extraction.phone_entities.push(e);
                }
            }
            None => extraction.unmatched_phones += 1,
        });

        for_each_isbn(text, |m| match self.catalog.by_isbn(m.isbn.core()) {
            Some(e) => {
                if seen_isbns.insert(e) {
                    extraction.isbn_entities.push(e);
                }
            }
            None => extraction.unmatched_isbns += 1,
        });

        html::for_each_anchor_href(html, |href, _offset| {
            if !html::url_host_into(href, host) {
                extraction.unmatched_hrefs += 1;
                return;
            }
            match self.catalog.by_homepage(host) {
                Some(e) => {
                    if seen_homepages.insert(e) {
                        extraction.homepage_entities.push(e);
                    }
                }
                None => extraction.unmatched_hrefs += 1,
            }
        });

        if let Some(clf) = &self.review_clf {
            extraction.is_review = clf.is_review_with(text, tokens);
        }
    }

    /// Truncate `full_text` to the leading `frac` (backed off to a UTF-8
    /// character boundary) and extract the partial page. Returns the
    /// number of bytes that actually entered extraction.
    fn extract_prefix_parts(&self, full_text: &str, frac: f64, bufs: &mut PageBuffers) -> usize {
        let keep = (full_text.len() as f64 * frac.clamp(0.0, 1.0)) as usize;
        let cut = html::truncate_at_char_boundary(full_text, keep);
        self.extract_html_into(cut, bufs);
        bufs.extraction.truncated = true;
        cut.len()
    }

    /// Extract everything from one page.
    ///
    /// Owned-result convenience over [`Extractor::extract_page_into`]:
    /// allocates fresh working buffers per call. Loops should reuse an
    /// [`ExtractScratch`] instead.
    #[must_use]
    pub fn extract_page(&self, page: &Page) -> PageExtraction {
        let mut bufs = PageBuffers::default();
        self.extract_html_into(&page.text, &mut bufs);
        bufs.extraction
    }

    /// Extract everything from one page through reused scratch buffers.
    /// Steady state this allocates nothing beyond entity-set growth.
    pub fn extract_page_into<'s>(
        &self,
        page: &Page,
        scratch: &'s mut ExtractScratch,
    ) -> &'s PageExtraction {
        self.extract_html_into(&page.text, &mut scratch.bufs);
        &scratch.bufs.extraction
    }

    /// Extract from a page of which only the leading `frac` of the body
    /// arrived — what a truncated fetch leaves the pipeline. The cut is
    /// backed off to a UTF-8 character boundary, so partial pages never
    /// panic the scanners; whatever matches survive the cut are yielded
    /// as a partial extraction with [`PageExtraction::truncated`] set.
    #[must_use]
    pub fn extract_page_prefix(&self, page: &Page, frac: f64) -> PageExtraction {
        let mut bufs = PageBuffers::default();
        self.extract_prefix_parts(&page.text, frac, &mut bufs);
        bufs.extraction
    }

    /// [`Extractor::extract_page_prefix`] through reused scratch buffers —
    /// the truncation path no longer clones the page.
    pub fn extract_prefix_into<'s>(
        &self,
        page: &Page,
        frac: f64,
        scratch: &'s mut ExtractScratch,
    ) -> &'s PageExtraction {
        self.extract_prefix_parts(&page.text, frac, &mut scratch.bufs);
        &scratch.bufs.extraction
    }

    /// Run the full pipeline over a stream of owned pages.
    ///
    /// The compatibility path for callers that already hold `Page` values
    /// (tests, the crawler): working buffers are reused across pages, but
    /// each page body was still allocated by whoever built the iterator.
    /// The fused [`Extractor::extract_stream`] renders and extracts
    /// through one scratch without materialising pages at all.
    #[must_use]
    pub fn extract_all<I>(&self, n_sites: usize, pages: I) -> ExtractedWeb
    where
        I: IntoIterator<Item = Page>,
    {
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        let mut bufs = PageBuffers::default();
        for page in pages {
            self.extract_html_into(&page.text, &mut bufs);
            acc.bytes_rendered += page.text.len() as u64;
            acc.page_bytes.record(page.text.len() as u64);
            acc.ingest(page.site, &bufs.extraction);
        }
        acc
    }

    /// Run the fused render→extract loop: each page is rendered into
    /// `scratch` and extracted in place, so steady state the whole hot
    /// path performs zero heap allocations per page.
    #[must_use]
    pub fn extract_stream(
        &self,
        n_sites: usize,
        pages: &mut PageStream<'_>,
        scratch: &mut ExtractScratch,
    ) -> ExtractedWeb {
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        self.extract_stream_into(pages, scratch, &mut acc);
        acc
    }

    /// [`Extractor::extract_stream`] into a caller-owned accumulator —
    /// the fully pooled path: with `acc` reused across runs (see
    /// [`ExtractPool`]) even the accumulator's sets stop allocating once
    /// they have grown to the workload.
    pub fn extract_stream_into(
        &self,
        pages: &mut PageStream<'_>,
        scratch: &mut ExtractScratch,
        acc: &mut ExtractedWeb,
    ) {
        let ExtractScratch { page, bufs } = scratch;
        while pages.render_into(page) {
            self.extract_html_into(page.text(), bufs);
            acc.bytes_rendered += page.text().len() as u64;
            acc.page_bytes.record(page.text().len() as u64);
            acc.ingest(page.site(), &bufs.extraction);
        }
    }

    /// Run the pipeline over a page stream served by a faulty web. The
    /// fault coordinate for a page is its per-site ordinal, so the
    /// decision stream is independent of how sites interleave in the
    /// input. Pages from dead sites and pages whose fetch failed are
    /// skipped (counted in [`ExtractedWeb::skipped_pages`]); truncated
    /// pages yield partial extractions via
    /// [`Extractor::extract_page_prefix`].
    #[must_use]
    pub fn extract_all_faulty<I>(
        &self,
        n_sites: usize,
        pages: I,
        plan: &webstruct_util::fault::FaultPlan,
    ) -> ExtractedWeb
    where
        I: IntoIterator<Item = Page>,
    {
        use webstruct_util::fault::Fault;
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        let mut ordinal = vec![0u32; n_sites];
        let mut bufs = PageBuffers::default();
        for page in pages {
            let s = page.site.index();
            let attempt = ordinal[s];
            ordinal[s] += 1;
            match plan.fault(s, attempt) {
                None => {
                    self.extract_html_into(&page.text, &mut bufs);
                    acc.bytes_rendered += page.text.len() as u64;
                    acc.page_bytes.record(page.text.len() as u64);
                    acc.ingest(page.site, &bufs.extraction);
                }
                Some(Fault::Truncated(frac)) => {
                    let kept = self.extract_prefix_parts(&page.text, frac, &mut bufs);
                    acc.bytes_rendered += kept as u64;
                    acc.page_bytes.record(kept as u64);
                    acc.ingest(page.site, &bufs.extraction);
                }
                Some(_) => acc.skipped_pages += 1,
            }
        }
        acc
    }

    /// Render and extract every page of `web`, sharding sites across
    /// `threads` workers with the size-aware scheduler.
    ///
    /// Pages aggregate per host (§3.1), so partitioning *sites* across
    /// workers keeps each site's accumulation local to one shard. Site
    /// sizes are Zipfian — the old equal-page-count contiguous split left
    /// the aggregator-bearing shard dominating the wall clock (the 2-thread
    /// 0.53× cliff) — so the sites are first cut into
    /// [`CHUNKS_PER_WORKER`]`×threads` contiguous chunks of roughly equal
    /// *estimated rendered bytes* ([`PageStream::estimated_site_bytes`]),
    /// and the chunks are then packed onto workers by deterministic LPT
    /// ([`par::lpt_assign`]).
    ///
    /// Each chunk renders its own [`PageStream::for_site_range`] — page
    /// rendering is a pure function of `(seed, page id)`, every chunk is
    /// told its first global page id, and [`ExtractedWeb::merge`] is
    /// commutative — so the merged result is byte-identical to
    /// [`Extractor::extract_all`] over the full stream at any thread
    /// count. `threads == 1` takes the sequential path exactly.
    ///
    /// Per-worker rendered-byte totals land in the `extract.worker_bytes.*`
    /// gauges (plus `extract.shard_imbalance`, max/mean) so scheduling
    /// imbalance is visible in `RUN_REPORT.json`.
    #[must_use]
    pub fn extract_web(
        &self,
        web: &Web,
        config: &PageConfig,
        seed: Seed,
        threads: usize,
    ) -> ExtractedWeb {
        let n_sites = web.n_sites();
        let _span = webstruct_util::span!("extract_web", n_sites, threads);
        if threads <= 1 || n_sites <= 1 {
            let mut pages = PageStream::new(web, self.catalog, config.clone(), seed);
            let mut scratch = ExtractScratch::new();
            let acc = self.extract_stream(n_sites, &mut pages, &mut scratch);
            acc.publish_metrics();
            return acc;
        }
        let mut first_page = Vec::new();
        let mut chunks = Vec::new();
        let mut chunk_bytes = Vec::new();
        plan_size_chunks(
            web,
            config,
            threads,
            &mut first_page,
            &mut chunks,
            &mut chunk_bytes,
        );
        let k = threads.min(chunks.len());
        let assignment = par::lpt_assign(&chunk_bytes, k);
        let chunks = &chunks;
        let first_page = &first_page;
        let workers = par::par_map_threads(k, assignment, |list| {
            let mut scratch = ExtractScratch::new();
            let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
            for ci in list {
                let sites = chunks[ci].clone();
                let lo = sites.start;
                let hi = sites.end;
                let _shard_span = webstruct_util::span!("extract_shard", lo, hi);
                let mut pages = PageStream::for_site_range(
                    web,
                    self.catalog,
                    config.clone(),
                    seed,
                    sites,
                    first_page[lo],
                );
                self.extract_stream_into(&mut pages, &mut scratch, &mut acc);
            }
            acc
        });
        publish_worker_gauges(workers.iter().map(|w| w.bytes_rendered));
        let merged = workers.into_iter().fold(
            ExtractedWeb::new(n_sites, self.catalog.len()),
            |mut acc, shard| {
                acc.merge(shard);
                acc
            },
        );
        merged.publish_metrics();
        merged
    }

    /// [`Extractor::extract_web`] through a caller-owned [`ExtractPool`]:
    /// identical output (same sharding, same per-shard streams), but every
    /// piece of per-run state — shard scratches, shard accumulators, the
    /// merged accumulator, the prefix-sum and shard-range vectors — is
    /// reused across calls. After one warmup call the extraction runs in
    /// true steady state at every thread count.
    pub fn extract_web_pooled<'p>(
        &self,
        web: &Web,
        config: &PageConfig,
        seed: Seed,
        threads: usize,
        pool: &'p mut ExtractPool,
    ) -> &'p ExtractedWeb {
        let n_sites = web.n_sites();
        let n_entities = self.catalog.len();
        let _span = webstruct_util::span!("extract_web", n_sites, threads);
        if threads <= 1 || n_sites <= 1 {
            if pool.shards.is_empty() {
                pool.shards
                    .push((ExtractScratch::new(), ExtractedWeb::new(n_sites, n_entities)));
            }
            let (scratch, acc) = &mut pool.shards[0];
            acc.reset_for(n_sites, n_entities);
            let mut pages = PageStream::new(web, self.catalog, config.clone(), seed);
            self.extract_stream_into(&mut pages, scratch, acc);
            acc.publish_metrics();
            return &pool.shards[0].1;
        }
        // Identical size-aware plan to `extract_web`, into reused vectors.
        plan_size_chunks(
            web,
            config,
            threads,
            &mut pool.first_page,
            &mut pool.ranges,
            &mut pool.chunk_bytes,
        );
        let k = threads.min(pool.ranges.len());
        let assignment = par::lpt_assign(&pool.chunk_bytes, k);
        while pool.shards.len() < k {
            pool.shards
                .push((ExtractScratch::new(), ExtractedWeb::new(n_sites, n_entities)));
        }
        for (_, acc) in &mut pool.shards[..k] {
            acc.reset_for(n_sites, n_entities);
        }
        let first_page = &pool.first_page;
        let chunks = &pool.ranges;
        let items: Vec<(Vec<usize>, &mut (ExtractScratch, ExtractedWeb))> = assignment
            .into_iter()
            .zip(pool.shards[..k].iter_mut())
            .collect();
        par::par_map_threads(k, items, |(list, shard)| {
            let (scratch, acc) = shard;
            for ci in list {
                let sites = chunks[ci].clone();
                let lo = sites.start;
                let hi = sites.end;
                let _shard_span = webstruct_util::span!("extract_shard", lo, hi);
                let mut pages = PageStream::for_site_range(
                    web,
                    self.catalog,
                    config.clone(),
                    seed,
                    sites,
                    first_page[lo],
                );
                self.extract_stream_into(&mut pages, scratch, acc);
            }
        });
        publish_worker_gauges(pool.shards[..k].iter().map(|(_, a)| a.bytes_rendered));
        pool.merged.reset_for(n_sites, n_entities);
        for (_, acc) in &pool.shards[..k] {
            pool.merged.merge_ref(acc);
        }
        pool.merged.publish_metrics();
        &pool.merged
    }

    /// Extract a sharded web — rendered on the fly or read back from a
    /// [`ShardStore`] — folding per-shard pages into per-*worker*
    /// accumulations. Shards are pulled by the work-stealing
    /// [`par::par_fold_dynamic_threads`] (stored shards have unknown
    /// cost until read: compression of the site axis into files hides
    /// the size signal LPT would want). Each worker owns exactly one
    /// accumulator for its whole run, so peak state is
    /// O(workers × accumulator) + O(largest shard) — never
    /// O(shards × accumulator), which at full scale is the corpus-sized
    /// footprint this path exists to avoid.
    ///
    /// Which shards land in which worker is scheduling-dependent, but
    /// every shard covers a *disjoint* site range, so the merge is
    /// commutative (disjoint per-site sets/maps union, counters add,
    /// histogram buckets add) and the result is byte-identical to the
    /// in-memory path at any thread count.
    ///
    /// # Errors
    /// Propagates shard validation/read failures ([`ShardError`]).
    pub fn extract_sharded(
        &self,
        sharded: &ShardedWeb<'_>,
        n_sites: usize,
        threads: usize,
    ) -> Result<ExtractedWeb, ShardError> {
        let n_shards = sharded.n_shards();
        let _span = webstruct_util::span!("extract_sharded", n_shards, threads);
        struct ShardFold {
            acc: ExtractedWeb,
            bufs: PageBuffers,
            err: Option<ShardError>,
        }
        let workers = par::par_fold_dynamic_threads(
            threads,
            n_shards,
            || ShardFold {
                acc: ExtractedWeb::new(n_sites, self.catalog.len()),
                bufs: PageBuffers::default(),
                err: None,
            },
            |w, i| {
                let ShardFold { acc, bufs, err } = w;
                let (mut lo, mut hi) = (u32::MAX, 0u32);
                match sharded.for_each_page(i, |_id, site, _kind, text| {
                    lo = lo.min(site.raw());
                    hi = hi.max(site.raw());
                    self.extract_html_into(text, bufs);
                    acc.bytes_rendered += text.len() as u64;
                    acc.page_bytes.record(text.len() as u64);
                    acc.ingest(site, &bufs.extraction);
                }) {
                    Ok(_) => {
                        // Shards partition sites, so this shard's lists are
                        // final: drop their growth slack now instead of
                        // carrying ~2x the data size to the end of the run.
                        if lo <= hi {
                            acc.seal_sites(lo, hi);
                        }
                        true
                    }
                    Err(e) => {
                        *err = Some(e);
                        false
                    }
                }
            },
        );
        // Fold into the first worker's accumulator rather than a fresh
        // one: a full-width ExtractedWeb carries 4 × n_sites table
        // headers before a single entry lands, and at full scale a third
        // instance is real memory.
        let mut merged: Option<ExtractedWeb> = None;
        for w in workers {
            if let Some(e) = w.err {
                return Err(e);
            }
            match &mut merged {
                None => merged = Some(w.acc),
                Some(m) => m.merge(w.acc),
            }
        }
        let merged = merged.unwrap_or_else(|| ExtractedWeb::new(n_sites, self.catalog.len()));
        merged.publish_metrics();
        Ok(merged)
    }

    /// [`Extractor::extract_sharded`] over a [`ShardStore`] on disk — the
    /// out-of-core entry point: no [`Web`] needs to be resident at all.
    ///
    /// # Errors
    /// Propagates shard validation/read failures ([`ShardError`]).
    pub fn extract_store(
        &self,
        store: &ShardStore,
        n_sites: usize,
        threads: usize,
    ) -> Result<ExtractedWeb, ShardError> {
        self.extract_sharded(&ShardedWeb::Stored(store), n_sites, threads)
    }

    /// Extract exactly one shard of a sharded web into a fresh full-width
    /// accumulator, sealed and ready to snapshot. This is the unit of
    /// work behind the incremental epoch pipeline: a dirty shard is
    /// extracted alone so its result can be serialized into the
    /// content-addressed cache before merging, while clean shards skip
    /// extraction entirely and replay their cached snapshot.
    ///
    /// # Errors
    /// Propagates shard validation/read failures ([`ShardError`]).
    ///
    /// # Panics
    /// Panics when `i` is out of range for the sharded web.
    pub fn extract_one_shard(
        &self,
        sharded: &ShardedWeb<'_>,
        i: usize,
        n_sites: usize,
    ) -> Result<ExtractedWeb, ShardError> {
        let mut acc = ExtractedWeb::new(n_sites, self.catalog.len());
        let mut bufs = PageBuffers::default();
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        sharded.for_each_page(i, |_id, site, _kind, text| {
            lo = lo.min(site.raw());
            hi = hi.max(site.raw());
            self.extract_html_into(text, &mut bufs);
            acc.bytes_rendered += text.len() as u64;
            acc.page_bytes.record(text.len() as u64);
            acc.ingest(site, &bufs.extraction);
        })?;
        if lo <= hi {
            acc.seal_sites(lo, hi);
        }
        Ok(acc)
    }
}

/// Reusable state for repeated [`Extractor::extract_web_pooled`] runs.
///
/// Holds one `(ExtractScratch, ExtractedWeb)` pair per shard plus the
/// merged accumulator and the sharding vectors, so a benchmark loop (or a
/// long-lived service) pays per-run setup allocations exactly once instead
/// of on every call — previously that setup was charged to the measured
/// window and made `bytes_alloc_per_page` climb with thread count.
#[derive(Default)]
pub struct ExtractPool {
    shards: Vec<(ExtractScratch, ExtractedWeb)>,
    merged: ExtractedWeb,
    first_page: Vec<u32>,
    ranges: Vec<std::ops::Range<usize>>,
    chunk_bytes: Vec<u64>,
}

impl ExtractPool {
    /// An empty pool; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        ExtractPool::default()
    }
}

/// Contiguous site chunks per worker the size-aware scheduler cuts before
/// LPT packing. Oversubscription is what lets LPT smooth the Zipfian head:
/// with exactly one chunk per worker there is nothing to rebalance.
pub const CHUNKS_PER_WORKER: usize = 8;

/// Cut the web's sites into `CHUNKS_PER_WORKER × threads` contiguous
/// chunks of roughly equal *estimated rendered bytes*, writing the
/// per-site first-page prefix sums, the chunk ranges, and the per-chunk
/// byte estimates into the reused output vectors. Every site lands in
/// exactly one chunk; chunks never split a site, so each is independently
/// renderable via [`PageStream::for_site_range`]. The plan is a pure
/// function of `(web, config, threads)` — no timing feedback — which is
/// half of the scheduler's determinism argument (the other half being
/// that [`ExtractedWeb::merge`] is commutative).
fn plan_size_chunks(
    web: &Web,
    config: &PageConfig,
    threads: usize,
    first_page: &mut Vec<u32>,
    chunks: &mut Vec<std::ops::Range<usize>>,
    chunk_bytes: &mut Vec<u64>,
) {
    let n_sites = web.n_sites();
    first_page.clear();
    first_page.resize(n_sites + 1, 0);
    let mut cum_bytes = 0u64;
    let mut site_cum: Vec<u64> = Vec::with_capacity(n_sites + 1);
    site_cum.push(0);
    for i in 0..n_sites {
        first_page[i + 1] = first_page[i] + PageStream::site_page_count(web, config, i);
        cum_bytes += PageStream::estimated_site_bytes(web, config, i);
        site_cum.push(cum_bytes);
    }
    let m = (threads.max(1) * CHUNKS_PER_WORKER).min(n_sites).max(1);
    chunks.clear();
    chunk_bytes.clear();
    let mut start = 0usize;
    for c in 0..m {
        // Integer-exact proportional targets: chunk c ends where the
        // cumulative estimate first exceeds total * (c+1) / m.
        let target = cum_bytes / m as u64 * (c as u64 + 1)
            + cum_bytes % m as u64 * (c as u64 + 1) / m as u64;
        let mut end = start;
        while end < n_sites && (site_cum[end + 1] <= target || end < start + 1) {
            end += 1;
        }
        if c == m - 1 {
            end = n_sites;
        }
        if end > start {
            chunks.push(start..end);
            chunk_bytes.push(site_cum[end] - site_cum[start]);
        }
        start = end;
    }
}

/// Publish per-worker rendered-byte totals and the max/mean imbalance
/// ratio as gauges. Gauges are the *non-deterministic* metric space —
/// worker count and packing vary with `WEBSTRUCT_THREADS` — so these feed
/// `RUN_REPORT.json`'s `gauges` key, not the deterministic metrics tail.
fn publish_worker_gauges(worker_bytes: impl Iterator<Item = u64>) {
    let m = obs::metrics();
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut n = 0usize;
    for (w, bytes) in worker_bytes.enumerate() {
        m.set_gauge(&format!("extract.worker_bytes.w{w}"), bytes as f64);
        max = max.max(bytes);
        sum += bytes;
        n += 1;
    }
    if n > 0 && sum > 0 {
        let mean = sum as f64 / n as f64;
        m.set_gauge("extract.shard_imbalance", max as f64 / mean);
    }
}

/// A site's occurrence list may hold at most this many uncompacted
/// (possibly duplicate) entries beyond its sorted prefix before it is
/// sorted + folded in place — the same amortisation the graph
/// accumulator uses, bounding per-site memory at distinct + slack no
/// matter how many pages repeat the same entities.
const COMPACT_SLACK: usize = 64;

/// Attribute tags for packed occurrence entries (bits 62..64).
const TAG_PHONE: u64 = 0;
const TAG_ISBN: u64 = 1;
const TAG_HOMEPAGE: u64 = 2;
const TAG_REVIEW: u64 = 3;

fn attr_tag(attr: Attribute) -> u64 {
    match attr {
        Attribute::Phone => TAG_PHONE,
        Attribute::Isbn => TAG_ISBN,
        Attribute::Homepage => TAG_HOMEPAGE,
        Attribute::Review => TAG_REVIEW,
    }
}

/// Pack one occurrence: `[tag:2][entity:30][page_count:32]`. Sorting the
/// packed words sorts by (tag, entity) with the count in the low bits, so
/// equal (tag, entity) entries land adjacent and fold by adding counts.
fn pack(tag: u64, e: EntityId, pages: u32) -> u64 {
    debug_assert!(u64::from(e.raw()) < (1 << 30), "entity id overflows pack");
    (tag << 62) | (u64::from(e.raw()) << 32) | u64::from(pages)
}

fn packed_key(x: u64) -> u64 {
    x >> 32
}

fn packed_entity(x: u64) -> EntityId {
    EntityId::new(((x >> 32) & ((1 << 30) - 1)) as u32)
}

fn packed_pages(x: u64) -> u32 {
    x as u32
}

/// Sort + fold a site's packed occurrences: duplicate (tag, entity) keys
/// collapse to one entry whose page count is the sum.
fn compact_packed(l: &mut Vec<u64>) {
    l.sort_unstable();
    let mut w = 0usize;
    for r in 1..l.len() {
        if packed_key(l[r]) == packed_key(l[w]) {
            let pages = packed_pages(l[w]).saturating_add(packed_pages(l[r]));
            l[w] = (l[w] & !0xFFFF_FFFF) | u64::from(pages);
        } else {
            w += 1;
            l[w] = l[r];
        }
    }
    l.truncate(w + usize::from(!l.is_empty()));
}

/// Per-site packed occurrence lists with amortised sort+fold — the
/// spill-friendly storage behind [`ExtractedWeb`]. All four attributes
/// share one sorted `Vec<u64>` per site (plus a 4-byte compaction mark):
/// 28 bytes of per-site header against ~192 for four hash tables, and 8
/// bytes per occurrence flat. With one accumulator per worker the
/// per-site headers are most of a full-scale worker's footprint, so the
/// cheap representation is what keeps the streamed pipeline's peak RSS
/// flat across thread counts.
#[derive(Debug, Clone, Default)]
struct SiteOccurrences {
    lists: Vec<Vec<u64>>,
    /// Length of each site's sorted+folded prefix.
    sorted: Vec<u32>,
}

impl SiteOccurrences {
    fn new(n_sites: usize) -> Self {
        SiteOccurrences {
            lists: vec![Vec::new(); n_sites],
            sorted: vec![0; n_sites],
        }
    }

    fn n_sites(&self) -> usize {
        self.lists.len()
    }

    fn clear(&mut self) {
        for l in &mut self.lists {
            l.clear();
        }
        self.sorted.fill(0);
    }

    fn maybe_compact(&mut self, s: usize) {
        let l = &mut self.lists[s];
        if l.len() >= self.sorted[s] as usize + COMPACT_SLACK {
            compact_packed(l);
            self.sorted[s] = l.len() as u32;
        }
    }

    fn push(&mut self, s: usize, tag: u64, ids: &[EntityId], pages: u32) {
        if ids.is_empty() {
            return;
        }
        self.lists[s].extend(ids.iter().map(|&e| pack(tag, e, pages)));
    }

    /// The site's occurrences, sorted + folded — compacting a copy when a
    /// slack tail is still buffered.
    fn compacted(&self, s: usize) -> Vec<u64> {
        let mut v = self.lists[s].clone();
        if (self.sorted[s] as usize) < v.len() {
            compact_packed(&mut v);
        }
        v
    }

    /// The site's distinct entities for `tag`, sorted ascending.
    fn entities(&self, s: usize, tag: u64) -> Vec<EntityId> {
        self.compacted(s)
            .into_iter()
            .filter(|&x| x >> 62 == tag)
            .map(packed_entity)
            .collect()
    }

    fn distinct_count(&self, s: usize, tag: u64) -> usize {
        let exact = self.sorted[s] as usize == self.lists[s].len();
        let v;
        let entries: &[u64] = if exact {
            &self.lists[s]
        } else {
            v = self.compacted(s);
            &v
        };
        entries.iter().filter(|&&x| x >> 62 == tag).count()
    }

    /// Compact and shrink every list in `lo..=hi` to its exact final
    /// size. Shard workers call this when a shard completes: shards never
    /// split a site, so those lists will not grow again, and dropping the
    /// `Vec` doubling slack roughly halves the accumulator's resident
    /// footprint at full scale. Sealing is idempotent and safe even if a
    /// site *were* pushed again — the list simply regrows.
    fn seal(&mut self, lo: usize, hi: usize) {
        if self.lists.is_empty() {
            return;
        }
        for s in lo..=hi.min(self.lists.len() - 1) {
            let l = &mut self.lists[s];
            if (self.sorted[s] as usize) < l.len() {
                compact_packed(l);
            }
            l.shrink_to_fit();
            self.sorted[s] = l.len() as u32;
        }
    }

    fn merge(&mut self, other: SiteOccurrences) {
        for (s, (src, sm)) in other.lists.into_iter().zip(other.sorted).enumerate() {
            if src.is_empty() {
                continue;
            }
            let dst = &mut self.lists[s];
            if dst.is_empty() {
                *dst = src;
                self.sorted[s] = sm;
            } else {
                dst.extend_from_slice(&src);
                compact_packed(dst);
                self.sorted[s] = dst.len() as u32;
            }
        }
    }

    fn merge_ref(&mut self, other: &SiteOccurrences) {
        for (s, src) in other.lists.iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            let dst = &mut self.lists[s];
            dst.extend_from_slice(src);
            compact_packed(dst);
            self.sorted[s] = dst.len() as u32;
        }
    }
}

/// Aggregated extraction results, grouped by host as in the paper.
#[derive(Debug, Clone)]
pub struct ExtractedWeb {
    n_entities: usize,
    /// Packed per-site (attribute, entity, review_page_count) occurrences;
    /// Figure 4(b) counts review *pages*, so review entries carry counts.
    occurrences: SiteOccurrences,
    /// Diagnostics.
    pub pages_processed: u64,
    /// Total bytes of page text that entered extraction (truncated pages
    /// count only the bytes that survived the cut). Drives MB/sec
    /// throughput reporting in the bench.
    pub bytes_rendered: u64,
    /// Phone matches not in the catalog (noise hits).
    pub unmatched_phones: u64,
    /// ISBN matches not in the catalog.
    pub unmatched_isbns: u64,
    /// Anchors pointing outside the catalog.
    pub unmatched_hrefs: u64,
    /// Pages ingested from truncated fetches (partial yield).
    pub truncated_pages: u64,
    /// Pages dropped entirely (dead site or failed fetch).
    pub skipped_pages: u64,
    /// Log₂-bucketed distribution of per-page text sizes — scratch-local
    /// (plain array increments on the hot path), merged shard-wise with
    /// the rest of the accumulator and published once per
    /// [`Extractor::extract_web`] run.
    pub page_bytes: LocalHistogram,
}

impl ExtractedWeb {
    /// Empty accumulator for `n_sites` sites.
    #[must_use]
    pub fn new(n_sites: usize, n_entities: usize) -> Self {
        ExtractedWeb {
            n_entities,
            occurrences: SiteOccurrences::new(n_sites),
            pages_processed: 0,
            bytes_rendered: 0,
            unmatched_phones: 0,
            unmatched_isbns: 0,
            unmatched_hrefs: 0,
            truncated_pages: 0,
            skipped_pages: 0,
            page_bytes: LocalHistogram::new(),
        }
    }

    /// Reset to the empty accumulation over a `(n_sites, n_entities)`
    /// universe. When the universe matches the current one, every set and
    /// map keeps its capacity — the pooled extraction path allocates
    /// nothing on reuse; otherwise the accumulator is rebuilt.
    pub fn reset_for(&mut self, n_sites: usize, n_entities: usize) {
        if self.n_sites() != n_sites || self.n_entities != n_entities {
            *self = ExtractedWeb::new(n_sites, n_entities);
            return;
        }
        self.occurrences.clear();
        self.pages_processed = 0;
        self.bytes_rendered = 0;
        self.unmatched_phones = 0;
        self.unmatched_isbns = 0;
        self.unmatched_hrefs = 0;
        self.truncated_pages = 0;
        self.skipped_pages = 0;
        self.page_bytes = LocalHistogram::new();
    }

    /// Publish this accumulation's totals to the global `extract.*`
    /// metrics. Every value is a pure function of the workload (counter
    /// addition and histogram merge are commutative), so the registry
    /// snapshot is identical for any shard count.
    pub fn publish_metrics(&self) {
        let m = obs::metrics();
        m.add("extract.pages", self.pages_processed);
        m.add("extract.bytes", self.bytes_rendered);
        m.add("extract.truncated_pages", self.truncated_pages);
        m.add("extract.skipped_pages", self.skipped_pages);
        m.add("extract.unmatched_phones", self.unmatched_phones);
        m.add("extract.unmatched_isbns", self.unmatched_isbns);
        m.add("extract.unmatched_hrefs", self.unmatched_hrefs);
        m.merge_histogram("extract.page_bytes", &self.page_bytes);
    }

    /// Fold one page's extraction into the per-site aggregates.
    ///
    /// # Panics
    /// Panics when `site` is out of range for the accumulator.
    pub fn ingest(&mut self, site: SiteId, ex: &PageExtraction) {
        let s = site.index();
        self.pages_processed += 1;
        if ex.truncated {
            self.truncated_pages += 1;
        }
        self.unmatched_phones += u64::from(ex.unmatched_phones);
        self.unmatched_isbns += u64::from(ex.unmatched_isbns);
        self.unmatched_hrefs += u64::from(ex.unmatched_hrefs);
        self.occurrences.push(s, TAG_PHONE, &ex.phone_entities, 0);
        self.occurrences.push(s, TAG_ISBN, &ex.isbn_entities, 0);
        self.occurrences.push(s, TAG_HOMEPAGE, &ex.homepage_entities, 0);
        if ex.is_review {
            // The paper attributes a review page to every restaurant whose
            // phone appears on it (usually exactly one).
            self.occurrences.push(s, TAG_REVIEW, &ex.phone_entities, 1);
        }
        self.occurrences.maybe_compact(s);
    }

    /// Number of sites tracked.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.occurrences.n_sites()
    }

    /// Seal the sites in `lo..=hi`: compact their occurrence lists and
    /// shrink them to exact-fit capacity. Called by the shard workers
    /// after each finished shard (shards partition sites, so a finished
    /// shard's lists are final).
    pub fn seal_sites(&mut self, lo: u32, hi: u32) {
        self.occurrences.seal(lo as usize, hi as usize);
    }

    /// Number of catalog entities.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Per-site sorted entity lists for an attribute — the same shape as
    /// `Web::occurrence_lists`, so oracle and extracted data feed the same
    /// analyses.
    ///
    /// # Panics
    /// Panics for attributes the pipeline does not extract (none today).
    #[must_use]
    pub fn occurrence_lists(&self, attr: Attribute) -> Vec<Vec<EntityId>> {
        let tag = attr_tag(attr);
        (0..self.n_sites())
            .map(|s| self.occurrences.entities(s, tag))
            .collect()
    }

    /// One site's distinct entities for `attr`, sorted ascending — the
    /// ranged counterpart of
    /// [`occurrence_lists`](ExtractedWeb::occurrence_lists), so the
    /// incremental pipeline can feed streaming accumulators shard by
    /// shard without materializing the full-width table.
    ///
    /// # Panics
    /// Panics when `site` is out of range.
    #[must_use]
    pub fn site_entities(&self, site: usize, attr: Attribute) -> Vec<EntityId> {
        self.occurrences.entities(site, attr_tag(attr))
    }

    /// Per-site `(entity, review_page_count)` lists.
    #[must_use]
    pub fn review_page_lists(&self) -> Vec<Vec<(EntityId, u32)>> {
        (0..self.n_sites())
            .map(|s| {
                self.occurrences
                    .compacted(s)
                    .into_iter()
                    .filter(|&x| x >> 62 == TAG_REVIEW)
                    .map(|x| (packed_entity(x), packed_pages(x)))
                    .collect()
            })
            .collect()
    }

    /// Total (site, entity) pairs for an attribute.
    ///
    /// Fully compacted sites (the steady state) are counted straight from
    /// their lists; a site still buffering a slack tail compacts a copy.
    #[must_use]
    pub fn total_occurrences(&self, attr: Attribute) -> usize {
        let tag = attr_tag(attr);
        (0..self.n_sites())
            .map(|s| self.occurrences.distinct_count(s, tag))
            .sum()
    }

    /// Fold another accumulator over the same site/entity universe into
    /// this one. Shards produced by site-partitioned extraction touch
    /// disjoint sites, but the merge is correct for overlapping ones too:
    /// entity sets union, review page counts add, diagnostics add.
    ///
    /// # Panics
    /// Panics when the accumulators track different numbers of sites or
    /// entities.
    pub fn merge(&mut self, other: ExtractedWeb) {
        assert_eq!(self.n_sites(), other.n_sites(), "site universe mismatch");
        assert_eq!(self.n_entities, other.n_entities, "entity universe mismatch");
        self.pages_processed += other.pages_processed;
        self.bytes_rendered += other.bytes_rendered;
        self.unmatched_phones += other.unmatched_phones;
        self.unmatched_isbns += other.unmatched_isbns;
        self.unmatched_hrefs += other.unmatched_hrefs;
        self.truncated_pages += other.truncated_pages;
        self.skipped_pages += other.skipped_pages;
        self.page_bytes.merge(&other.page_bytes);
        self.occurrences.merge(other.occurrences);
    }

    /// [`ExtractedWeb::merge`] from a borrowed accumulator: entity ids are
    /// `Copy`, so nothing is stolen from `other` — the pooled path merges
    /// shard accumulators while leaving their capacity in the pool.
    ///
    /// # Panics
    /// Panics when the accumulators track different numbers of sites or
    /// entities.
    pub fn merge_ref(&mut self, other: &ExtractedWeb) {
        assert_eq!(self.n_sites(), other.n_sites(), "site universe mismatch");
        assert_eq!(self.n_entities, other.n_entities, "entity universe mismatch");
        self.pages_processed += other.pages_processed;
        self.bytes_rendered += other.bytes_rendered;
        self.unmatched_phones += other.unmatched_phones;
        self.unmatched_isbns += other.unmatched_isbns;
        self.unmatched_hrefs += other.unmatched_hrefs;
        self.truncated_pages += other.truncated_pages;
        self.skipped_pages += other.skipped_pages;
        self.page_bytes.merge(&other.page_bytes);
        self.occurrences.merge_ref(&other.occurrences);
    }

    /// Serialize this accumulator's results for the sites in `sites` as a
    /// canonical, content-addressable snapshot — the payload the
    /// extraction cache stores beside each shard. The encoding is
    /// deterministic (per-site lists are emitted compacted: sorted and
    /// folded), so extracting the same shard bytes always serializes to
    /// the same snapshot bytes regardless of thread schedule. Counters
    /// and the page-size histogram cover the *whole* accumulator, so call
    /// this on a single-shard accumulation
    /// ([`Extractor::extract_one_shard`]), not a merged one.
    ///
    /// Layout, little-endian: `"WSX1"`, version `u32`, site range
    /// `[lo, hi)` as two `u32`s, seven diagnostic counters (`u64` each:
    /// pages, bytes, unmatched phones/isbns/hrefs, truncated, skipped),
    /// the page-size histogram
    /// ([`LocalHistogram::to_bytes`]), then per site an entry count
    /// `u32` followed by that many packed `u64` occurrences.
    #[must_use]
    pub fn shard_snapshot_bytes(&self, sites: std::ops::Range<usize>) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + 64 * sites.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&(sites.start as u32).to_le_bytes());
        out.extend_from_slice(&(sites.end as u32).to_le_bytes());
        for c in [
            self.pages_processed,
            self.bytes_rendered,
            self.unmatched_phones,
            self.unmatched_isbns,
            self.unmatched_hrefs,
            self.truncated_pages,
            self.skipped_pages,
        ] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.page_bytes.to_bytes());
        for s in sites {
            let entries = self.occurrences.compacted(s);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries {
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        out
    }

    /// Fold a serialized shard snapshot into this accumulator — the
    /// cache-hit half of the incremental pipeline, equivalent to merging
    /// the [`ExtractedWeb`] the snapshot was taken from. Merging a
    /// snapshot into an accumulator whose sites in the snapshot's range
    /// are empty reproduces byte-for-byte the state a fresh extraction of
    /// that shard would have merged (snapshots store compacted lists, and
    /// [`merge`](ExtractedWeb::merge) compacts on contact).
    ///
    /// # Errors
    /// A static description of the first structural problem: wrong magic
    /// or version, a truncated buffer, or a site range outside this
    /// accumulator's universe. Digest-level corruption is the cache
    /// layer's job to catch before the bytes get here.
    pub fn merge_snapshot(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.len() < SNAPSHOT_HEADER_LEN {
            return Err("snapshot shorter than its header");
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err("bad snapshot magic (want WSX1)");
        }
        if u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) != 1 {
            return Err("unsupported snapshot version");
        }
        let lo = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let hi = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if lo > hi || hi > self.n_sites() {
            return Err("snapshot site range outside accumulator universe");
        }
        let mut at = 16usize;
        let counter = |at: &mut usize| {
            let v = u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
            *at += 8;
            v
        };
        self.pages_processed += counter(&mut at);
        self.bytes_rendered += counter(&mut at);
        self.unmatched_phones += counter(&mut at);
        self.unmatched_isbns += counter(&mut at);
        self.unmatched_hrefs += counter(&mut at);
        self.truncated_pages += counter(&mut at);
        self.skipped_pages += counter(&mut at);
        let hist = LocalHistogram::from_bytes(&bytes[at..at + LocalHistogram::WIRE_LEN])
            .ok_or("undecodable snapshot histogram")?;
        self.page_bytes.merge(&hist);
        at += LocalHistogram::WIRE_LEN;
        for s in lo..hi {
            if at + 4 > bytes.len() {
                return Err("snapshot truncated in site table");
            }
            let n = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4;
            if at + n * 8 > bytes.len() {
                return Err("snapshot truncated in occurrence list");
            }
            if n > 0 {
                let dst = &mut self.occurrences.lists[s];
                let was_empty = dst.is_empty();
                dst.reserve_exact(n);
                for k in 0..n {
                    dst.push(u64::from_le_bytes(
                        bytes[at + k * 8..at + k * 8 + 8].try_into().expect("8 bytes"),
                    ));
                }
                // Snapshots store compacted lists, so a fresh site is
                // already canonical; a site with prior entries re-folds.
                if !was_empty {
                    compact_packed(dst);
                }
                dst.shrink_to_fit();
                self.occurrences.sorted[s] = dst.len() as u32;
            }
            at += n * 8;
        }
        if at != bytes.len() {
            return Err("snapshot has trailing bytes");
        }
        Ok(())
    }
}

impl Default for ExtractedWeb {
    /// The empty accumulator over the empty universe — the placeholder a
    /// fresh [`ExtractPool`] starts from before its first run resizes it.
    fn default() -> Self {
        ExtractedWeb::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_review_classifier;
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::CatalogConfig;
    use webstruct_corpus::page::{PageConfig, PageKind, PageStream};
    use webstruct_corpus::web::{Web, WebConfig};
    use webstruct_util::rng::Seed;

    fn restaurant_fixture() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 400), Seed(31));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Restaurants).scaled(0.01),
            Seed(31),
        );
        (catalog, web)
    }

    #[test]
    fn extracted_phone_relation_equals_ground_truth() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Phone),
            web.occurrence_lists(Attribute::Phone),
            "extraction must reproduce the ground-truth phone relation"
        );
    }

    #[test]
    fn extracted_homepage_relation_equals_ground_truth() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Homepage),
            web.occurrence_lists(Attribute::Homepage)
        );
        // Noise anchors were present but never matched the catalog.
        assert!(extracted.unmatched_hrefs > 0);
    }

    #[test]
    fn extracted_isbn_relation_equals_ground_truth() {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(Domain::Books, 400), Seed(33));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Books).scaled(0.01),
            Seed(33),
        );
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(34));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            extracted.occurrence_lists(Attribute::Isbn),
            web.occurrence_lists(Attribute::Isbn)
        );
    }

    #[test]
    fn review_extraction_recovers_review_pages() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let n_review_pages = pages.iter().filter(|p| p.kind == PageKind::Review).count();
        let extracted = extractor.extract_all(web.n_sites(), pages);
        let recovered: u32 = extracted
            .review_page_lists()
            .iter()
            .flat_map(|l| l.iter().map(|&(_, c)| c))
            .sum();
        assert!(n_review_pages > 0);
        // The classifier is imperfect, but recall should be high and false
        // positives rare.
        let recall = f64::from(recovered) / n_review_pages as f64;
        assert!(
            (0.9..=1.1).contains(&recall),
            "recovered {recovered} of {n_review_pages} review pages"
        );
    }

    #[test]
    fn unmatched_phone_noise_is_counted_but_excluded() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        // Invalid lookalikes (area < 200) are rejected by the scanner, so
        // they never even reach the unmatched counter; tracking numbers are
        // too long. Unmatched phones only arise from valid-format numbers
        // in training-noise, which our listing pages do not contain.
        assert_eq!(extracted.unmatched_phones, 0);
        assert!(extracted.pages_processed > 0);
    }

    #[test]
    fn snapshot_replay_is_bit_identical_to_direct_extraction() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let sharded = ShardedWeb::rendered(&web, &catalog, PageConfig::default(), Seed(32));
        let ShardedWeb::Rendered { ref specs, .. } = sharded else {
            unreachable!()
        };
        let specs = specs.clone();
        let direct = extractor
            .extract_sharded(&sharded, web.n_sites(), 2)
            .unwrap();
        // Extract each shard alone, serialize, and replay the snapshots
        // into a fresh accumulator — the cache-hit path end to end.
        let mut replayed = ExtractedWeb::new(web.n_sites(), catalog.len());
        for (i, spec) in specs.iter().enumerate() {
            let acc = extractor
                .extract_one_shard(&sharded, i, web.n_sites())
                .unwrap();
            let bytes = acc.shard_snapshot_bytes(spec.sites.clone());
            replayed.merge_snapshot(&bytes).unwrap();
        }
        for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
            assert_eq!(replayed.occurrence_lists(attr), direct.occurrence_lists(attr));
        }
        assert_eq!(replayed.review_page_lists(), direct.review_page_lists());
        assert_eq!(replayed.pages_processed, direct.pages_processed);
        assert_eq!(replayed.page_bytes, direct.page_bytes);
        // The strongest form: the two accumulators serialize identically.
        assert_eq!(
            replayed.shard_snapshot_bytes(0..web.n_sites()),
            direct.shard_snapshot_bytes(0..web.n_sites())
        );
    }

    #[test]
    fn merge_snapshot_rejects_structural_damage() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let sharded = ShardedWeb::rendered(&web, &catalog, PageConfig::default(), Seed(32));
        let acc = extractor
            .extract_one_shard(&sharded, 0, web.n_sites())
            .unwrap();
        let bytes = acc.shard_snapshot_bytes(0..web.n_sites());
        let mut fresh = ExtractedWeb::new(web.n_sites(), catalog.len());
        assert!(fresh.merge_snapshot(&bytes[..10]).is_err(), "truncated header");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(fresh.merge_snapshot(&bad).is_err(), "bad magic");
        assert!(
            fresh.merge_snapshot(&bytes[..bytes.len() - 1]).is_err(),
            "truncated tail"
        );
    }

    #[test]
    fn parallel_extraction_is_bit_identical_to_sequential() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let sequential = extractor.extract_web(&web, &PageConfig::default(), Seed(32), 1);
        for threads in [2, 3, 8] {
            let parallel = extractor.extract_web(&web, &PageConfig::default(), Seed(32), threads);
            for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
                assert_eq!(
                    parallel.occurrence_lists(attr),
                    sequential.occurrence_lists(attr),
                    "{attr:?} diverged at {threads} threads"
                );
            }
            assert_eq!(parallel.review_page_lists(), sequential.review_page_lists());
            assert_eq!(parallel.pages_processed, sequential.pages_processed);
            assert_eq!(parallel.unmatched_phones, sequential.unmatched_phones);
            assert_eq!(parallel.unmatched_isbns, sequential.unmatched_isbns);
            assert_eq!(parallel.unmatched_hrefs, sequential.unmatched_hrefs);
        }
    }

    #[test]
    fn size_chunks_cover_every_site_once_and_balance_bytes() {
        let (_, web) = restaurant_fixture();
        let cfg = PageConfig::default();
        for threads in [1usize, 2, 3, 8] {
            let mut first_page = Vec::new();
            let mut chunks = Vec::new();
            let mut chunk_bytes = Vec::new();
            plan_size_chunks(&web, &cfg, threads, &mut first_page, &mut chunks, &mut chunk_bytes);
            assert_eq!(chunks.len(), chunk_bytes.len());
            // Contiguous, exhaustive, non-overlapping.
            let mut next = 0usize;
            for c in &chunks {
                assert_eq!(c.start, next);
                assert!(c.end > c.start);
                next = c.end;
            }
            assert_eq!(next, web.n_sites());
            // Byte estimates are consistent with the per-site model.
            for (c, &b) in chunks.iter().zip(&chunk_bytes) {
                let expect: u64 = c
                    .clone()
                    .map(|i| PageStream::estimated_site_bytes(&web, &cfg, i))
                    .sum();
                assert_eq!(b, expect);
            }
            // LPT over these chunks achieves the classic bound: max load
            // at most mean + largest chunk. (An indivisible Zipfian-head
            // site can exceed the mean on its own — no site-granular
            // schedule beats that — but nothing may be stacked on top of
            // a load already above the mean.)
            if threads > 1 {
                let assignment = webstruct_util::par::lpt_assign(&chunk_bytes, threads);
                let loads: Vec<u64> = assignment
                    .iter()
                    .map(|l| l.iter().map(|&i| chunk_bytes[i]).sum())
                    .collect();
                let max = *loads.iter().max().unwrap();
                let mean = loads.iter().sum::<u64>() / loads.len() as u64;
                let largest = *chunk_bytes.iter().max().unwrap();
                assert!(
                    max <= mean + largest,
                    "load {max} exceeds mean {mean} + largest chunk {largest} \
                     at {threads} threads (loads {loads:?})"
                );
            }
        }
    }

    #[test]
    fn sharded_extraction_is_bit_identical_to_in_memory() {
        let (catalog, web) = restaurant_fixture();
        let clf = train_review_classifier(Seed(35), 150).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        let cfg = PageConfig::default();
        let in_memory = extractor.extract_web(&web, &cfg, Seed(32), 1);

        // Rendered shards (no disk), across thread counts.
        let specs = webstruct_corpus::shard::plan_shards(&web, &cfg, 64 * 1024);
        assert!(specs.len() > 2, "fixture should cut several shards");
        let rendered = ShardedWeb::Rendered {
            web: &web,
            catalog: &catalog,
            config: cfg.clone(),
            seed: Seed(32),
            specs,
        };
        for threads in [1usize, 2, 8] {
            let streamed = extractor
                .extract_sharded(&rendered, web.n_sites(), threads)
                .expect("rendered shards");
            for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
                assert_eq!(
                    streamed.occurrence_lists(attr),
                    in_memory.occurrence_lists(attr),
                    "{attr:?} diverged at {threads} threads"
                );
            }
            assert_eq!(streamed.pages_processed, in_memory.pages_processed);
            assert_eq!(streamed.bytes_rendered, in_memory.bytes_rendered);
            assert_eq!(streamed.page_bytes, in_memory.page_bytes);
        }

        // Stored shards (round-trip through disk).
        let dir = std::env::temp_dir()
            .join(format!("webstruct-extract-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(32), 64 * 1024)
            .expect("write shards");
        for threads in [1usize, 4] {
            let from_disk = extractor
                .extract_store(&store, web.n_sites(), threads)
                .expect("read shards");
            assert_eq!(
                from_disk.occurrence_lists(Attribute::Phone),
                in_memory.occurrence_lists(Attribute::Phone)
            );
            assert_eq!(from_disk.review_page_lists(), in_memory.review_page_lists());
            assert_eq!(from_disk.pages_processed, in_memory.pages_processed);
            assert_eq!(from_disk.bytes_rendered, in_memory.bytes_rendered);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extract_store_surfaces_corruption() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let cfg = PageConfig::default();
        let dir = std::env::temp_dir()
            .join(format!("webstruct-extract-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(32), 64 * 1024)
            .expect("write shards");
        // Flip one payload byte in the first shard.
        let path = &store.paths()[0];
        let mut bytes = std::fs::read(path).expect("read shard");
        let k = bytes.len() - 9;
        bytes[k] ^= 0x40;
        std::fs::write(path, &bytes).expect("rewrite shard");
        let err = extractor
            .extract_store(&store, web.n_sites(), 2)
            .expect_err("corruption must surface");
        assert!(matches!(err, ShardError::ChecksumMismatch), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extract_web_single_thread_matches_extract_all() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let via_web = extractor.extract_web(&web, &PageConfig::default(), Seed(32), 1);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let via_stream = extractor.extract_all(web.n_sites(), pages);
        assert_eq!(
            via_web.occurrence_lists(Attribute::Phone),
            via_stream.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(via_web.pages_processed, via_stream.pages_processed);
    }

    #[test]
    fn merge_unions_sets_and_adds_counts() {
        let mut a = ExtractedWeb::new(2, 10);
        let mut b = ExtractedWeb::new(2, 10);
        let e1 = EntityId::new(1);
        let e2 = EntityId::new(2);
        a.ingest(
            SiteId::new(0),
            &PageExtraction {
                phone_entities: vec![e1],
                is_review: true,
                ..PageExtraction::default()
            },
        );
        b.ingest(
            SiteId::new(0),
            &PageExtraction {
                phone_entities: vec![e1, e2],
                is_review: true,
                ..PageExtraction::default()
            },
        );
        b.ingest(
            SiteId::new(1),
            &PageExtraction {
                unmatched_phones: 3,
                ..PageExtraction::default()
            },
        );
        a.merge(b);
        assert_eq!(a.pages_processed, 3);
        assert_eq!(a.unmatched_phones, 3);
        assert_eq!(a.total_occurrences(Attribute::Phone), 2);
        assert_eq!(a.review_page_lists()[0], vec![(e1, 2), (e2, 1)]);
    }

    #[test]
    fn repeated_ingest_keeps_per_site_lists_compact() {
        // 10k pages repeating the same two entities must not grow the
        // site's buffers past distinct + slack — the property that keeps
        // a worker's accumulator memory proportional to distinct
        // occurrences, not page count.
        let mut acc = ExtractedWeb::new(1, 10);
        let ex = PageExtraction {
            phone_entities: vec![EntityId::new(3), EntityId::new(7)],
            is_review: true,
            ..PageExtraction::default()
        };
        for _ in 0..10_000 {
            acc.ingest(SiteId::new(0), &ex);
        }
        // 4 distinct (tag, entity) keys: 2 phone + 2 review.
        assert!(acc.occurrences.lists[0].len() <= 4 + COMPACT_SLACK);
        assert_eq!(acc.total_occurrences(Attribute::Phone), 2);
        assert_eq!(
            acc.review_page_lists()[0],
            vec![(EntityId::new(3), 10_000), (EntityId::new(7), 10_000)]
        );
    }

    #[test]
    fn total_occurrences_matches_list_lengths() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(32));
        let extracted = extractor.extract_all(web.n_sites(), pages);
        for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
            let listed: usize = extracted
                .occurrence_lists(attr)
                .iter()
                .map(Vec::len)
                .sum();
            assert_eq!(extracted.total_occurrences(attr), listed, "{attr:?}");
        }
    }

    #[test]
    fn faulty_extraction_under_none_plan_is_identical() {
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let clean = extractor.extract_all(web.n_sites(), pages.clone());
        let faulty = extractor.extract_all_faulty(
            web.n_sites(),
            pages,
            &webstruct_util::fault::FaultPlan::none(),
        );
        assert_eq!(
            faulty.occurrence_lists(Attribute::Phone),
            clean.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(faulty.pages_processed, clean.pages_processed);
        assert_eq!(faulty.truncated_pages, 0);
        assert_eq!(faulty.skipped_pages, 0);
    }

    #[test]
    fn truncated_pages_yield_partial_extractions() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let clean = extractor.extract_all(web.n_sites(), pages.clone());
        let plan = FaultPlan::new(
            FaultConfig {
                truncation_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(40),
        );
        let faulty = extractor.extract_all_faulty(web.n_sites(), pages, &plan);
        assert_eq!(faulty.pages_processed, clean.pages_processed);
        assert_eq!(faulty.truncated_pages, faulty.pages_processed);
        // Partial pages can only lose matches, never invent them.
        assert!(
            faulty.total_occurrences(Attribute::Phone)
                <= clean.total_occurrences(Attribute::Phone)
        );
        for (partial, full) in faulty
            .occurrence_lists(Attribute::Phone)
            .iter()
            .zip(clean.occurrence_lists(Attribute::Phone))
        {
            for e in partial {
                assert!(full.contains(e), "truncation invented entity {e:?}");
            }
        }
    }

    #[test]
    fn dead_sites_drop_their_pages() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let n_pages = pages.len() as u64;
        let plan = FaultPlan::new(
            FaultConfig {
                dead_site_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(41),
        );
        let faulty = extractor.extract_all_faulty(web.n_sites(), pages, &plan);
        assert_eq!(faulty.pages_processed, 0);
        assert_eq!(faulty.skipped_pages, n_pages);
        assert_eq!(faulty.total_occurrences(Attribute::Phone), 0);
    }

    #[test]
    fn faulty_extraction_is_order_independent() {
        use webstruct_util::fault::{FaultConfig, FaultPlan};
        let (catalog, web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let pages: Vec<_> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(32)).collect();
        let plan = FaultPlan::new(FaultConfig::flaky(0.4), Seed(42));
        let forward = extractor.extract_all_faulty(web.n_sites(), pages.clone(), &plan);
        // Reorder pages across sites (stable by site would be the shard
        // order; full reversal also permutes within sites, which per-site
        // ordinals must absorb only across-site — so keep within-site
        // order while interleaving sites differently).
        let mut by_site: Vec<Vec<Page>> = vec![Vec::new(); web.n_sites()];
        for p in pages {
            by_site[p.site.index()].push(p);
        }
        let reordered: Vec<Page> = by_site.into_iter().rev().flatten().collect();
        let shuffled = extractor.extract_all_faulty(web.n_sites(), reordered, &plan);
        assert_eq!(
            forward.occurrence_lists(Attribute::Phone),
            shuffled.occurrence_lists(Attribute::Phone)
        );
        assert_eq!(forward.truncated_pages, shuffled.truncated_pages);
        assert_eq!(forward.skipped_pages, shuffled.skipped_pages);
    }

    #[test]
    fn prefix_extraction_never_panics_on_multibyte_text() {
        let (catalog, _web) = restaurant_fixture();
        let extractor = Extractor::new(&catalog);
        let page = Page {
            id: webstruct_util::ids::PageId::new(0),
            site: SiteId::new(0),
            url: "http://x.example.com/".into(),
            kind: PageKind::Listing,
            text: "caf\u{e9} \u{2603} 206-555-0100 \u{1F600} caf\u{e9}".repeat(3),
        };
        for i in 0..=20 {
            let frac = f64::from(i) / 20.0;
            let ex = extractor.extract_page_prefix(&page, frac);
            assert!(ex.truncated);
        }
        // Out-of-range fractions clamp instead of slicing out of bounds.
        let _ = extractor.extract_page_prefix(&page, -1.0);
        let _ = extractor.extract_page_prefix(&page, 2.0);
    }

    #[test]
    fn extraction_of_empty_accumulator_is_empty() {
        let acc = ExtractedWeb::new(3, 10);
        assert_eq!(acc.n_sites(), 3);
        assert_eq!(acc.n_entities(), 10);
        assert_eq!(acc.total_occurrences(Attribute::Phone), 0);
        assert!(acc
            .occurrence_lists(Attribute::Review)
            .iter()
            .all(Vec::is_empty));
    }
}
