//! A minimal HTML-lite parser: enough structure-awareness for the study's
//! extraction pipeline — anchor `href` extraction (the paper's homepage
//! methodology looks at "the content of href tags of all anchor nodes") and
//! tag stripping for text classification.
//!
//! This is deliberately not a spec-compliant HTML5 parser: the corpus
//! renders a constrained HTML subset, and the parser is robust to the
//! malformed fragments the noise models emit (unterminated tags, stray
//! angle brackets).
//!
//! The scanners skip straight to `<` / `>` / attribute-name candidates
//! with the word-at-a-time kernels in [`webstruct_util::bytescan`]
//! instead of walking every character; `#[cfg(test)] mod scalar` retains
//! the original per-char implementations as differential references.

use webstruct_util::bytescan;

/// An extracted anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchor {
    /// The raw `href` attribute value.
    pub href: String,
    /// Byte offset of the anchor tag in the document.
    pub offset: usize,
}

/// Extract the `href` value of every `<a ...>` tag.
///
/// Accepts single-quoted, double-quoted and unquoted attribute values;
/// attribute matching is case-insensitive.
#[must_use]
pub fn anchor_hrefs(html: &str) -> Vec<Anchor> {
    let mut out = Vec::new();
    for_each_anchor_href(html, |href, offset| {
        out.push(Anchor {
            href: href.to_string(),
            offset,
        });
    });
    out
}

/// Visit the `href` value of every `<a ...>` tag as a borrowed slice of
/// `html`, with the tag's byte offset. The allocation-free core of
/// [`anchor_hrefs`]: the hot extraction path resolves each href against
/// the catalog without ever owning the string.
pub fn for_each_anchor_href(html: &str, mut f: impl FnMut(&str, usize)) {
    let bytes = html.as_bytes();
    let mut i = 0;
    // `<` and `>` are ASCII, so every offset the skip scans return is a
    // UTF-8 character boundary (see `bytescan`'s module docs) and the
    // `&str` slices below never split a code point.
    while let Some(tag_start) = bytescan::memchr(b'<', &bytes[i..]).map(|p| i + p) {
        // Find the end of the tag (or give up at EOF for unterminated tags).
        let Some(tag_end) = bytescan::memchr(b'>', &bytes[tag_start..]).map(|p| tag_start + p)
        else {
            break;
        };
        let tag = &html[tag_start + 1..tag_end];
        i = tag_end + 1;
        // Must be exactly "a" followed by ASCII whitespace (not <abbr>
        // etc.); a bare <a> has no href.
        let t = tag.as_bytes();
        if t.len() < 2 || !matches!(t[0], b'a' | b'A') || !t[1].is_ascii_whitespace() {
            continue;
        }
        if let Some(href) = find_attr(tag, "href") {
            f(href, tag_start);
        }
    }
}

/// Find the value of `attr` within a tag body (case-insensitive name),
/// returned as a borrowed slice of the tag. No allocation: candidate
/// positions come from [`bytescan::find_ascii_ci`] rather than a
/// byte-at-a-time walk, and the name never needs a lowercased copy.
pub(crate) fn find_attr<'t>(tag: &'t str, attr: &str) -> Option<&'t str> {
    let bytes = tag.as_bytes();
    let name = attr.as_bytes();
    let mut pos = 0;
    while pos + name.len() <= bytes.len() {
        let hit = pos + bytescan::find_ascii_ci(&bytes[pos..], name)?;
        // Must be preceded by whitespace and followed (possibly after
        // spaces) by '='.
        let before_ok = hit > 0 && bytes[hit - 1].is_ascii_whitespace();
        let after = tag[hit + name.len()..].trim_start();
        if before_ok && after.starts_with('=') {
            let value = after[1..].trim_start();
            return Some(parse_attr_value(value));
        }
        pos = hit + name.len();
    }
    None
}

fn parse_attr_value(value: &str) -> &str {
    let mut chars = value.chars();
    match chars.next() {
        Some(q @ ('"' | '\'')) => {
            let body = &value[1..];
            &body[..body.find(q).unwrap_or(body.len())]
        }
        Some(_) => {
            let end = value
                .find(|c: char| c.is_ascii_whitespace())
                .unwrap_or(value.len());
            &value[..end]
        }
        None => "",
    }
}

/// Strip tags, returning visible text with tags replaced by single spaces
/// (so tokens never merge across tag boundaries).
#[must_use]
pub fn strip_tags(html: &str) -> String {
    let mut out = String::with_capacity(html.len());
    strip_tags_into(html, &mut out);
    out
}

/// Strip tags into a reused buffer (cleared first). The hot-path variant
/// of [`strip_tags`]: steady-state calls allocate nothing once the buffer
/// has grown to the largest page seen.
pub fn strip_tags_into(html: &str, out: &mut String) {
    out.clear();
    out.reserve(html.len());
    let bytes = html.as_bytes();
    let mut i = 0;
    let mut in_tag = false;
    // Jump between `<`/`>` delimiters and copy (or drop) whole spans at
    // once. Both delimiters are ASCII, so every span edge is a UTF-8
    // character boundary and the visible spans copy byte-exactly. The
    // state machine is the same as the old per-char loop: `<` always
    // emits one space (even nested inside a tag), `>` closes without
    // emitting, text inside tags is dropped.
    while let Some(p) = bytescan::memchr2(b'<', b'>', &bytes[i..]).map(|p| i + p) {
        if !in_tag {
            out.push_str(&html[i..p]);
        }
        if bytes[p] == b'<' {
            in_tag = true;
            out.push(' ');
        } else {
            in_tag = false;
        }
        i = p + 1;
    }
    if !in_tag {
        out.push_str(&html[i..]);
    }
}

/// Parse the host out of an absolute URL (`http://` / `https://`),
/// lowercased, with any `www.` prefix removed. Returns `None` for other
/// schemes or malformed input.
#[must_use]
pub fn url_host(url: &str) -> Option<String> {
    let mut out = String::new();
    url_host_into(url, &mut out).then_some(out)
}

/// Write the normalised host of `url` into a reused buffer (cleared
/// first), returning `false` for non-http(s) schemes or malformed input.
/// The allocation-free core of [`url_host`].
pub fn url_host_into(url: &str, out: &mut String) -> bool {
    out.clear();
    let Some(rest) = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .or_else(|| url.strip_prefix("HTTP://"))
        .or_else(|| url.strip_prefix("HTTPS://"))
    else {
        return false;
    };
    let host_end = rest
        .find(['/', '?', '#', ':'])
        .unwrap_or(rest.len());
    let host = &rest[..host_end];
    if host.is_empty() || !host.contains('.') {
        return false;
    }
    // Lowercase while copying; strip a `www.` prefix (case-insensitively,
    // matching `to_ascii_lowercase` + `strip_prefix` semantics).
    let host = if host.len() >= 4 && host.as_bytes()[..4].eq_ignore_ascii_case(b"www.") {
        &host[4..]
    } else {
        host
    };
    if host.is_empty() {
        return false;
    }
    out.extend(host.chars().map(|c| c.to_ascii_lowercase()));
    true
}

/// The longest prefix of `text` that fits in `keep_bytes` without
/// splitting a UTF-8 character — what a connection cut mid-transfer
/// leaves behind, minus the dangling partial code point. `keep_bytes`
/// past the end returns the whole text.
#[must_use]
pub fn truncate_at_char_boundary(text: &str, keep_bytes: usize) -> &str {
    if keep_bytes >= text.len() {
        return text;
    }
    let mut end = keep_bytes;
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    &text[..end]
}

/// The original per-character scanners, kept verbatim as reference
/// implementations: the differential tests (here and in
/// `crate::differential`) assert the `bytescan`-based rewrites above are
/// observably identical on every input.
#[cfg(test)]
pub(crate) mod scalar {
    pub fn for_each_anchor_href(html: &str, mut f: impl FnMut(&str, usize)) {
        let bytes = html.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] != b'<' {
                i += 1;
                continue;
            }
            let tag_start = i;
            let Some(rel_end) = html[i..].find('>') else {
                break;
            };
            let tag = &html[i + 1..i + rel_end];
            i += rel_end + 1;
            let mut chars = tag.chars();
            let first = chars.next();
            if !matches!(first, Some('a' | 'A')) {
                continue;
            }
            match chars.next() {
                Some(c) if !c.is_ascii_whitespace() => continue,
                None => continue,
                _ => {}
            }
            if let Some(href) = find_attr(tag, "href") {
                f(href, tag_start);
            }
        }
    }

    pub fn find_attr<'t>(tag: &'t str, attr: &str) -> Option<&'t str> {
        let bytes = tag.as_bytes();
        let name = attr.as_bytes();
        let mut pos = 0;
        while pos + name.len() <= bytes.len() {
            if !bytes[pos..pos + name.len()].eq_ignore_ascii_case(name) {
                pos += 1;
                continue;
            }
            let before_ok = pos > 0 && bytes[pos - 1].is_ascii_whitespace();
            let after = tag[pos + name.len()..].trim_start();
            if before_ok && after.starts_with('=') {
                let value = after[1..].trim_start();
                return Some(super::parse_attr_value(value));
            }
            pos += name.len();
        }
        None
    }

    pub fn strip_tags_into(html: &str, out: &mut String) {
        out.clear();
        out.reserve(html.len());
        let mut in_tag = false;
        for c in html.chars() {
            match c {
                '<' => {
                    in_tag = true;
                    out.push(' ');
                }
                '>' => in_tag = false,
                _ if !in_tag => out.push(c),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_double_quoted_hrefs() {
        let html = r#"<p>Hello</p><a href="http://foo.example.com/">foo</a>"#;
        let anchors = anchor_hrefs(html);
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].href, "http://foo.example.com/");
        assert!(anchors[0].offset > 0);
    }

    #[test]
    fn extracts_single_quoted_and_unquoted() {
        let html = "<a href='http://a.example.com/x'>a</a> <a href=http://b.example.com/>b</a>";
        let hrefs: Vec<String> = anchor_hrefs(html).into_iter().map(|a| a.href).collect();
        assert_eq!(
            hrefs,
            vec!["http://a.example.com/x", "http://b.example.com/"]
        );
    }

    #[test]
    fn ignores_non_anchor_tags_and_anchors_without_href() {
        let html = r#"<abbr href="x">n</abbr><area href="y"><a name="top">t</a>"#;
        assert!(anchor_hrefs(html).is_empty());
    }

    #[test]
    fn case_insensitive_attr_and_extra_attrs() {
        let html = r#"<A class="btn" HREF="http://c.example.com/" rel=nofollow>c</A>"#;
        let anchors = anchor_hrefs(html);
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].href, "http://c.example.com/");
    }

    #[test]
    fn survives_unterminated_tags() {
        let html = "text <a href=\"http://d.example.com/\">d</a> <a href=\"http://unfinished";
        let anchors = anchor_hrefs(html);
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].href, "http://d.example.com/");
    }

    #[test]
    fn strip_tags_keeps_visible_text() {
        let html = "<html><h2>Golden Dragon</h2>Call 415-555-0134.</html>";
        let text = strip_tags(html);
        assert!(text.contains("Golden Dragon"));
        assert!(text.contains("Call 415-555-0134."));
        assert!(!text.contains('<'));
        // Tokens do not merge across tags.
        assert!(text.contains("Dragon Call") || text.contains("Dragon  Call"));
    }

    #[test]
    fn url_host_normalises() {
        assert_eq!(
            url_host("http://www.Foo-Bar.Example.COM/path?q=1"),
            Some("foo-bar.example.com".to_string())
        );
        assert_eq!(
            url_host("https://a.example.com"),
            Some("a.example.com".to_string())
        );
        assert_eq!(
            url_host("http://a.example.com:8080/x"),
            Some("a.example.com".to_string())
        );
        assert_eq!(url_host("ftp://a.example.com/"), None);
        assert_eq!(url_host("http:///nohost"), None);
        assert_eq!(url_host("http://nodots/"), None);
        assert_eq!(url_host("not a url"), None);
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let text = "caf\u{e9} r\u{e9}sum\u{e9}"; // multi-byte é's
        for keep in 0..=text.len() + 2 {
            let cut = truncate_at_char_boundary(text, keep);
            assert!(cut.len() <= keep.min(text.len()));
            assert!(text.starts_with(cut));
            // The cut keeps exactly the characters that fit wholly within
            // `keep` bytes — derived independently from the original text.
            let expected_chars = text
                .char_indices()
                .take_while(|&(at, c)| at + c.len_utf8() <= keep)
                .count();
            assert_eq!(cut.chars().count(), expected_chars, "keep {keep}");
        }
        assert_eq!(truncate_at_char_boundary(text, text.len()), text);
        assert_eq!(truncate_at_char_boundary("", 5), "");
        // Cutting inside the 2-byte é backs off to before it.
        assert_eq!(truncate_at_char_boundary("caf\u{e9}", 4), "caf");
    }
}
