//! Multinomial Naïve Bayes — the review-page classifier of §3.2 of the
//! paper ("used a Naïve-Bayes classifier over the textual content to
//! determine if a page has review content").

use crate::tokenize::for_each_token;
use webstruct_util::hash::FxHashMap;

/// A vocabulary token with its review-vs-boilerplate log-likelihood ratio.
pub type ScoredToken = (String, f64);

/// Errors from classifier training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// Training requires at least one document of each class.
    MissingClass(&'static str),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::MissingClass(c) => {
                write!(f, "training set has no documents of class '{c}'")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// A binary multinomial Naïve Bayes classifier with Laplace smoothing.
///
/// Class `true` is "review page"; class `false` is "non-review page".
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// token -> (count in positive docs, count in negative docs)
    token_counts: FxHashMap<String, (u32, u32)>,
    /// token -> precomputed per-occurrence log-odds contribution. Each
    /// value is built with exactly the float operations (and operation
    /// order) the scoring loop used to perform inline, so summing table
    /// entries is bitwise identical to the original per-token math.
    contrib: FxHashMap<String, f64>,
    /// Contribution of any out-of-vocabulary token (pos = neg = 0).
    oov_contrib: f64,
    /// Total token occurrences per class.
    total_tokens: [u64; 2],
    /// Document counts per class.
    doc_counts: [u64; 2],
    /// Laplace smoothing constant.
    alpha: f64,
}

impl NaiveBayes {
    /// Train on `(text, is_review)` pairs.
    ///
    /// # Errors
    /// Returns [`TrainError::MissingClass`] unless both classes are present.
    pub fn train<'a, I>(docs: I) -> Result<Self, TrainError>
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut token_counts: FxHashMap<String, (u32, u32)> = FxHashMap::default();
        let mut total_tokens = [0u64; 2];
        let mut doc_counts = [0u64; 2];
        let mut buf = String::new();
        for (text, label) in docs {
            let class = usize::from(label);
            doc_counts[class] += 1;
            for_each_token(text, &mut buf, |token| {
                // Look up by &str first: a token String is only allocated
                // the first time a word enters the vocabulary.
                if !token_counts.contains_key(token) {
                    token_counts.insert(token.to_string(), (0, 0));
                }
                let entry = token_counts
                    .get_mut(token)
                    .expect("token present: just inserted if missing");
                if label {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
                total_tokens[class] += 1;
            });
        }
        if doc_counts[1] == 0 {
            return Err(TrainError::MissingClass("review"));
        }
        if doc_counts[0] == 0 {
            return Err(TrainError::MissingClass("non-review"));
        }
        let alpha = 1.0;
        let (contrib, oov_contrib) = contributions(&token_counts, total_tokens, alpha);
        Ok(NaiveBayes {
            token_counts,
            contrib,
            oov_contrib,
            total_tokens,
            doc_counts,
            alpha,
        })
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.token_counts.len()
    }

    /// Log-odds `log P(review | text) - log P(non-review | text)`.
    /// Positive values favour the review class.
    #[must_use]
    pub fn log_odds(&self, text: &str) -> f64 {
        let mut buf = String::new();
        self.log_odds_with(text, &mut buf)
    }

    /// [`Self::log_odds`] scoring through a caller-owned token scratch
    /// buffer: tokens are borrowed `&str` slices looked up directly in the
    /// vocabulary, so steady-state scoring allocates nothing.
    #[must_use]
    pub fn log_odds_with(&self, text: &str, token_buf: &mut String) -> f64 {
        let prior_pos = self.doc_counts[1] as f64;
        let prior_neg = self.doc_counts[0] as f64;
        let mut score = prior_pos.ln() - prior_neg.ln();
        for_each_token(text, token_buf, |token| {
            // One table lookup per token instead of four `ln()` calls.
            // Unknown tokens contribute the same smoothed mass to both
            // classes; include them anyway for a consistent definition.
            score += self
                .contrib
                .get(token)
                .copied()
                .unwrap_or(self.oov_contrib);
        });
        score
    }

    /// Classify: is this text a review page?
    #[must_use]
    pub fn is_review(&self, text: &str) -> bool {
        self.log_odds(text) > 0.0
    }

    /// [`Self::is_review`] through a caller-owned token scratch buffer.
    #[must_use]
    pub fn is_review_with(&self, text: &str, token_buf: &mut String) -> bool {
        self.log_odds_with(text, token_buf) > 0.0
    }

    /// The `n` most review-indicative and most boilerplate-indicative
    /// tokens, by smoothed log-likelihood ratio. Useful for inspecting
    /// what the classifier actually learned.
    #[must_use]
    pub fn top_features(&self, n: usize) -> (Vec<ScoredToken>, Vec<ScoredToken>) {
        let v = self.token_counts.len() as f64;
        let denom_pos = self.total_tokens[1] as f64 + self.alpha * v;
        let denom_neg = self.total_tokens[0] as f64 + self.alpha * v;
        let mut scored: Vec<(String, f64)> = self
            .token_counts
            .iter()
            .map(|(token, &(pos, neg))| {
                let lp = (f64::from(pos) + self.alpha).ln() - denom_pos.ln();
                let ln = (f64::from(neg) + self.alpha).ln() - denom_neg.ln();
                (token.clone(), lp - ln)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let top_review = scored.iter().take(n).cloned().collect();
        let top_boiler = scored.iter().rev().take(n).cloned().collect();
        (top_review, top_boiler)
    }

    /// Accuracy on a labelled evaluation set.
    #[must_use]
    pub fn accuracy<'a, I>(&self, docs: I) -> f64
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (text, label) in docs {
            total += 1;
            if self.is_review(text) == label {
                correct += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

/// Per-token log-odds contribution table plus the out-of-vocabulary
/// constant. The arithmetic here replays, operation for operation, what
/// the scoring loop used to compute inline per token occurrence —
/// `((pos + α).ln() − denom₊.ln()) − ((neg + α).ln() − denom₋.ln())` —
/// so replacing the inline math with a table lookup leaves every score
/// bitwise unchanged.
fn contributions(
    token_counts: &FxHashMap<String, (u32, u32)>,
    total_tokens: [u64; 2],
    alpha: f64,
) -> (FxHashMap<String, f64>, f64) {
    let v = token_counts.len() as f64;
    let denom_pos = total_tokens[1] as f64 + alpha * v;
    let denom_neg = total_tokens[0] as f64 + alpha * v;
    let one = |pos: u32, neg: u32| {
        let lp = (f64::from(pos) + alpha).ln() - denom_pos.ln();
        let ln = (f64::from(neg) + alpha).ln() - denom_neg.ln();
        lp - ln
    };
    let contrib = token_counts
        .iter()
        .map(|(token, &(pos, neg))| (token.clone(), one(pos, neg)))
        .collect();
    (contrib, one(0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_classifier() -> NaiveBayes {
        NaiveBayes::train(vec![
            ("the food was amazing and delicious", true),
            ("terrible service but great dessert, five stars", true),
            ("wonderful atmosphere, would come back", true),
            ("hours of operation and directions", false),
            ("browse listings in your neighborhood", false),
            ("claim this listing to update details", false),
        ])
        .expect("both classes present")
    }

    #[test]
    fn classifies_obvious_cases() {
        let clf = toy_classifier();
        assert!(clf.is_review("the dessert was amazing, five stars"));
        assert!(!clf.is_review("browse listings and directions"));
    }

    #[test]
    fn log_odds_sign_matches_classification() {
        let clf = toy_classifier();
        for text in ["delicious food", "claim this listing"] {
            assert_eq!(clf.log_odds(text) > 0.0, clf.is_review(text));
        }
    }

    #[test]
    fn unknown_tokens_fall_back_to_prior() {
        let clf = toy_classifier();
        // Equal priors (3 vs 3 docs): a fully-unknown text has log-odds
        // close to the smoothing differential only.
        let odds = clf.log_odds("zzzz qqqq xxxx");
        assert!(odds.abs() < 1.0, "odds {odds}");
    }

    #[test]
    fn training_requires_both_classes() {
        assert_eq!(
            NaiveBayes::train(vec![("a b", true)]).unwrap_err(),
            TrainError::MissingClass("non-review")
        );
        assert_eq!(
            NaiveBayes::train(vec![("a b", false)]).unwrap_err(),
            TrainError::MissingClass("review")
        );
    }

    #[test]
    fn accuracy_on_training_set_is_high() {
        let clf = toy_classifier();
        let train = vec![
            ("the food was amazing and delicious", true),
            ("hours of operation and directions", false),
        ];
        assert!(clf.accuracy(train) > 0.99);
        assert_eq!(clf.accuracy(Vec::<(&str, bool)>::new()), 0.0);
    }

    #[test]
    fn top_features_split_the_registers() {
        let clf = toy_classifier();
        let (review, boiler) = clf.top_features(5);
        assert_eq!(review.len(), 5);
        assert_eq!(boiler.len(), 5);
        // Review side scores positive, boilerplate side negative.
        assert!(review.iter().all(|&(_, s)| s > 0.0));
        assert!(boiler.iter().all(|&(_, s)| s < 0.0));
        let review_tokens: Vec<&str> = review.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            review_tokens.iter().any(|t| ["amazing", "delicious", "stars", "wonderful"].contains(t)),
            "review features {review_tokens:?}"
        );
    }

    #[test]
    fn contribution_table_is_bitwise_identical_to_inline_scoring() {
        let clf = toy_classifier();
        let texts = [
            "the food was amazing",
            "claim this listing to update details and directions",
            "zzzz unknown tokens only qqqq",
            "mixed: amazing zzzz listing delicious",
            "",
        ];
        for text in texts {
            // The pre-table scoring loop, replayed inline.
            let v = clf.token_counts.len() as f64;
            let denom_pos = clf.total_tokens[1] as f64 + clf.alpha * v;
            let denom_neg = clf.total_tokens[0] as f64 + clf.alpha * v;
            let mut expected = (clf.doc_counts[1] as f64).ln() - (clf.doc_counts[0] as f64).ln();
            let mut buf = String::new();
            for_each_token(text, &mut buf, |token| {
                let (pos, neg) = clf.token_counts.get(token).copied().unwrap_or((0, 0));
                let lp = (f64::from(pos) + clf.alpha).ln() - denom_pos.ln();
                let ln = (f64::from(neg) + clf.alpha).ln() - denom_neg.ln();
                expected += lp - ln;
            });
            let got = clf.log_odds(text);
            assert_eq!(got.to_bits(), expected.to_bits(), "score drifted on {text:?}");
        }
    }

    #[test]
    fn vocab_grows_with_training_data() {
        let clf = toy_classifier();
        assert!(clf.vocab_size() > 15);
    }
}
