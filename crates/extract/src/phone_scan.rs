//! The US phone-number extractor: "a standard regular expression based US
//! phone number extractor" in the paper, implemented here as a hand-rolled
//! scanner (equivalent power, no regex dependency, and considerably faster
//! on the corpus hot path).
//!
//! Recognised surface forms (see [`crate::html::strip_tags`] — scanning runs
//! on visible text):
//!
//! * `(415) 555-0134`
//! * `415-555-0134` and `415.555.0134`
//! * `4155550134` (a standalone 10-digit run)
//! * `+1 415 555 0134` and `1-415-555-0134`
//!
//! Every candidate is validated against NANP rules (area/exchange in
//! `[2-9]xx`, no N11 codes), which is what keeps precision high on noisy
//! pages (§3.5 of the paper).

use webstruct_corpus::phone::PhoneNumber;
use webstruct_util::bytescan::ByteTable;

/// Bytes a phone candidate can start with: `(`, `+`, or any digit
/// (`match_candidate` dispatches on exactly these).
static PHONE_START: ByteTable = ByteTable::new(b"(+").with_range(b'0', b'9');

/// One phone match in a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhoneMatch {
    /// The canonical 10-digit number.
    pub phone: PhoneNumber,
    /// Byte offset of the first matched character.
    pub start: usize,
    /// Byte offset one past the last matched character.
    pub end: usize,
}

/// Scan `text` for US phone numbers.
#[must_use]
pub fn scan_phones(text: &str) -> Vec<PhoneMatch> {
    let mut out = Vec::new();
    for_each_phone(text, |m| out.push(m));
    out
}

/// Visit every US phone number in `text` in document order. The
/// allocation-free core of [`scan_phones`]: the hot extraction path
/// resolves matches against the catalog without materialising a `Vec`.
pub fn for_each_phone(text: &str, mut f: impl FnMut(PhoneMatch)) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(p) = PHONE_START.find_in(bytes, i) {
        i = p;
        // A candidate never starts immediately after a digit: that would
        // mean we are inside a longer digit run (tracking numbers etc.).
        if i > 0 && bytes[i - 1].is_ascii_digit() {
            if bytes[i].is_ascii_digit() {
                // Inside a digit run: no position in the rest of the run
                // can start a candidate, so jump past it wholesale.
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            } else {
                i += 1;
            }
            continue;
        }
        if let Some((digits, end)) = match_candidate(bytes, i) {
            if let Ok(phone) = PhoneNumber::from_digits(digits) {
                f(PhoneMatch {
                    phone,
                    start: i,
                    end,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Try to match one phone candidate starting exactly at `start`.
/// Returns the 10 digits and the end offset.
fn match_candidate(bytes: &[u8], start: usize) -> Option<(u64, usize)> {
    match bytes[start] {
        b'(' => match_paren(bytes, start),
        b'+' => match_plus_one(bytes, start),
        b'1' => match_one_dash(bytes, start),
        b if b.is_ascii_digit() => match_bare(bytes, start),
        _ => None,
    }
}

/// `(415) 555-0134` — optional space after the `)`.
fn match_paren(bytes: &[u8], start: usize) -> Option<(u64, usize)> {
    let mut i = start + 1;
    let area = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b')')?;
    if i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    let exchange = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b'-')?;
    let line = take_digits(bytes, &mut i, 4)?;
    boundary(bytes, i)?;
    Some((area * 10_000_000 + exchange * 10_000 + line, i))
}

/// `+1 415 555 0134`.
fn match_plus_one(bytes: &[u8], start: usize) -> Option<(u64, usize)> {
    let mut i = start + 1;
    eat(bytes, &mut i, b'1')?;
    eat(bytes, &mut i, b' ')?;
    let area = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b' ')?;
    let exchange = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b' ')?;
    let line = take_digits(bytes, &mut i, 4)?;
    boundary(bytes, i)?;
    Some((area * 10_000_000 + exchange * 10_000 + line, i))
}

/// `1-415-555-0134`.
fn match_one_dash(bytes: &[u8], start: usize) -> Option<(u64, usize)> {
    let mut i = start + 1;
    eat(bytes, &mut i, b'-')?;
    let area = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b'-')?;
    let exchange = take_digits(bytes, &mut i, 3)?;
    eat(bytes, &mut i, b'-')?;
    let line = take_digits(bytes, &mut i, 4)?;
    boundary(bytes, i)?;
    Some((area * 10_000_000 + exchange * 10_000 + line, i))
}

/// `415-555-0134`, `415.555.0134` (consistent separator) or `4155550134`.
fn match_bare(bytes: &[u8], start: usize) -> Option<(u64, usize)> {
    let mut i = start;
    let area = take_digits(bytes, &mut i, 3)?;
    // Separator case.
    if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'.') {
        let sep = bytes[i];
        i += 1;
        let exchange = take_digits(bytes, &mut i, 3)?;
        eat(bytes, &mut i, sep)?;
        let line = take_digits(bytes, &mut i, 4)?;
        boundary(bytes, i)?;
        return Some((area * 10_000_000 + exchange * 10_000 + line, i));
    }
    // Plain 10-digit run: exactly 7 more digits, then a non-digit boundary.
    let rest = take_digits(bytes, &mut i, 7)?;
    boundary(bytes, i)?;
    Some((area * 10_000_000 + rest, i))
}

fn take_digits(bytes: &[u8], i: &mut usize, n: usize) -> Option<u64> {
    if *i + n > bytes.len() {
        return None;
    }
    let mut value = 0u64;
    for k in 0..n {
        let b = bytes[*i + k];
        if !b.is_ascii_digit() {
            return None;
        }
        value = value * 10 + u64::from(b - b'0');
    }
    *i += n;
    Some(value)
}

fn eat(bytes: &[u8], i: &mut usize, expected: u8) -> Option<()> {
    if *i < bytes.len() && bytes[*i] == expected {
        *i += 1;
        Some(())
    } else {
        None
    }
}

/// The match must not be followed by another digit.
fn boundary(bytes: &[u8], i: usize) -> Option<()> {
    if i < bytes.len() && bytes[i].is_ascii_digit() {
        None
    } else {
        Some(())
    }
}

/// The original every-byte scanner, kept as the differential reference
/// for the skip-table rewrite above.
#[cfg(test)]
pub(crate) mod scalar {
    use super::{match_candidate, PhoneMatch, PhoneNumber};

    pub fn for_each_phone(text: &str, mut f: impl FnMut(PhoneMatch)) {
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if i > 0 && bytes[i - 1].is_ascii_digit() {
                i += 1;
                continue;
            }
            if let Some((digits, end)) = match_candidate(bytes, i) {
                if let Ok(phone) = PhoneNumber::from_digits(digits) {
                    f(PhoneMatch {
                        phone,
                        start: i,
                        end,
                    });
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_corpus::phone::PhoneFormat;
    use webstruct_util::rng::{Seed, Xoshiro256};

    fn digits_of(text: &str) -> Vec<u64> {
        scan_phones(text)
            .into_iter()
            .map(|m| m.phone.digits())
            .collect()
    }

    #[test]
    fn matches_all_rendered_formats() {
        let phone = PhoneNumber::new(415, 555, 134).unwrap();
        for fmt in PhoneFormat::ALL {
            let text = format!("Call us at {} today!", phone.format(fmt));
            assert_eq!(digits_of(&text), vec![phone.digits()], "format {fmt:?}");
        }
    }

    #[test]
    fn match_offsets_cover_the_literal() {
        let text = "Call (415) 555-0134 now";
        let m = scan_phones(text)[0];
        assert_eq!(&text[m.start..m.end], "(415) 555-0134");
    }

    #[test]
    fn rejects_invalid_area_and_exchange() {
        assert!(digits_of("Call 123-555-0134").is_empty()); // area 1xx
        assert!(digits_of("Call 011-555-0134").is_empty()); // area 0xx
        assert!(digits_of("Call 911-555-0134").is_empty()); // N11 area
        assert!(digits_of("Call 415-411-0134").is_empty()); // N11 exchange
        assert!(digits_of("Call 415-155-0134").is_empty()); // exchange 1xx
    }

    #[test]
    fn rejects_digit_runs_that_are_too_long() {
        assert!(digits_of("Order #415555013412").is_empty());
        assert!(digits_of("id 74155550134").is_empty()); // 11-digit run
        assert!(digits_of("4155550134999").is_empty());
    }

    #[test]
    fn accepts_plain_run_with_boundaries() {
        assert_eq!(digits_of("code:4155550134."), vec![4_155_550_134]);
        assert_eq!(digits_of("4155550134"), vec![4_155_550_134]);
    }

    #[test]
    fn rejects_mixed_separators() {
        assert!(digits_of("415-555.0134").is_empty());
        assert!(digits_of("415.555-0134").is_empty());
    }

    #[test]
    fn finds_multiple_phones_in_one_document() {
        let text = "A: (415) 555-0134, B: 212-555-9876, junk 123-456-7890.";
        assert_eq!(digits_of(text), vec![4_155_550_134, 2_125_559_876]);
    }

    #[test]
    fn ignores_partial_paren_forms() {
        assert!(digits_of("(415 555-0134").is_empty());
        assert!(digits_of("(415)555-013").is_empty());
    }

    #[test]
    fn one_dash_form_is_not_confused_with_bare() {
        // `1-415-555-0134` must not also yield a bogus 415... match.
        assert_eq!(digits_of("dial 1-415-555-0134 now"), vec![4_155_550_134]);
    }

    #[test]
    fn random_valid_numbers_always_roundtrip() {
        let mut rng = Xoshiro256::from_seed(Seed(77));
        for _ in 0..500 {
            let p = PhoneNumber::random(&mut rng);
            let fmt = PhoneFormat::random(&mut rng);
            let text = format!("xx {} yy", p.format(fmt));
            assert_eq!(digits_of(&text), vec![p.digits()], "{text}");
        }
    }

    #[test]
    fn empty_and_digitless_text() {
        assert!(digits_of("").is_empty());
        assert!(digits_of("no numbers here at all").is_empty());
    }
}
