//! Synthetic labelled training data for the review-page classifier.
//!
//! The paper trains its Naïve Bayes on editorially labelled pages; we train
//! on samples drawn from the same generative text models the corpus uses to
//! render pages — positives from the review language model, negatives from
//! listing boilerplate (including the contact lines and headers that also
//! appear on review pages, so the classes genuinely overlap).

use crate::nb::{NaiveBayes, TrainError};
use webstruct_corpus::phone::{PhoneFormat, PhoneNumber};
use webstruct_corpus::text;
use webstruct_util::rng::{Seed, Xoshiro256};

const SAMPLE_NAMES: &[&str] = &[
    "Harborview Kitchen",
    "Blue Lantern Diner",
    "Prairie Crown Grill",
    "Cedar Hollow Cafe",
    "Ruby Crossing Bistro",
    "Stone Bridge Trattoria",
];

/// Generate `n_per_class` positive and negative documents.
#[must_use]
pub fn review_training_set(seed: Seed, n_per_class: usize) -> Vec<(String, bool)> {
    let mut rng = Xoshiro256::from_seed(seed.derive("nb-train"));
    let mut docs = Vec::with_capacity(n_per_class * 2);
    for _ in 0..n_per_class {
        // Positive: one to three review paragraphs, plus the same contact
        // framing a real review page carries.
        let name = SAMPLE_NAMES[rng.usize_below(SAMPLE_NAMES.len())];
        let mut pos = format!(
            "Reviews of {name}. Contact: {}\n",
            PhoneNumber::random(&mut rng).format(PhoneFormat::random(&mut rng))
        );
        for _ in 0..=rng.usize_below(3) {
            pos.push_str(&text::review_paragraph(&mut rng, name));
            pos.push('\n');
        }
        docs.push((pos, true));

        // Negative: listing-style page with names, contact lines and
        // boilerplate but no review language.
        let mut neg = String::new();
        let n_sentences = 2 + rng.usize_below(3);
        neg.push_str(&text::boilerplate_block(&mut rng, n_sentences));
        for _ in 0..=rng.usize_below(3) {
            let name = SAMPLE_NAMES[rng.usize_below(SAMPLE_NAMES.len())];
            neg.push_str(&format!(
                "\n{name}. Call {}.",
                PhoneNumber::random(&mut rng).format(PhoneFormat::random(&mut rng))
            ));
        }
        docs.push((neg, false));
    }
    docs
}

/// Train the default review classifier used by the extraction pipeline.
///
/// # Errors
/// Propagates [`TrainError`] (cannot occur for `n_per_class > 0`).
pub fn train_review_classifier(seed: Seed, n_per_class: usize) -> Result<NaiveBayes, TrainError> {
    let docs = review_training_set(seed, n_per_class);
    NaiveBayes::train(docs.iter().map(|(t, l)| (t.as_str(), *l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_is_balanced_and_deterministic() {
        let a = review_training_set(Seed(1), 50);
        let b = review_training_set(Seed(1), 50);
        assert_eq!(a.len(), 100);
        assert_eq!(a.iter().filter(|(_, l)| *l).count(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn classifier_separates_held_out_samples() {
        let clf = train_review_classifier(Seed(2), 200).unwrap();
        let held_out = review_training_set(Seed(3), 200);
        let acc = clf.accuracy(held_out.iter().map(|(t, l)| (t.as_str(), *l)));
        assert!(acc > 0.95, "held-out accuracy {acc}");
    }

    #[test]
    fn classifier_handles_corpus_rendered_text() {
        let clf = train_review_classifier(Seed(4), 100).unwrap();
        let mut rng = Xoshiro256::from_seed(Seed(5));
        let review = text::review_paragraph(&mut rng, "Amber Mill Grill");
        let listing = text::boilerplate_block(&mut rng, 4);
        assert!(clf.is_review(&review));
        assert!(!clf.is_review(&listing));
    }
}
