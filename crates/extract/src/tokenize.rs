//! Word tokenisation for text classification.

use webstruct_util::bytescan::ByteTable;

/// Bytes that can start a token: ASCII letters plus every byte >= 0x80 —
/// any multibyte `char` begins with such a byte, and only multibyte chars
/// can be non-ASCII alphabetic. Skipping to the next member from a char
/// boundary can never land mid-char: the leading byte of a multibyte char
/// is itself a member, so the skip stops there first.
static TOKEN_BYTE: ByteTable = ByteTable::new(b"")
    .with_range(b'A', b'Z')
    .with_range(b'a', b'z')
    .with_range(0x80, 0xFF);

/// Lowercased alphabetic tokens of length >= 2. Digits and punctuation are
/// separators: phone numbers and ids carry no signal for the review
/// classifier and would bloat the vocabulary.
///
/// Owned-output convenience over [`for_each_token`]; sub-2-char tokens
/// never allocate an output `String`.
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut buf = String::new();
    for_each_token(text, &mut buf, |t| out.push(t.to_string()));
    out
}

/// Visit each token of `text` as a borrowed `&str`, assembled in `buf` (a
/// caller-owned scratch buffer, reused across tokens and across calls).
/// The allocation-free core of [`tokenize`]: Naïve-Bayes scoring looks
/// each slice up in its vocabulary without owning it.
///
/// Token length is tracked incrementally while lowercasing — the
/// original implementation re-counted `chars()` twice per token, an
/// O(len) pass repeated for every token on the hot path.
///
/// ASCII bytes take a branch-light fast path (`b | 0x20` lowercasing,
/// separator runs skipped with [`TOKEN_BYTE`]); bytes >= 0x80 fall back
/// to full `char` decoding so multibyte pages tokenize exactly as before.
/// `i` only ever advances from one char boundary to an ASCII byte or a
/// leading byte, so the `&text[i..]` slices below are always valid.
pub fn for_each_token(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    buf.clear();
    let bytes = text.as_bytes();
    // Count of lowercased chars in `buf` (a char may lowercase to several).
    let mut len = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii() {
            if b.is_ascii_alphabetic() {
                buf.push((b | 0x20) as char);
                len += 1;
                i += 1;
                continue;
            }
            if len >= 2 {
                f(buf.as_str());
            }
            if len > 0 {
                buf.clear();
                len = 0;
            }
            match TOKEN_BYTE.find_in(bytes, i + 1) {
                Some(p) => i = p,
                None => return,
            }
        } else {
            let c = text[i..]
                .chars()
                .next()
                .expect("i is a char boundary below text.len()");
            if c.is_alphabetic() {
                for lc in c.to_lowercase() {
                    buf.push(lc);
                    len += 1;
                }
            } else if len > 0 {
                if len >= 2 {
                    f(buf.as_str());
                }
                buf.clear();
                len = 0;
            }
            i += c.len_utf8();
        }
    }
    if len >= 2 {
        f(buf.as_str());
    }
}

/// The original per-`char` tokenizer, kept as the differential reference
/// for the byte-loop rewrite above.
#[cfg(test)]
pub(crate) mod scalar {
    pub fn for_each_token(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
        buf.clear();
        let mut len = 0usize;
        for c in text.chars() {
            if c.is_alphabetic() {
                for lc in c.to_lowercase() {
                    buf.push(lc);
                    len += 1;
                }
            } else if len > 0 {
                if len >= 2 {
                    f(buf.as_str());
                }
                buf.clear();
                len = 0;
            }
        }
        if len >= 2 {
            f(buf.as_str());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("The FOOD was great!"),
            vec!["the", "food", "was", "great"]
        );
    }

    #[test]
    fn digits_and_punctuation_separate() {
        assert_eq!(
            tokenize("call 415-555-0134 today"),
            vec!["call", "today"]
        );
        assert_eq!(tokenize("rated 4/5 stars"), vec!["rated", "stars"]);
    }

    #[test]
    fn single_letters_dropped() {
        assert_eq!(tokenize("a b cc d"), vec!["cc"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("1234 !!!").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("Crème brûlée"), vec!["crème", "brûlée"]);
    }
}
