//! Word tokenisation for text classification.

/// Lowercased alphabetic tokens of length >= 2. Digits and punctuation are
/// separators: phone numbers and ids carry no signal for the review
/// classifier and would bloat the vocabulary.
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphabetic() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            if current.chars().count() >= 2 {
                out.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if current.chars().count() >= 2 {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("The FOOD was great!"),
            vec!["the", "food", "was", "great"]
        );
    }

    #[test]
    fn digits_and_punctuation_separate() {
        assert_eq!(
            tokenize("call 415-555-0134 today"),
            vec!["call", "today"]
        );
        assert_eq!(tokenize("rated 4/5 stars"), vec!["rated", "stars"]);
    }

    #[test]
    fn single_letters_dropped() {
        assert_eq!(tokenize("a b cc d"), vec!["cc"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("1234 !!!").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("Crème brûlée"), vec!["crème", "brûlée"]);
    }
}
