//! Differential tests: every `bytescan`-based scanner against its retained
//! scalar reference implementation, over real rendered corpora (three
//! domains at quick scale — the same fixtures the golden tests render) and
//! over adversarial literals the corpus does not produce.
//!
//! The perf rewrite must be observably invisible; these tests pin that
//! down scanner by scanner rather than only end to end.

use crate::{html, isbn_scan, phone_scan, tokenize};
use webstruct_corpus::domain::Domain;
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::page::{PageConfig, PageStream};
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_util::rng::Seed;

/// Visit `(html, visible_text)` for every rendered page of three domains
/// at quick scale.
fn for_each_corpus_page(mut f: impl FnMut(&str, &str)) {
    for (domain, entities, seed) in [
        (Domain::Restaurants, 300, 61),
        (Domain::Books, 300, 62),
        (Domain::Banks, 300, 63),
    ] {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, entities), Seed(seed));
        let web = Web::generate(&catalog, &WebConfig::preset(domain).scaled(0.01), Seed(seed));
        let pages = PageStream::new(&web, &catalog, PageConfig::default(), Seed(seed + 1));
        let mut text = String::new();
        for page in pages {
            html::strip_tags_into(&page.text, &mut text);
            f(&page.text, &text);
        }
    }
}

/// Inputs no rendered page contains: malformed markup, digit runs at
/// word boundaries, multibyte neighbourhoods, empty strings.
const ADVERSARIAL: &[&str] = &[
    "",
    "<",
    ">",
    "<a",
    "<a href=x",
    "<<a href='y'>><a  HREF=\"z\">",
    "a < b > c <a href=>",
    "<A HREF='http://x.test/'>x</a><ahref='no'>",
    "tags <i>nested <a href=q></i>",
    "café <a href='é.test'>é</a> — ISBN 978-0-306-40615-7 —",
    "isbn9780306406157 ISBN: 9780306406157.",
    "x978-0-306-40615-7 (415) 555-0134 5(415) 555-0134",
    "1-415-555-0134+1 415 555 0134 415.555.0134415-555-0134",
    "Crème brûlée ☃ 9 lives of é1é2é3 ABCdef-GHI",
    "ISBN \u{e9}\u{e9}\u{e9} 978-0-306-40615-7",
];

#[test]
fn anchor_scanner_matches_scalar_on_corpus_and_adversarial() {
    let mut checked = 0usize;
    let mut check = |html_src: &str| {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        html::for_each_anchor_href(html_src, |href, at| fast.push((href.to_string(), at)));
        html::scalar::for_each_anchor_href(html_src, |href, at| slow.push((href.to_string(), at)));
        assert_eq!(fast, slow, "anchors diverged on {html_src:?}");
        checked += 1;
    };
    for_each_corpus_page(|html_src, _| check(html_src));
    ADVERSARIAL.iter().for_each(|s| check(s));
    assert!(checked > 1000, "corpus fixture rendered only {checked} pages");
}

#[test]
fn find_attr_matches_scalar() {
    let tags = [
        "a href='x'",
        "a  HREF=\"y\" href='z'",
        "a xhref='n' href = v",
        "a href",
        "a href=",
        "div href='no-anchor'",
        "a hrefhref='overlap' href='real'",
        "a é href='after-multibyte'",
    ];
    for tag in tags {
        for attr in ["href", "HREF", "src"] {
            assert_eq!(
                html::find_attr(tag, attr),
                html::scalar::find_attr(tag, attr),
                "find_attr diverged on {tag:?} / {attr:?}"
            );
        }
    }
}

#[test]
fn strip_tags_matches_scalar_on_corpus_and_adversarial() {
    let mut fast = String::new();
    let mut slow = String::new();
    let mut check = |html_src: &str| {
        html::strip_tags_into(html_src, &mut fast);
        html::scalar::strip_tags_into(html_src, &mut slow);
        assert_eq!(fast, slow, "strip_tags diverged on {html_src:?}");
    };
    for_each_corpus_page(|html_src, _| check(html_src));
    ADVERSARIAL.iter().for_each(|s| check(s));
}

#[test]
fn phone_scanner_matches_scalar_on_corpus_and_adversarial() {
    let check = |text: &str| {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        phone_scan::for_each_phone(text, |m| fast.push(m));
        phone_scan::scalar::for_each_phone(text, |m| slow.push(m));
        assert_eq!(fast, slow, "phones diverged on {text:?}");
    };
    for_each_corpus_page(|_, text| check(text));
    ADVERSARIAL.iter().for_each(|s| check(s));
}

#[test]
fn isbn_scanner_matches_scalar_on_corpus_and_adversarial() {
    let mut lower = String::new();
    let mut check = |text: &str| {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        isbn_scan::for_each_isbn(text, |m| fast.push(m));
        isbn_scan::scalar::for_each_isbn(text, &mut lower, |m| slow.push(m));
        assert_eq!(fast, slow, "isbns diverged on {text:?}");
    };
    for_each_corpus_page(|_, text| check(text));
    ADVERSARIAL.iter().for_each(|s| check(s));
}

#[test]
fn tokenizer_matches_scalar_on_corpus_and_adversarial() {
    let mut fast_buf = String::new();
    let mut slow_buf = String::new();
    let mut check = |text: &str| {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        tokenize::for_each_token(text, &mut fast_buf, |t| fast.push(t.to_string()));
        tokenize::scalar::for_each_token(text, &mut slow_buf, |t| slow.push(t.to_string()));
        assert_eq!(fast, slow, "tokens diverged on {text:?}");
    };
    for_each_corpus_page(|_, text| check(text));
    ADVERSARIAL.iter().for_each(|s| check(s));
    // Non-ASCII alphabetics whose lowercase expands, plus separators that
    // are multibyte themselves.
    check("İstanbul ΣΣΣ ǅungla — İİ");
}
