//! The ISBN extractor: finds 10/13-digit ISBN-shaped tokens and accepts
//! them only when the string `ISBN` occurs in a small window near the
//! match and the check digit validates — exactly the methodology of §3.2
//! of the paper.

use webstruct_corpus::isbn::Isbn;
use webstruct_util::bytescan;

/// Marker window, in bytes, searched on each side of a candidate.
pub const MARKER_WINDOW: usize = 24;

/// One ISBN match in a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsbnMatch {
    /// The parsed ISBN.
    pub isbn: Isbn,
    /// Byte offset of the first character of the token.
    pub start: usize,
    /// Byte offset one past the token.
    pub end: usize,
}

/// Scan `text` for ISBNs with a nearby `ISBN` marker (case-insensitive).
#[must_use]
pub fn scan_isbns(text: &str) -> Vec<IsbnMatch> {
    let mut out = Vec::new();
    for_each_isbn(text, |m| out.push(m));
    out
}

/// Visit every marked ISBN in `text` in document order. Allocation-free:
/// candidates are found by jumping straight to digit-run starts and the
/// `ISBN` marker is matched case-insensitively in place, so no lowercased
/// copy of the page is ever built.
pub fn for_each_isbn(text: &str, mut f: impl FnMut(IsbnMatch)) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(p) = bytescan::find_ascii_digit(bytes, i) {
        i = p;
        if i > 0 && is_token_byte(bytes[i - 1]) {
            // Mid-token digit: every later digit in this token is also
            // preceded by a token byte, so skip the whole token at once.
            while i < bytes.len() && is_token_byte(bytes[i]) {
                i += 1;
            }
            continue;
        }
        // Collect the maximal token of digits/hyphens/X.
        let start = i;
        let mut j = i;
        while j < bytes.len() && is_token_byte(bytes[j]) {
            j += 1;
        }
        // Trim trailing hyphens (sentence punctuation like "978-...-7-").
        let mut end = j;
        while end > start && bytes[end - 1] == b'-' {
            end -= 1;
        }
        let token = &text[start..end];
        if let Ok(isbn) = Isbn::parse(token) {
            if has_marker_nearby(text, start, end) {
                f(IsbnMatch { isbn, start, end });
            }
        }
        i = j.max(i + 1);
    }
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_digit() || b == b'-' || b == b'X' || b == b'x'
}

fn has_marker_nearby(text: &str, start: usize, end: usize) -> bool {
    let lo = start.saturating_sub(MARKER_WINDOW);
    let hi = (end + MARKER_WINDOW).min(text.len());
    // The window bounds are byte offsets that may split UTF-8 sequences in
    // pathological inputs; widen to char boundaries exactly as the old
    // lowercased-copy implementation did, then match `isbn` ignoring ASCII
    // case — identical to `lowered_window.contains("isbn")`.
    let lo = floor_char_boundary(text, lo);
    let hi = ceil_char_boundary(text, hi);
    bytescan::find_ascii_ci(&text.as_bytes()[lo..hi], b"isbn").is_some()
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn ceil_char_boundary(s: &str, mut i: usize) -> usize {
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

/// The original scanner — every-byte walk over a full lowercased copy —
/// kept as the differential reference for the in-place rewrite above.
#[cfg(test)]
pub(crate) mod scalar {
    use super::{
        ceil_char_boundary, floor_char_boundary, is_token_byte, Isbn, IsbnMatch, MARKER_WINDOW,
    };

    pub fn for_each_isbn(text: &str, lower_buf: &mut String, mut f: impl FnMut(IsbnMatch)) {
        let bytes = text.as_bytes();
        lower_buf.clear();
        lower_buf.reserve(text.len());
        lower_buf.extend(text.chars().map(|c| c.to_ascii_lowercase()));
        let mut i = 0;
        while i < bytes.len() {
            if !bytes[i].is_ascii_digit() || (i > 0 && is_token_byte(bytes[i - 1])) {
                i += 1;
                continue;
            }
            let start = i;
            let mut j = i;
            while j < bytes.len() && is_token_byte(bytes[j]) {
                j += 1;
            }
            let mut end = j;
            while end > start && bytes[end - 1] == b'-' {
                end -= 1;
            }
            let token = &text[start..end];
            if let Ok(isbn) = Isbn::parse(token) {
                if has_marker_nearby(lower_buf, start, end) {
                    f(IsbnMatch { isbn, start, end });
                }
            }
            i = j.max(i + 1);
        }
    }

    fn has_marker_nearby(lower: &str, start: usize, end: usize) -> bool {
        let lo = start.saturating_sub(MARKER_WINDOW);
        let hi = (end + MARKER_WINDOW).min(lower.len());
        let lo = floor_char_boundary(lower, lo);
        let hi = ceil_char_boundary(lower, hi);
        lower[lo..hi].contains("isbn")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores(text: &str) -> Vec<u32> {
        scan_isbns(text).into_iter().map(|m| m.isbn.core()).collect()
    }

    #[test]
    fn finds_marked_isbn13() {
        let isbn = Isbn::new(30_640_615).expect("literal fits the 9-digit ISBN core range");
        let text = format!("Available now. ISBN: {}", isbn.to_isbn13_hyphenated());
        assert_eq!(cores(&text), vec![isbn.core()]);
    }

    #[test]
    fn finds_marked_isbn10_including_x_check() {
        let core = (0..500u32)
            .find(|&c| webstruct_corpus::isbn::isbn10_check_char(c) == 'X')
            .expect("check digit 10 ('X') occurs once per 11 consecutive cores");
        let isbn = Isbn::new(u64::from(core)).expect("core < 500 fits the 9-digit ISBN core range");
        let text = format!("ISBN {}", isbn.to_isbn10());
        assert_eq!(cores(&text), vec![isbn.core()]);
    }

    #[test]
    fn marker_may_follow_the_number() {
        let isbn = Isbn::new(123_456_789).expect("literal fits the 9-digit ISBN core range");
        let text = format!("{} (ISBN)", isbn.to_isbn13());
        assert_eq!(cores(&text), vec![isbn.core()]);
    }

    #[test]
    fn rejects_unmarked_isbn_shaped_numbers() {
        let isbn = Isbn::new(123_456_789).expect("literal fits the 9-digit ISBN core range");
        let text = format!("Catalog number {} in stock", isbn.to_isbn13());
        assert!(cores(&text).is_empty());
    }

    #[test]
    fn rejects_marker_outside_window() {
        let isbn = Isbn::new(123_456_789).expect("literal fits the 9-digit ISBN core range");
        let padding = "x".repeat(MARKER_WINDOW + 10);
        let text = format!("ISBN {padding} {}", isbn.to_isbn13());
        assert!(cores(&text).is_empty());
    }

    #[test]
    fn rejects_bad_check_digit_even_with_marker() {
        let isbn = Isbn::new(123_456_789).expect("literal fits the 9-digit ISBN core range");
        let mut s = isbn.to_isbn13();
        let last = s.pop().expect("a rendered ISBN-13 is never empty");
        s.push(if last == '0' { '1' } else { '0' });
        let text = format!("ISBN {s}");
        assert!(cores(&text).is_empty());
    }

    #[test]
    fn match_offsets_cover_token() {
        let isbn = Isbn::new(55_555_555).expect("literal fits the 9-digit ISBN core range");
        let rendered = isbn.to_isbn13_hyphenated();
        let text = format!("ISBN {rendered}.");
        let m = scan_isbns(&text)[0];
        assert_eq!(&text[m.start..m.end], rendered);
    }

    #[test]
    fn multiple_isbns_on_one_page() {
        let a = Isbn::new(111_111_111).expect("literal fits the 9-digit ISBN core range");
        let b = Isbn::new(222_222_222).expect("literal fits the 9-digit ISBN core range");
        let text = format!(
            "First ISBN {} and second ISBN {}",
            a.to_isbn13(),
            b.to_isbn10()
        );
        assert_eq!(cores(&text), vec![a.core(), b.core()]);
    }

    #[test]
    fn long_digit_runs_are_not_isbns() {
        let text = "ISBN 12345678901234567890";
        assert!(cores(text).is_empty());
    }

    #[test]
    fn handles_unicode_neighbourhoods() {
        let isbn = Isbn::new(777_777_777).expect("literal fits the 9-digit ISBN core range");
        let text = format!("Crème brûlée — ISBN {} — è", isbn.to_isbn13_hyphenated());
        assert_eq!(cores(&text), vec![isbn.core()]);
    }
}
