//! # webstruct-extract
//!
//! The information-extraction substrate of the study: identifier scanners,
//! an HTML-lite parser, a Naïve Bayes review classifier, and the pipeline
//! that turns rendered pages into per-attribute (site, entity) occurrence
//! tables (§3.1–§3.2 of the paper).
//!
//! * [`html`] — anchor/`href` extraction, tag stripping, URL host parsing;
//! * [`phone_scan`] — the US phone extractor (all six surface forms, NANP
//!   validation);
//! * [`isbn_scan`] — ISBN-10/13 matching with the `ISBN` marker-window rule;
//! * [`tokenize`], [`nb`], [`training`] — the review-page classifier;
//! * [`pipeline`] — page stream in, [`pipeline::ExtractedWeb`] out;
//! * [`precision`] — the §3.5 false-match study;
//! * [`wrapper`] — unsupervised wrapper induction (template learning), the
//!   catalog-free extraction path of refs [1, 6, 8].

//!
//! ## Example
//!
//! ```
//! use webstruct_extract::phone_scan::scan_phones;
//!
//! let found = scan_phones("Call (415) 555-0134 or 212-555-9876 today");
//! assert_eq!(found.len(), 2);
//! assert_eq!(found[0].phone.digits(), 4_155_550_134);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

#[cfg(test)]
mod differential;
pub mod html;
pub mod isbn_scan;
pub mod nb;
pub mod phone_scan;
pub mod pipeline;
pub mod precision;
pub mod tokenize;
pub mod training;
pub mod wrapper;

pub use nb::NaiveBayes;
pub use pipeline::{
    ExtractPool, ExtractScratch, ExtractedWeb, Extractor, PageExtraction, CHUNKS_PER_WORKER,
    EXTRACTOR_VERSION, SNAPSHOT_MAGIC,
};
pub use precision::{phone_precision_study, PrecisionReport};
pub use training::train_review_classifier;
pub use wrapper::{learn_wrapper, RawRecord, Wrapper};
