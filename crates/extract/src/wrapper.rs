//! Unsupervised wrapper induction — the site-extraction substrate the
//! paper's related work centres on (Arasu & Garcia-Molina; Crescenzi's
//! RoadRunner; Dalvi et al.'s automatic wrappers, refs [1, 6, 8]).
//!
//! Sites are templated: their pages share boilerplate (navigation,
//! footers, ad slots) around per-entity content. Given several pages from
//! one site, the learner identifies template lines by document frequency
//! and segments the remaining content into records at heading boundaries —
//! no reference database required. This is what lets the §1 "domain-centric
//! extraction" vision find *new* entities rather than only re-locating
//! known ones.

use webstruct_corpus::page::Page;
use webstruct_util::hash::FxHashMap;

/// A wrapper learned from one site's pages.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// Lines classified as template boilerplate (exact match).
    template_lines: webstruct_util::FxHashSet<String>,
    /// Document-frequency threshold used.
    pub df_threshold: f64,
    /// Pages the wrapper was trained on.
    pub pages_seen: usize,
}

/// One record segmented out of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// The record's heading (entity name candidate).
    pub name: String,
    /// Content lines following the heading, template lines removed.
    pub fields: Vec<String>,
}

/// Learn a wrapper from a site's pages.
///
/// A line is template when it occurs on at least `df_threshold` of the
/// pages (exact string match after trimming). Headings (`<h2>…</h2>`) are
/// never template: they carry per-entity names.
///
/// # Panics
/// Panics when `pages` is empty or the threshold is outside `(0, 1]`.
#[must_use]
pub fn learn_wrapper<'a, I>(pages: I, df_threshold: f64) -> Wrapper
where
    I: IntoIterator<Item = &'a Page>,
{
    assert!(
        df_threshold > 0.0 && df_threshold <= 1.0,
        "df_threshold must be in (0, 1]"
    );
    let mut df: FxHashMap<String, u32> = FxHashMap::default();
    let mut n_pages = 0usize;
    for page in pages {
        n_pages += 1;
        let mut seen_this_page = webstruct_util::FxHashSet::default();
        for line in page.text.lines() {
            let line = line.trim();
            if line.is_empty() || is_heading(line) {
                continue;
            }
            if seen_this_page.insert(line) {
                *df.entry(line.to_string()).or_insert(0) += 1;
            }
        }
    }
    assert!(n_pages > 0, "cannot learn a wrapper from zero pages");
    let min_df = (df_threshold * n_pages as f64).ceil() as u32;
    let template_lines = df
        .into_iter()
        .filter(|&(_, count)| count >= min_df.max(2))
        .map(|(line, _)| line)
        .collect();
    Wrapper {
        template_lines,
        df_threshold,
        pages_seen: n_pages,
    }
}

fn is_heading(line: &str) -> bool {
    line.starts_with("<h2>") && line.ends_with("</h2>")
}

fn heading_text(line: &str) -> Option<&str> {
    line.strip_prefix("<h2>")?.strip_suffix("</h2>")
}

impl Wrapper {
    /// Number of template lines learned.
    #[must_use]
    pub fn template_size(&self) -> usize {
        self.template_lines.len()
    }

    /// Whether a (trimmed) line is template boilerplate.
    #[must_use]
    pub fn is_template(&self, line: &str) -> bool {
        self.template_lines.contains(line.trim())
    }

    /// Extract records from one page: segment at headings, drop template
    /// lines, keep the rest as fields. Pages with no headings yield no
    /// records (they are pure boilerplate to this wrapper).
    #[must_use]
    pub fn extract(&self, page: &Page) -> Vec<RawRecord> {
        let mut records: Vec<RawRecord> = Vec::new();
        let mut current: Option<RawRecord> = None;
        for line in page.text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = heading_text(line) {
                if let Some(done) = current.take() {
                    records.push(done);
                }
                current = Some(RawRecord {
                    name: name.to_string(),
                    fields: Vec::new(),
                });
                continue;
            }
            if self.is_template(line) {
                continue;
            }
            if let Some(rec) = current.as_mut() {
                rec.fields.push(line.to_string());
            }
        }
        if let Some(done) = current.take() {
            records.push(done);
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
    use webstruct_corpus::page::{PageConfig, PageKind, PageStream};
    use webstruct_corpus::site::SiteKind;
    use webstruct_corpus::web::{Web, WebConfig};
    use webstruct_util::rng::Seed;

    fn fixture() -> (EntityCatalog, Web, Vec<Page>) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 400), Seed(131));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Restaurants).scaled(0.01),
            Seed(131),
        );
        let pages: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(132)).collect();
        (catalog, web, pages)
    }

    #[test]
    fn wrapper_learns_boilerplate_not_entities() {
        let (catalog, web, pages) = fixture();
        // Train on the biggest aggregator's listing pages.
        let agg = web
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Aggregator)
            .expect("aggregator exists");
        let site_pages: Vec<&Page> = pages
            .iter()
            .filter(|p| p.site == agg.id && p.kind == PageKind::Listing)
            .collect();
        assert!(site_pages.len() >= 5, "need training pages");
        let wrapper = learn_wrapper(site_pages.iter().copied(), 0.4);
        assert!(wrapper.template_size() > 0, "boilerplate must be learned");
        // No entity name ends up in the template.
        for e in &catalog.entities {
            assert!(
                !wrapper.is_template(&format!("<h2>{}</h2>", e.name)),
                "entity heading leaked into template"
            );
        }
    }

    #[test]
    fn site_chrome_is_learned_as_template() {
        let (_, web, pages) = fixture();
        let agg = web
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Aggregator)
            .unwrap();
        let site_pages: Vec<&Page> = pages
            .iter()
            .filter(|p| p.site == agg.id && p.kind == PageKind::Listing)
            .collect();
        let wrapper = learn_wrapper(site_pages.iter().copied(), 0.8);
        let nav = format!("Home | Categories | Contact — {}", agg.host);
        assert!(wrapper.is_template(&nav), "nav chrome must be template");
        // And extracted records never contain it.
        for page in site_pages.iter().take(5) {
            for record in wrapper.extract(page) {
                assert!(record.fields.iter().all(|f| f != &nav));
            }
        }
    }

    #[test]
    fn extraction_recovers_entity_names_without_the_catalog() {
        let (catalog, web, pages) = fixture();
        let agg = web
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Aggregator)
            .unwrap();
        let site_pages: Vec<&Page> = pages
            .iter()
            .filter(|p| p.site == agg.id && p.kind == PageKind::Listing)
            .collect();
        let wrapper = learn_wrapper(site_pages.iter().copied(), 0.4);
        let mut extracted_names = webstruct_util::FxHashSet::default();
        for page in &site_pages {
            for record in wrapper.extract(page) {
                extracted_names.insert(record.name);
            }
        }
        // Ground truth: the entities this site actually mentions.
        let truth: webstruct_util::FxHashSet<String> = web
            .mentions_of(agg.id)
            .iter()
            .map(|m| catalog.entity(m.entity).name.clone())
            .collect();
        let recovered = truth.iter().filter(|n| extracted_names.contains(*n)).count();
        let recall = recovered as f64 / truth.len() as f64;
        assert!(recall > 0.99, "open-extraction recall {recall}");
        // Precision: every extracted name is a true mention (headings are
        // only rendered for real entities).
        let precision = extracted_names
            .iter()
            .filter(|n| truth.contains(*n))
            .count() as f64
            / extracted_names.len() as f64;
        assert!(precision > 0.99, "open-extraction precision {precision}");
    }

    #[test]
    fn records_carry_contact_fields() {
        let (_, web, pages) = fixture();
        let agg = web
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Aggregator)
            .unwrap();
        let site_pages: Vec<&Page> = pages
            .iter()
            .filter(|p| p.site == agg.id && p.kind == PageKind::Listing)
            .collect();
        let wrapper = learn_wrapper(site_pages.iter().copied(), 0.4);
        let with_phone = site_pages
            .iter()
            .flat_map(|p| wrapper.extract(p))
            .filter(|r| r.fields.iter().any(|f| f.starts_with("Call ")))
            .count();
        assert!(with_phone > 0, "phone lines must survive as record fields");
    }

    #[test]
    fn small_sites_learn_degenerate_but_safe_wrappers() {
        let (_, web, pages) = fixture();
        // A niche site with a single page: nothing reaches df >= 2, so the
        // template is empty and extraction keeps all content.
        let single_page_site = web
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Niche)
            .find(|s| pages.iter().filter(|p| p.site == s.id).count() == 1);
        if let Some(site) = single_page_site {
            let site_pages: Vec<&Page> =
                pages.iter().filter(|p| p.site == site.id).collect();
            let wrapper = learn_wrapper(site_pages.iter().copied(), 0.8);
            assert_eq!(wrapper.template_size(), 0);
            assert_eq!(wrapper.pages_seen, 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero pages")]
    fn empty_training_set_rejected() {
        let _ = learn_wrapper(std::iter::empty(), 0.5);
    }

    #[test]
    #[should_panic(expected = "df_threshold")]
    fn bad_threshold_rejected() {
        let (_, _, pages) = fixture();
        let _ = learn_wrapper(pages.iter().take(1), 0.0);
    }
}
