//! The §3.5 methodology-error study: how often do accidental
//! identifier-shaped strings falsely match the reference database?
//!
//! > "A second potential source of error is the false matching of
//! > identifying attributes. ... Based on small random samples, we
//! > observed that the regular expression matching of US phone numbers,
//! > URLs and ISBN numbers had a high accuracy. ... Even if false matches
//! > do creep in, they will only lead to over-estimation of the coverage."
//!
//! This module measures that precisely on the synthetic web: pages are
//! rendered with a configurable volume of valid-format noise numbers, the
//! pipeline runs, and extracted (site, entity) pairs are compared against
//! the generative ground truth.

use crate::pipeline::Extractor;
use webstruct_corpus::domain::Attribute;
use webstruct_corpus::entity::EntityCatalog;
use webstruct_corpus::page::{PageConfig, PageStream};
use webstruct_corpus::web::Web;
use webstruct_util::hash::FxHashSet;
use webstruct_util::ids::{EntityId, SiteId};
use webstruct_util::rng::Seed;

/// Result of the precision study.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionReport {
    /// Ground-truth (site, entity) pairs for the attribute.
    pub truth_pairs: usize,
    /// Extracted pairs.
    pub extracted_pairs: usize,
    /// Extracted pairs that are in the ground truth.
    pub true_positives: usize,
    /// Extracted pairs *not* in the ground truth — accidental collisions.
    pub false_positives: usize,
    /// Valid-format noise numbers that were scanned but matched nothing.
    pub unmatched_noise: u64,
}

impl PrecisionReport {
    /// Pair-level precision.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.extracted_pairs == 0 {
            return 1.0;
        }
        self.true_positives as f64 / self.extracted_pairs as f64
    }

    /// Pair-level recall.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.truth_pairs == 0 {
            return 1.0;
        }
        self.true_positives as f64 / self.truth_pairs as f64
    }
}

/// Run the phone-precision study: render pages with `noise_per_page`
/// expected valid-format noise phones per listing page, extract, and
/// compare to ground truth.
#[must_use]
pub fn phone_precision_study(
    catalog: &EntityCatalog,
    web: &Web,
    noise_per_page: f64,
    seed: Seed,
) -> PrecisionReport {
    let config = PageConfig {
        noise_valid_phone_rate: noise_per_page,
        ..PageConfig::default()
    };
    let extractor = Extractor::new(catalog);
    let pages = PageStream::new(web, catalog, config, seed);
    let extracted = extractor.extract_all(web.n_sites(), pages);

    let truth: FxHashSet<(SiteId, EntityId)> = web
        .occurrence_lists(Attribute::Phone)
        .iter()
        .enumerate()
        .flat_map(|(s, l)| {
            l.iter()
                .map(move |&e| (SiteId::new(s as u32), e))
        })
        .collect();
    let got: FxHashSet<(SiteId, EntityId)> = extracted
        .occurrence_lists(Attribute::Phone)
        .iter()
        .enumerate()
        .flat_map(|(s, l)| {
            l.iter()
                .map(move |&e| (SiteId::new(s as u32), e))
        })
        .collect();
    let true_positives = got.intersection(&truth).count();
    PrecisionReport {
        truth_pairs: truth.len(),
        extracted_pairs: got.len(),
        true_positives,
        false_positives: got.len() - true_positives,
        unmatched_noise: extracted.unmatched_phones,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::CatalogConfig;
    use webstruct_corpus::web::WebConfig;

    fn fixture() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 500), Seed(81));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Restaurants).scaled(0.02),
            Seed(81),
        );
        (catalog, web)
    }

    #[test]
    fn no_noise_means_perfect_extraction() {
        let (catalog, web) = fixture();
        let report = phone_precision_study(&catalog, &web, 0.0, Seed(82));
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
        assert!(report.truth_pairs > 0);
    }

    #[test]
    fn heavy_noise_barely_dents_precision() {
        // The paper's argument: the identifier space is so much larger
        // than the database that accidental collisions are negligible.
        // 500 catalog phones / ~6.3e9 valid numbers → collision odds per
        // noise number ≈ 8e-8.
        let (catalog, web) = fixture();
        let report = phone_precision_study(&catalog, &web, 3.0, Seed(82));
        assert!(
            report.unmatched_noise > 1_000,
            "noise must actually be scanned: {}",
            report.unmatched_noise
        );
        assert!(
            report.precision() > 0.999,
            "precision {} despite heavy noise",
            report.precision()
        );
        assert_eq!(report.recall(), 1.0, "noise must not mask true mentions");
    }

    #[test]
    fn false_matches_only_inflate_coverage() {
        // §3.5: "false matches ... will only lead to over-estimation of
        // the coverage" — extracted pairs are a superset of truth.
        let (catalog, web) = fixture();
        let report = phone_precision_study(&catalog, &web, 3.0, Seed(83));
        assert_eq!(
            report.true_positives, report.truth_pairs,
            "every true pair must still be found"
        );
        assert!(report.extracted_pairs >= report.truth_pairs);
    }

    #[test]
    fn report_edge_cases() {
        let empty = PrecisionReport {
            truth_pairs: 0,
            extracted_pairs: 0,
            true_positives: 0,
            false_positives: 0,
            unmatched_noise: 0,
        };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
