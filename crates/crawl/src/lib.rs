//! # webstruct-crawl
//!
//! Bootstrapping-based *source discovery* — the operational version of
//! §5 of *An Analysis of Structured Data on the Web*. Where
//! `webstruct-graph` analyses the entity–site graph statically, this
//! crate runs the discovery process the paper reasons about:
//!
//! * [`index`] — a metered search-engine substrate (entity → ranked
//!   sites, optional result-page caps);
//! * [`frontier`] — fetch-ordering policies (FIFO, largest-first, random,
//!   smallest-first);
//! * [`crawler`] — the budgeted bootstrap crawler with discovery traces;
//! * [`fetch`] — typed fetch outcomes and the fault-aware fetch
//!   simulator (retries, backoff, per-site circuit breakers over a
//!   simulated clock);
//! * [`experiment`] — policy comparison, the paper's random-seed
//!   robustness claim, and the failure-rate sweep.

//!
//! ## Example
//!
//! ```
//! use webstruct_crawl::{crawl, Fifo, SearchIndex};
//! use webstruct_util::EntityId;
//!
//! let world = vec![
//!     vec![EntityId::new(0), EntityId::new(1)],
//!     vec![EntityId::new(1), EntityId::new(2)],
//! ];
//! let index = SearchIndex::build(3, &world, None);
//! let result = crawl(&index, &world, Fifo::default(), &[EntityId::new(0)], 100);
//! assert_eq!(result.entities_found, 3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod crawler;
pub mod experiment;
pub mod fetch;
pub mod frontier;
pub mod index;

pub use crawler::{crawl, CrawlResult, Crawler};
pub use experiment::{
    failure_sweep, policy_comparison, seed_robustness, FailurePoint, SeedRobustness,
};
pub use fetch::{FetchCounters, FetchError, FetchOutcome, FetchStats};
pub use frontier::{Fifo, FrontierPolicy, LargestFirst, RandomOrder, SmallestFirst};
pub use index::SearchIndex;
