//! The search-engine substrate of §5's discovery loop.
//!
//! > "…use them to reach all sites covering these entities (for instance,
//! > via search engines)…"
//!
//! A [`SearchIndex`] is an inverted index from entity identifier to the
//! sites mentioning it — what a crawler gets by querying a search engine
//! with an identifying attribute (a phone number, an ISBN). Lookups are
//! metered, optionally truncated to a `max_results` page size (real
//! engines do not return a million hits), and the cumulative query count
//! is the discovery *cost* the experiments account for.

use webstruct_util::ids::{EntityId, SiteId};

/// A metered entity→sites inverted index.
#[derive(Debug)]
pub struct SearchIndex {
    /// CSR posting lists: sites mentioning each entity.
    offsets: Vec<u32>,
    postings: Vec<u32>,
    /// Result-page cap per query (`None` = unlimited).
    max_results: Option<usize>,
    /// Number of queries served so far.
    queries_served: std::cell::Cell<u64>,
}

impl SearchIndex {
    /// Build from per-site entity lists (the same occurrence tables every
    /// other analysis consumes). Posting lists are ordered by site size
    /// descending — search engines rank big authorities first — with site
    /// id as the deterministic tiebreak.
    ///
    /// # Panics
    /// Panics when an entity id is out of range.
    #[must_use]
    pub fn build(
        n_entities: usize,
        site_entities: &[Vec<EntityId>],
        max_results: Option<usize>,
    ) -> Self {
        // Site sizes for ranking.
        let sizes: Vec<usize> = site_entities.iter().map(Vec::len).collect();
        // Count postings per entity.
        let mut counts = vec![0u32; n_entities];
        for list in site_entities {
            let mut seen = list.clone();
            seen.sort_unstable();
            seen.dedup();
            for e in seen {
                assert!(e.index() < n_entities, "entity id out of range");
                counts[e.index()] += 1;
            }
        }
        let mut offsets = vec![0u32; n_entities + 1];
        for i in 0..n_entities {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut postings = vec![0u32; offsets[n_entities] as usize];
        let mut cursor = offsets[..n_entities].to_vec();
        // Insert sites in ranked order so each posting list is ranked.
        let mut site_order: Vec<usize> = (0..site_entities.len()).collect();
        site_order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
        for &s in &site_order {
            let mut seen = site_entities[s].clone();
            seen.sort_unstable();
            seen.dedup();
            for e in seen {
                postings[cursor[e.index()] as usize] = s as u32;
                cursor[e.index()] += 1;
            }
        }
        SearchIndex {
            offsets,
            postings,
            max_results,
            queries_served: std::cell::Cell::new(0),
        }
    }

    /// Number of entities indexed.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Query: the ranked sites mentioning `entity`, truncated to the
    /// result-page cap. Increments the query meter.
    #[must_use]
    pub fn query(&self, entity: EntityId) -> &[u32] {
        self.queries_served.set(self.queries_served.get() + 1);
        let i = entity.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let full = &self.postings[lo..hi];
        match self.max_results {
            Some(cap) => &full[..full.len().min(cap)],
            None => full,
        }
    }

    /// Posting-list length without counting as a query.
    #[must_use]
    pub fn result_count(&self, entity: EntityId) -> usize {
        let i = entity.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total queries served so far.
    #[must_use]
    pub fn queries_served(&self) -> u64 {
        self.queries_served.get()
    }

    /// Reset the query meter (between experiment arms).
    pub fn reset_meter(&self) {
        self.queries_served.set(0);
    }

    /// Convenience: sites of `entity` as [`SiteId`]s (metered).
    pub fn query_sites(&self, entity: EntityId) -> impl Iterator<Item = SiteId> + '_ {
        self.query(entity).iter().map(|&s| SiteId::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    fn toy_index(cap: Option<usize>) -> SearchIndex {
        // site 0 (big): {0,1,2}; site 1: {1}; site 2: {1,2}
        SearchIndex::build(
            3,
            &[vec![e(0), e(1), e(2)], vec![e(1)], vec![e(1), e(2)]],
            cap,
        )
    }

    #[test]
    fn posting_lists_are_ranked_by_site_size() {
        let idx = toy_index(None);
        assert_eq!(idx.query(e(1)), &[0, 2, 1]);
        assert_eq!(idx.query(e(2)), &[0, 2]);
        assert_eq!(idx.query(e(0)), &[0]);
        assert_eq!(idx.n_entities(), 3);
    }

    #[test]
    fn result_cap_truncates() {
        let idx = toy_index(Some(2));
        assert_eq!(idx.query(e(1)), &[0, 2]);
        assert_eq!(idx.result_count(e(1)), 3, "true count is uncapped");
    }

    #[test]
    fn query_meter_counts() {
        let idx = toy_index(None);
        assert_eq!(idx.queries_served(), 0);
        let _ = idx.query(e(0));
        let _ = idx.query(e(1));
        assert_eq!(idx.queries_served(), 2);
        let _ = idx.result_count(e(2)); // free
        assert_eq!(idx.queries_served(), 2);
        idx.reset_meter();
        assert_eq!(idx.queries_served(), 0);
    }

    #[test]
    fn duplicates_in_input_collapse() {
        let idx = SearchIndex::build(2, &[vec![e(0), e(0), e(1)]], None);
        assert_eq!(idx.query(e(0)), &[0]);
    }

    #[test]
    fn unmentioned_entity_has_empty_postings() {
        let idx = SearchIndex::build(3, &[vec![e(0)]], None);
        assert!(idx.query(e(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = SearchIndex::build(1, &[vec![e(3)]], None);
    }
}
