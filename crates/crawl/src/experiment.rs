//! Discovery experiments: frontier-policy comparison and the paper's
//! seed-robustness claim.
//!
//! > "…this suggests that any seed set of structured entities will
//! > contain, with high probability, at least one entity from the largest
//! > component; thus we are all but surely guaranteed to discover and
//! > extract most of the entities from random seed sets."

use crate::crawler::{crawl, CrawlResult, Crawler};
use crate::frontier::{Fifo, LargestFirst, RandomOrder, SmallestFirst};
use crate::index::SearchIndex;
use webstruct_graph::{component_stats, BipartiteGraph};
use webstruct_util::fault::{BreakerConfig, FaultConfig, FaultPlan, RetryPolicy};
use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series};
use webstruct_util::rng::{Seed, Xoshiro256};
use webstruct_util::stats::log_ticks;

/// Compare frontier policies on the same world: discovery curves
/// (entities known vs. sites fetched), log-sampled.
#[must_use]
pub fn policy_comparison(
    n_entities: usize,
    site_entities: &[Vec<EntityId>],
    seeds: &[EntityId],
    fetch_budget: usize,
    seed: Seed,
) -> Figure {
    let index = SearchIndex::build(n_entities, site_entities, None);
    let mut fig = Figure::new(
        "ext-discovery-policies",
        "Source discovery: entities found vs. sites fetched",
    )
    .with_axes("sites fetched", "fraction of entities discovered")
    .with_log_x();
    let runs: Vec<(&'static str, crate::crawler::CrawlResult)> = vec![
        (
            "largest-first",
            crawl(&index, site_entities, LargestFirst::default(), seeds, fetch_budget),
        ),
        (
            "fifo",
            crawl(&index, site_entities, Fifo::default(), seeds, fetch_budget),
        ),
        (
            "random",
            crawl(&index, site_entities, RandomOrder::new(seed), seeds, fetch_budget),
        ),
        (
            "smallest-first",
            crawl(&index, site_entities, SmallestFirst::default(), seeds, fetch_budget),
        ),
    ];
    for (name, result) in runs {
        if result.sites_fetched == 0 {
            fig.push(Series::new(name, Vec::new()));
            continue;
        }
        let points: Vec<(f64, f64)> = log_ticks(result.sites_fetched)
            .into_iter()
            .map(|f| (f as f64, result.entities_at(f) as f64 / n_entities as f64))
            .collect();
        fig.push(Series::new(name, points));
    }
    fig
}

/// Seed-robustness experiment: `trials` independent single-entity seeds;
/// returns the fraction of trials whose unbudgeted crawl recovered at
/// least `recall_target` of the *present* entities.
#[must_use]
pub fn seed_robustness(
    n_entities: usize,
    site_entities: &[Vec<EntityId>],
    trials: usize,
    recall_target: f64,
    seed: Seed,
) -> SeedRobustness {
    let index = SearchIndex::build(n_entities, site_entities, None);
    let graph =
        BipartiteGraph::from_occurrences(n_entities, site_entities).expect("valid ids");
    let present = graph.entities_present();
    let largest_fraction = component_stats(&graph, &[]).largest_fraction();
    let mut rng = Xoshiro256::from_seed(seed.derive("seed-robustness"));
    let mut successes = 0usize;
    let mut total_iter_recall = 0.0f64;
    for _ in 0..trials {
        let s = EntityId::new(rng.u64_below(n_entities as u64) as u32);
        let result = crawl(&index, site_entities, Fifo::default(), &[s], usize::MAX);
        let recall = if present == 0 {
            0.0
        } else {
            result.entities_found as f64 / present as f64
        };
        total_iter_recall += recall;
        if recall >= recall_target {
            successes += 1;
        }
    }
    SeedRobustness {
        trials,
        successes,
        mean_recall: if trials == 0 {
            0.0
        } else {
            total_iter_recall / trials as f64
        },
        largest_component_fraction: largest_fraction,
    }
}

/// One point of a [`failure_sweep`]: a full crawl at one failure rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FailurePoint {
    /// Headline per-attempt failure probability
    /// ([`FaultConfig::flaky`]'s knob).
    pub failure_rate: f64,
    /// The crawl outcome, including fetch-layer counters.
    pub result: CrawlResult,
}

/// Sweep failure rates: re-run the same largest-first budgeted crawl
/// under [`FaultConfig::flaky`] plans of increasing severity. Rate 0
/// reproduces the fault-free crawl bit-for-bit (the plan is inactive).
/// Each rate gets an independently derived plan seed, so curves differ
/// only through fault severity, not through stream reuse.
#[must_use]
pub fn failure_sweep(
    n_entities: usize,
    site_entities: &[Vec<EntityId>],
    seeds: &[EntityId],
    fetch_budget: usize,
    rates: &[f64],
    seed: Seed,
) -> Vec<FailurePoint> {
    let index = SearchIndex::build(n_entities, site_entities, None);
    let plan_seed = seed.derive("fault-plan");
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let plan = FaultPlan::new(FaultConfig::flaky(rate), plan_seed.derive_u64(i as u64));
            let crawler = Crawler::new(&index, site_entities, LargestFirst::default(), seeds);
            let result = crawler.run_with_faults(
                fetch_budget,
                u64::MAX,
                &plan,
                RetryPolicy::default(),
                BreakerConfig::default(),
            );
            FailurePoint {
                failure_rate: rate,
                result,
            }
        })
        .collect()
}

/// Result of [`seed_robustness`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRobustness {
    /// Number of random single-seed trials.
    pub trials: usize,
    /// Trials reaching the recall target.
    pub successes: usize,
    /// Mean recall (of present entities) across trials.
    pub mean_recall: f64,
    /// Fraction of present entities in the largest component — the
    /// theoretical ceiling for a random seed.
    pub largest_component_fraction: f64,
}

impl SeedRobustness {
    /// Success rate over trials.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::rng::Xoshiro256;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    /// A head-heavy synthetic world: one big aggregator + local chains.
    fn world(n: usize, seed: Seed) -> Vec<Vec<EntityId>> {
        let mut rng = Xoshiro256::from_seed(seed);
        let mut sites = Vec::new();
        // Aggregator covering 70% of entities.
        sites.push(
            (0..n as u32)
                .filter(|_| rng.bool_with(0.7))
                .map(e)
                .collect::<Vec<_>>(),
        );
        // Tail sites of 2-5 entities.
        for _ in 0..n {
            let k = 2 + rng.usize_below(4);
            sites.push((0..k).map(|_| e(rng.u64_below(n as u64) as u32)).collect());
        }
        sites
    }

    #[test]
    fn policy_comparison_orders_as_expected() {
        let w = world(300, Seed(9));
        let fig = policy_comparison(300, &w, &[e(0)], 50, Seed(10));
        assert_eq!(fig.series.len(), 4);
        let at_10 = |name: &str| {
            fig.series_named(name)
                .unwrap()
                .interpolate(10.0)
                .unwrap_or(0.0)
        };
        // Largest-first dominates smallest-first early, with random and
        // fifo in between.
        assert!(
            at_10("largest-first") > at_10("smallest-first"),
            "largest {} vs smallest {}",
            at_10("largest-first"),
            at_10("smallest-first")
        );
        assert!(at_10("largest-first") >= at_10("random") - 0.05);
    }

    #[test]
    fn seed_robustness_matches_component_ceiling() {
        let w = world(400, Seed(11));
        let r = seed_robustness(400, &w, 25, 0.9, Seed(12));
        assert_eq!(r.trials, 25);
        // The paper's claim: random seeds almost surely land in the giant
        // component and recover nearly everything.
        assert!(
            r.success_rate() > 0.9,
            "success rate {} (ceiling {})",
            r.success_rate(),
            r.largest_component_fraction
        );
        assert!(r.mean_recall > 0.85, "mean recall {}", r.mean_recall);
        assert!(r.largest_component_fraction > 0.9);
    }

    #[test]
    fn seed_robustness_on_fragmented_world() {
        // Two equal halves: a random seed recovers ~half, so the 0.9
        // target fails about half the time... actually always (each
        // component is 50% < 90%).
        let mut sites = Vec::new();
        for i in 0..50u32 {
            sites.push(vec![e(i), e((i + 1) % 50)]); // component A: 0..50
            sites.push(vec![e(50 + i), e(50 + (i + 1) % 50)]); // component B
        }
        let r = seed_robustness(100, &sites, 10, 0.9, Seed(13));
        assert_eq!(r.successes, 0);
        assert!((r.mean_recall - 0.5).abs() < 0.05, "mean {}", r.mean_recall);
    }

    #[test]
    fn failure_sweep_zero_rate_matches_clean_crawl() {
        let w = world(200, Seed(21));
        let index = SearchIndex::build(200, &w, None);
        let clean = crawl(&index, &w, LargestFirst::default(), &[e(0)], 80);
        let sweep = failure_sweep(200, &w, &[e(0)], 80, &[0.0], Seed(22));
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep[0].result, clean, "rate 0 must be bit-identical");
    }

    #[test]
    fn failure_sweep_degrades_discovery_monotonically_enough() {
        let w = world(300, Seed(23));
        let sweep = failure_sweep(300, &w, &[e(0)], 120, &[0.0, 0.1, 0.3], Seed(24));
        assert_eq!(sweep.len(), 3);
        let found: Vec<usize> = sweep.iter().map(|p| p.result.entities_found).collect();
        // Faults burn budget on retries, so severe rates discover no more
        // than the clean run (usually strictly less).
        assert!(found[1] <= found[0], "10% ({}) vs clean ({})", found[1], found[0]);
        assert!(found[2] <= found[0], "30% ({}) vs clean ({})", found[2], found[0]);
        // The faulty runs actually exercised the fault machinery.
        assert!(sweep[2].result.fetch.retries > 0);
        assert!(sweep[2].result.fetch.failed_rounds > 0);
        assert_eq!(sweep[0].result.fetch.retries, 0);
    }

    #[test]
    fn failure_sweep_is_deterministic() {
        let w = world(150, Seed(25));
        let a = failure_sweep(150, &w, &[e(0), e(5)], 60, &[0.1, 0.3], Seed(26));
        let b = failure_sweep(150, &w, &[e(0), e(5)], 60, &[0.1, 0.3], Seed(26));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_trials_degenerate() {
        let w = world(50, Seed(14));
        let r = seed_robustness(50, &w, 0, 0.9, Seed(15));
        assert_eq!(r.success_rate(), 0.0);
        assert_eq!(r.mean_recall, 0.0);
    }
}
