//! The budgeted bootstrapping crawler.
//!
//! §5's idealised expander assumes unlimited fetches; a real discovery
//! system pays for every search query and every site crawl. This crawler
//! makes those costs explicit: starting from seed entities it alternates
//! *query* steps (look up an un-queried known entity in the
//! [`SearchIndex`]) and *fetch* steps (crawl a
//! frontier site, harvesting its entities), under a configurable frontier
//! policy and fetch budget. The output is a discovery trace — entities
//! known as a function of sites fetched — which is what the frontier
//! policies are compared on.

use crate::fetch::{FetchOutcome, FetchSim, FetchStats};
use crate::frontier::FrontierPolicy;
use crate::index::SearchIndex;
use webstruct_util::fault::{BreakerConfig, FaultPlan, RetryPolicy};
use webstruct_util::ids::EntityId;

/// Crawl outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlResult {
    /// Entities known at the end (including seeds that resolved).
    pub entities_found: usize,
    /// Fetch attempts charged against the budget (on a fault-free web,
    /// exactly the number of sites fetched; under faults, retries charge
    /// it too).
    pub sites_fetched: usize,
    /// Search queries issued.
    pub queries_issued: u64,
    /// Whether the crawl drained every reachable site (vs. hit the budget).
    pub exhausted: bool,
    /// Seed ids outside the entity universe, dropped at construction.
    pub seeds_dropped: usize,
    /// Fetch-layer counters: attempts, retries, failures, truncations,
    /// breaker activity, simulated time.
    pub fetch: FetchStats,
    /// Discovery trace: `(budget_spent, entities_known)` after each fetch
    /// round.
    pub trace: Vec<(usize, usize)>,
}

impl CrawlResult {
    /// Entities known after at most `fetches` fetches (0 → seeds only).
    #[must_use]
    pub fn entities_at(&self, fetches: usize) -> usize {
        match self.trace.binary_search_by_key(&fetches, |&(f, _)| f) {
            Ok(i) => self.trace[i].1,
            Err(0) => 0,
            Err(i) => self.trace[i - 1].1,
        }
    }
}

/// The crawler: owns discovery state, borrows the index and the site
/// contents.
pub struct Crawler<'a, P: FrontierPolicy> {
    index: &'a SearchIndex,
    /// Per-site entity lists (what fetching a site yields).
    site_entities: &'a [Vec<EntityId>],
    policy: P,
    entity_known: Vec<bool>,
    site_seen: Vec<bool>,
    /// Known entities not yet queried against the index.
    query_queue: Vec<EntityId>,
    /// Seed ids outside `[0, n_entities)`, counted rather than silently
    /// ignored.
    seeds_dropped: usize,
}

impl<'a, P: FrontierPolicy> Crawler<'a, P> {
    /// Start a crawl from `seeds`.
    #[must_use]
    pub fn new(
        index: &'a SearchIndex,
        site_entities: &'a [Vec<EntityId>],
        policy: P,
        seeds: &[EntityId],
    ) -> Self {
        let mut crawler = Crawler {
            index,
            site_entities,
            policy,
            entity_known: vec![false; index.n_entities()],
            site_seen: vec![false; site_entities.len()],
            query_queue: Vec::new(),
            seeds_dropped: 0,
        };
        for &s in seeds {
            if s.index() >= crawler.entity_known.len() {
                crawler.seeds_dropped += 1;
            } else if !crawler.entity_known[s.index()] {
                crawler.entity_known[s.index()] = true;
                crawler.query_queue.push(s);
            }
        }
        crawler
    }

    /// Run until `fetch_budget` sites have been fetched or discovery
    /// drains (unlimited search queries).
    #[must_use]
    pub fn run(self, fetch_budget: usize) -> CrawlResult {
        self.run_with_budgets(fetch_budget, u64::MAX)
    }

    /// Run under both a fetch budget and a search-query budget. Once the
    /// query budget is spent, known entities are no longer looked up —
    /// discovery continues only through the already-populated frontier.
    ///
    /// Equivalent to [`Crawler::run_with_faults`] under the fault-free
    /// plan: every round is one successful attempt, so the budget counts
    /// sites exactly as it always did.
    #[must_use]
    pub fn run_with_budgets(self, fetch_budget: usize, query_budget: u64) -> CrawlResult {
        self.run_with_faults(
            fetch_budget,
            query_budget,
            &FaultPlan::none(),
            RetryPolicy::default(),
            BreakerConfig::default(),
        )
    }

    /// Run against a faulty web. Every fetch *attempt* — including
    /// retries — charges the fetch budget; timed-out and backed-off time
    /// accrues on the simulated clock; per-site circuit breakers drop
    /// sites that keep failing, so budget is not burned on the dead.
    /// Truncated responses harvest a prefix of the site's entity list.
    ///
    /// All fault decisions are pure functions of `(plan seed, site,
    /// attempt#)`, so the same inputs produce a byte-identical
    /// [`CrawlResult`] on every run.
    #[must_use]
    pub fn run_with_faults(
        mut self,
        fetch_budget: usize,
        query_budget: u64,
        plan: &FaultPlan,
        retry: RetryPolicy,
        breaker: BreakerConfig,
    ) -> CrawlResult {
        self.index.reset_meter();
        let n_sites = self.site_entities.len();
        let mut span = webstruct_util::span!("crawl", fetch_budget, n_sites);
        let mut sim = FetchSim::new(plan, retry, breaker, n_sites);
        let mut spent = 0usize;
        let mut trace = Vec::new();
        loop {
            // Drain the query queue: every known entity gets one search,
            // while the query budget lasts.
            while self.index.queries_served() < query_budget {
                let Some(entity) = self.query_queue.pop() else {
                    break;
                };
                for site in self.index.query_sites(entity) {
                    if !self.site_seen[site.index()] {
                        self.site_seen[site.index()] = true;
                        // The size hint a real crawler gets from result
                        // snippets/counts; here the true mention count.
                        let size_hint = self.site_entities[site.index()].len();
                        self.policy.offer(site, size_hint);
                    }
                }
            }
            if spent >= fetch_budget {
                break;
            }
            // Fetch the next site per policy.
            let Some(site) = self.policy.next() else {
                break; // frontier drained
            };
            if !sim.allow(site.index()) {
                // Breaker open: the site is dropped for free, budget
                // untouched, and the loop moves to the next frontier
                // entry.
                continue;
            }
            let (outcome, used) = sim.fetch_round(site.index(), fetch_budget - spent);
            spent += used;
            match outcome {
                FetchOutcome::Success { truncated } => {
                    let list = &self.site_entities[site.index()];
                    // A truncated page yields a prefix of the site's
                    // entity list (ceil, so a non-empty page always
                    // yields at least one entity).
                    let keep = truncated.map_or(list.len(), |frac| {
                        ((frac * list.len() as f64).ceil() as usize).min(list.len())
                    });
                    for &e in &list[..keep] {
                        if !self.entity_known[e.index()] {
                            self.entity_known[e.index()] = true;
                            self.query_queue.push(e);
                        }
                    }
                }
                FetchOutcome::Failed(_) => {
                    if sim.retry_later(site.index()) {
                        let size_hint = self.site_entities[site.index()].len();
                        self.policy.offer(site, size_hint);
                    }
                }
            }
            if used > 0 {
                trace.push((spent, self.count_known()));
            }
        }
        let exhausted = self.query_queue.is_empty() && self.policy.is_empty();
        let fetch = sim.into_stats();
        span.set_sim_ticks(fetch.sim_ticks);
        let m = webstruct_util::obs::metrics();
        m.add("crawl.rounds", trace.len() as u64);
        m.add("crawl.queries_issued", self.index.queries_served());
        CrawlResult {
            entities_found: self.count_known(),
            sites_fetched: spent,
            queries_issued: self.index.queries_served(),
            exhausted,
            seeds_dropped: self.seeds_dropped,
            fetch,
            trace,
        }
    }

    fn count_known(&self) -> usize {
        self.entity_known.iter().filter(|&&k| k).count()
    }
}

/// Convenience: crawl with a policy and budget in one call.
#[must_use]
pub fn crawl<P: FrontierPolicy>(
    index: &SearchIndex,
    site_entities: &[Vec<EntityId>],
    policy: P,
    seeds: &[EntityId],
    fetch_budget: usize,
) -> CrawlResult {
    Crawler::new(index, site_entities, policy, seeds).run(fetch_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Fifo, LargestFirst};

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    fn chain_world() -> Vec<Vec<EntityId>> {
        // s0: {0,1}, s1: {1,2}, s2: {2,3}
        vec![vec![e(0), e(1)], vec![e(1), e(2)], vec![e(2), e(3)]]
    }

    #[test]
    fn crawl_discovers_whole_chain() {
        let world = chain_world();
        let index = SearchIndex::build(4, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(0)], 100);
        assert_eq!(result.entities_found, 4);
        assert_eq!(result.sites_fetched, 3);
        assert!(result.exhausted);
        assert!(result.queries_issued >= 4, "every entity gets queried");
        // Trace is monotone and ends at the final count.
        assert!(result.trace.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(result.trace.last().unwrap().1, 4);
    }

    #[test]
    fn fetch_budget_limits_discovery() {
        let world = chain_world();
        let index = SearchIndex::build(4, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(0)], 1);
        assert_eq!(result.sites_fetched, 1);
        assert!(!result.exhausted);
        assert!(result.entities_found < 4);
    }

    #[test]
    fn entities_at_interpolates_trace() {
        let world = chain_world();
        let index = SearchIndex::build(4, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(0)], 100);
        assert_eq!(result.entities_at(0), 0);
        assert_eq!(result.entities_at(3), 4);
        assert_eq!(result.entities_at(99), 4);
    }

    #[test]
    fn largest_first_discovers_faster() {
        // One giant site + many small ones; seed entity appears on both a
        // small site and the giant. LargestFirst should fetch the giant
        // first and know (almost) everything after one fetch.
        let mut world: Vec<Vec<EntityId>> = Vec::new();
        let giant: Vec<EntityId> = (0..50).map(e).collect();
        world.push(vec![e(0), e(1)]); // small site with the seed
        world.push(giant);
        for i in 0..10 {
            world.push(vec![e(i), e(i + 1)]);
        }
        let index = SearchIndex::build(50, &world, None);
        let largest = crawl(&index, &world, LargestFirst::default(), &[e(0)], 1);
        assert_eq!(largest.entities_found, 50, "giant site fetched first");
        let fifo = crawl(&index, &world, Fifo::default(), &[e(0)], 1);
        assert!(fifo.entities_found <= largest.entities_found);
    }

    #[test]
    fn disconnected_component_unreachable() {
        let world = vec![vec![e(0), e(1)], vec![e(2), e(3)]];
        let index = SearchIndex::build(4, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(0)], 100);
        assert_eq!(result.entities_found, 2);
        assert!(result.exhausted);
    }

    #[test]
    fn absent_seed_discovers_nothing() {
        let world = vec![vec![e(0)]];
        let index = SearchIndex::build(3, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(2)], 100);
        assert_eq!(result.entities_found, 1, "the seed itself is 'known'");
        assert_eq!(result.sites_fetched, 0);
        assert!(result.exhausted);
    }

    #[test]
    fn duplicate_seeds_and_zero_budget() {
        let world = chain_world();
        let index = SearchIndex::build(4, &world, None);
        let result = crawl(&index, &world, Fifo::default(), &[e(0), e(0)], 0);
        assert_eq!(result.sites_fetched, 0);
        assert_eq!(result.entities_found, 1);
    }

    #[test]
    fn query_budget_limits_expansion() {
        let world = chain_world();
        let index = SearchIndex::build(4, &world, None);
        // One query: only the seed is looked up; its site yields e1, but
        // e1 is never queried, so s1/s2 stay undiscovered.
        let crawler = Crawler::new(&index, &world, Fifo::default(), &[e(0)]);
        let result = crawler.run_with_budgets(100, 1);
        assert_eq!(result.queries_issued, 1);
        assert_eq!(result.sites_fetched, 1);
        assert_eq!(result.entities_found, 2);
        // A generous budget restores full discovery.
        let crawler = Crawler::new(&index, &world, Fifo::default(), &[e(0)]);
        let full = crawler.run_with_budgets(100, 100);
        assert_eq!(full.entities_found, 4);
    }

    #[test]
    fn result_page_caps_can_break_tail_discovery() {
        // A real hazard of search-mediated discovery: with a 1-result
        // page, entity 1's query returns only its top-ranked site (s0,
        // already fetched), so the chain beyond it is never reached.
        let world = chain_world();
        let index = SearchIndex::build(4, &world, Some(1));
        let capped = crawl(&index, &world, Fifo::default(), &[e(0)], 100);
        assert_eq!(capped.entities_found, 2);
        assert!(capped.exhausted, "the crawl drains without reaching e2/e3");
        // A 2-result page restores full discovery.
        let index2 = SearchIndex::build(4, &world, Some(2));
        let uncapped = crawl(&index2, &world, Fifo::default(), &[e(0)], 100);
        assert_eq!(uncapped.entities_found, 4);
    }
}
