//! Typed fetch outcomes and the fault-aware fetch simulator.
//!
//! The crawler's fetch step used to be an infallible array lookup; this
//! module is the layer that makes it behave like the web. A [`FetchSim`]
//! consults a [`FaultPlan`] for every attempt, charges retries and
//! timeouts to the simulated clock, applies the [`RetryPolicy`]'s
//! backoff, and runs a per-site [`CircuitBreaker`] so the crawler stops
//! burning budget on sites that never answer. Everything it does is a
//! deterministic function of the plan seed and per-site attempt
//! ordinals, so faulty crawls are as reproducible as clean ones.

use webstruct_util::fault::{
    BreakerConfig, CircuitBreaker, Fault, FaultPlan, RetryPolicy, SimClock,
};
use webstruct_util::obs::{self, Counter};

/// Simulated cost of one fetch attempt, in [`SimClock`] ticks.
pub const FETCH_COST_TICKS: u64 = 10;
/// Extra ticks a timed-out attempt wastes before the deadline fires.
pub const TIMEOUT_COST_TICKS: u64 = 60;

/// Why a fetch attempt (or a whole round of attempts) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// Connection reset / 5xx.
    Transient,
    /// Deadline exceeded.
    Timeout,
    /// 429 — throttled by the site.
    RateLimited,
    /// The site never answers (permanently dead). The fetcher only
    /// learns this by repeated failure; the error is what the breaker
    /// eventually acts on.
    Dead,
    /// The retry budget (or the crawl's fetch budget) ran out before any
    /// attempt succeeded; wraps the last error observed.
    Exhausted(&'static str),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Transient => write!(f, "transient error"),
            FetchError::Timeout => write!(f, "timeout"),
            FetchError::RateLimited => write!(f, "rate limited"),
            FetchError::Dead => write!(f, "site dead"),
            FetchError::Exhausted(last) => write!(f, "retries exhausted (last: {last})"),
        }
    }
}

impl FetchError {
    fn from_fault(fault: Fault) -> Self {
        match fault {
            Fault::Transient => FetchError::Transient,
            Fault::Timeout => FetchError::Timeout,
            Fault::RateLimited => FetchError::RateLimited,
            Fault::Dead => FetchError::Dead,
            Fault::Truncated(_) => {
                unreachable!("truncation is a partial success, not an error")
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            FetchError::Transient => "transient error",
            FetchError::Timeout => "timeout",
            FetchError::RateLimited => "rate limited",
            FetchError::Dead => "site dead",
            FetchError::Exhausted(_) => "exhausted",
        }
    }
}

/// Result of one fetch *round*: an initial attempt plus its retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FetchOutcome {
    /// The page came back. `truncated` carries the kept fraction when the
    /// response was cut short (`None` for a full page).
    Success {
        /// Fraction of the page delivered, if truncated.
        truncated: Option<f64>,
    },
    /// Every attempt in the round failed.
    Failed(FetchError),
}

/// Live registry-backed counters a [`FetchSim`] increments as it runs.
///
/// These are the source of truth; the public [`FetchStats`] struct is a
/// point-in-time snapshot view built by [`FetchSim::stats`] /
/// [`FetchSim::into_stats`]. Keeping them as [`obs::Counter`] atomics
/// means the same handles can be read mid-crawl without `&mut` access.
#[derive(Debug, Default)]
pub struct FetchCounters {
    /// Fetch attempts issued.
    pub attempts: Counter,
    /// Rounds that ended in success.
    pub ok: Counter,
    /// Retries issued.
    pub retries: Counter,
    /// Rounds that ended in failure.
    pub failed_rounds: Counter,
    /// Successful rounds that returned a truncated page.
    pub truncated: Counter,
    /// Attempts that timed out.
    pub timeouts: Counter,
    /// Attempts that failed transiently.
    pub transients: Counter,
    /// Attempts rejected by a rate limiter.
    pub rate_limited: Counter,
    /// Attempts against permanently dead sites.
    pub dead_attempts: Counter,
    /// Breaker trips.
    pub breaker_opens: Counter,
    /// Sites dropped because their breaker was open.
    pub breaker_skips: Counter,
}

impl FetchCounters {
    /// Snapshot the counters into the public stats view.
    #[must_use]
    fn snapshot(&self, sim_ticks: u64) -> FetchStats {
        let stats = FetchStats {
            attempts: self.attempts.get() as usize,
            ok: self.ok.get() as usize,
            retries: self.retries.get() as usize,
            failed_rounds: self.failed_rounds.get() as usize,
            truncated: self.truncated.get() as usize,
            timeouts: self.timeouts.get() as usize,
            transients: self.transients.get() as usize,
            rate_limited: self.rate_limited.get() as usize,
            dead_attempts: self.dead_attempts.get() as usize,
            breaker_opens: self.breaker_opens.get() as usize,
            breaker_skips: self.breaker_skips.get() as usize,
            sim_ticks,
        };
        debug_assert!(
            stats.is_consistent(),
            "fetch counter invariant violated: {stats:?}"
        );
        stats
    }
}

/// Counters accumulated by a [`FetchSim`] over a crawl — a snapshot view
/// of the live [`FetchCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Fetch attempts issued (each one charges the fetch budget).
    pub attempts: usize,
    /// Rounds that ended in a (possibly truncated) success.
    pub ok: usize,
    /// Retries issued (attempts beyond the first of each round).
    pub retries: usize,
    /// Rounds that ended in failure.
    pub failed_rounds: usize,
    /// Successful rounds that returned a truncated page.
    pub truncated: usize,
    /// Attempts that failed with a timeout.
    pub timeouts: usize,
    /// Attempts that failed with a transient error.
    pub transients: usize,
    /// Attempts rejected by a rate limiter.
    pub rate_limited: usize,
    /// Attempts against permanently dead sites.
    pub dead_attempts: usize,
    /// Times a per-site circuit breaker tripped open.
    pub breaker_opens: usize,
    /// Sites dropped (pop-time or post-failure) because their breaker
    /// was open.
    pub breaker_skips: usize,
    /// Final reading of the simulated clock, in ticks.
    pub sim_ticks: u64,
}

impl FetchStats {
    /// The attempt-accounting invariant: every issued attempt is either
    /// the success that ended its round or a classified failure, so
    /// `attempts == ok + timeouts + transients + rate_limited +
    /// dead_attempts`. Checked with `debug_assert!` every time a
    /// snapshot is taken.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.attempts
            == self.ok + self.timeouts + self.transients + self.rate_limited + self.dead_attempts
    }
}

/// The fault-aware fetch engine: one per crawl, shared by all its rounds.
pub struct FetchSim<'p> {
    plan: &'p FaultPlan,
    retry: RetryPolicy,
    clock: SimClock,
    breakers: Vec<CircuitBreaker>,
    /// Per-site attempt ordinals — the `attempt` coordinate fed to the
    /// plan, so fault streams don't depend on global interleaving.
    attempts_by_site: Vec<u32>,
    counters: FetchCounters,
}

impl<'p> FetchSim<'p> {
    /// A fresh simulator over `n_sites` sites.
    #[must_use]
    pub fn new(
        plan: &'p FaultPlan,
        retry: RetryPolicy,
        breaker: BreakerConfig,
        n_sites: usize,
    ) -> Self {
        FetchSim {
            plan,
            retry,
            clock: SimClock::new(),
            breakers: vec![CircuitBreaker::new(breaker); n_sites],
            attempts_by_site: vec![0; n_sites],
            counters: FetchCounters::default(),
        }
    }

    /// The live counters (readable mid-crawl).
    #[must_use]
    pub fn counters(&self) -> &FetchCounters {
        &self.counters
    }

    /// A point-in-time snapshot of the counters (clock included).
    #[must_use]
    pub fn stats(&self) -> FetchStats {
        self.counters.snapshot(self.clock.now())
    }

    /// Whether the crawler may fetch `site` now. A denial (breaker open,
    /// cooldown not elapsed) is free — it charges no budget — and is
    /// counted in [`FetchStats::breaker_skips`].
    pub fn allow(&mut self, site: usize) -> bool {
        if self.breakers[site].allow(self.clock.now()) {
            true
        } else {
            self.counters.breaker_skips.inc();
            false
        }
    }

    /// Whether `site` is worth re-offering to the frontier after a failed
    /// round. `false` once its breaker has tripped open — that is the
    /// breaker doing its job: the site is treated as dead for the rest of
    /// the crawl. Counted in [`FetchStats::breaker_skips`].
    pub fn retry_later(&mut self, site: usize) -> bool {
        use webstruct_util::fault::BreakerState;
        if self.breakers[site].state() == BreakerState::Open {
            self.counters.breaker_skips.inc();
            false
        } else {
            true
        }
    }

    /// Run one fetch round against `site`: an attempt plus up to
    /// [`RetryPolicy::max_retries`] retries, never exceeding
    /// `budget_left` attempts. Returns the outcome and the attempts
    /// consumed (≥ 1 when `budget_left > 0`).
    pub fn fetch_round(&mut self, site: usize, budget_left: usize) -> (FetchOutcome, usize) {
        let mut used = 0usize;
        let mut last_error = FetchError::Transient;
        loop {
            if used >= budget_left {
                // Budget died mid-round: the round fails as exhausted.
                let outcome = FetchOutcome::Failed(FetchError::Exhausted(last_error.label()));
                self.round_failed(site);
                return (outcome, used);
            }
            let attempt = self.attempts_by_site[site];
            self.attempts_by_site[site] += 1;
            self.counters.attempts.inc();
            used += 1;
            self.clock.advance(FETCH_COST_TICKS);
            match self.plan.fault(site, attempt) {
                None => {
                    self.round_ok(site);
                    return (FetchOutcome::Success { truncated: None }, used);
                }
                Some(Fault::Truncated(frac)) => {
                    self.counters.truncated.inc();
                    self.round_ok(site);
                    return (
                        FetchOutcome::Success {
                            truncated: Some(frac),
                        },
                        used,
                    );
                }
                Some(fault) => {
                    match fault {
                        Fault::Timeout => {
                            self.counters.timeouts.inc();
                            self.clock.advance(TIMEOUT_COST_TICKS);
                        }
                        Fault::Transient => self.counters.transients.inc(),
                        Fault::RateLimited => self.counters.rate_limited.inc(),
                        Fault::Dead => self.counters.dead_attempts.inc(),
                        Fault::Truncated(_) => unreachable!("handled above"),
                    }
                    last_error = FetchError::from_fault(fault);
                    let retry = (used - 1) as u32;
                    if retry >= self.retry.max_retries {
                        self.round_failed(site);
                        return (FetchOutcome::Failed(last_error), used);
                    }
                    self.counters.retries.inc();
                    self.clock
                        .advance(self.retry.backoff_ticks(retry, site as u64));
                }
            }
        }
    }

    fn round_ok(&mut self, site: usize) {
        self.counters.ok.inc();
        self.breakers[site].record_success();
    }

    fn round_failed(&mut self, site: usize) {
        self.counters.failed_rounds.inc();
        if self.breakers[site].record_failure(self.clock.now()) {
            self.counters.breaker_opens.inc();
        }
    }

    /// Finalise: snapshot the counters (clock reading included), publish
    /// the crawl's totals to the global `fetch.*` metrics, and return the
    /// snapshot. Publication happens once per crawl with value-
    /// deterministic totals, so the global registry snapshot stays
    /// byte-identical across thread counts.
    #[must_use]
    pub fn into_stats(self) -> FetchStats {
        let stats = self.stats();
        let m = obs::metrics();
        m.add("fetch.attempts", stats.attempts as u64);
        m.add("fetch.ok", stats.ok as u64);
        m.add("fetch.retries", stats.retries as u64);
        m.add("fetch.failed_rounds", stats.failed_rounds as u64);
        m.add("fetch.truncated", stats.truncated as u64);
        m.add("fetch.timeouts", stats.timeouts as u64);
        m.add("fetch.transients", stats.transients as u64);
        m.add("fetch.rate_limited", stats.rate_limited as u64);
        m.add("fetch.dead_attempts", stats.dead_attempts as u64);
        m.add("fetch.breaker_opens", stats.breaker_opens as u64);
        m.add("fetch.breaker_skips", stats.breaker_skips as u64);
        m.add("fetch.sim_ticks", stats.sim_ticks);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::fault::FaultConfig;
    use webstruct_util::rng::Seed;

    #[test]
    fn clean_plan_fetches_in_one_attempt() {
        let plan = FaultPlan::none();
        let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), 5);
        for site in 0..5 {
            assert!(sim.allow(site));
            let (outcome, used) = sim.fetch_round(site, usize::MAX);
            assert_eq!(outcome, FetchOutcome::Success { truncated: None });
            assert_eq!(used, 1);
        }
        let stats = sim.into_stats();
        assert_eq!(stats.attempts, 5);
        assert_eq!(stats.ok, 5);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed_rounds, 0);
        assert_eq!(stats.sim_ticks, 5 * FETCH_COST_TICKS);
    }

    #[test]
    fn dead_site_exhausts_retries_then_trips_the_breaker() {
        let plan = FaultPlan::new(
            FaultConfig {
                dead_site_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(1),
        );
        let retry = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 10_000,
        };
        let mut sim = FetchSim::new(&plan, retry, breaker, 1);
        let (outcome, used) = sim.fetch_round(0, usize::MAX);
        assert_eq!(outcome, FetchOutcome::Failed(FetchError::Dead));
        assert_eq!(used, 3, "1 attempt + 2 retries");
        assert!(sim.retry_later(0), "one failed round: breaker still closed");
        let (outcome, _) = sim.fetch_round(0, usize::MAX);
        assert_eq!(outcome, FetchOutcome::Failed(FetchError::Dead));
        assert!(!sim.retry_later(0), "second round tripped the breaker");
        assert!(!sim.allow(0), "open breaker rejects the site");
        let stats = sim.into_stats();
        assert_eq!(stats.failed_rounds, 2);
        assert_eq!(stats.breaker_opens, 1);
        assert_eq!(stats.dead_attempts, 6);
        assert_eq!(stats.breaker_skips, 2, "retry_later denial + allow denial");
    }

    #[test]
    fn budget_exhaustion_mid_retry_fails_the_round() {
        let plan = FaultPlan::new(
            FaultConfig {
                failure_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(2),
        );
        let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), 1);
        // Budget allows 2 attempts; the policy would allow 4.
        let (outcome, used) = sim.fetch_round(0, 2);
        assert_eq!(used, 2);
        match outcome {
            FetchOutcome::Failed(FetchError::Exhausted(_)) => {}
            other => panic!("expected exhausted, got {other:?}"),
        }
        let stats = sim.into_stats();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.retries, 2, "both attempts were followed by a retry wait");
        assert_eq!(stats.failed_rounds, 1);
    }

    #[test]
    fn zero_budget_round_consumes_nothing() {
        let plan = FaultPlan::none();
        let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), 1);
        let (outcome, used) = sim.fetch_round(0, 0);
        assert_eq!(used, 0);
        assert!(matches!(
            outcome,
            FetchOutcome::Failed(FetchError::Exhausted(_))
        ));
    }

    #[test]
    fn truncated_success_counts_and_reports_fraction() {
        let plan = FaultPlan::new(
            FaultConfig {
                truncation_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(3),
        );
        let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), 1);
        let (outcome, used) = sim.fetch_round(0, usize::MAX);
        assert_eq!(used, 1);
        match outcome {
            FetchOutcome::Success {
                truncated: Some(f),
            } => assert!((0.1..0.9).contains(&f)),
            other => panic!("expected truncated success, got {other:?}"),
        }
        let stats = sim.into_stats();
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.truncated, 1);
    }

    #[test]
    fn timeouts_cost_extra_simulated_time() {
        let plan = FaultPlan::new(
            FaultConfig {
                failure_rate: 1.0,
                timeout_share: 1.0,
                ..FaultConfig::none()
            },
            Seed(4),
        );
        let mut sim = FetchSim::new(&plan, RetryPolicy::no_retries(), BreakerConfig::default(), 1);
        let (outcome, _) = sim.fetch_round(0, usize::MAX);
        assert_eq!(outcome, FetchOutcome::Failed(FetchError::Timeout));
        let stats = sim.into_stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.sim_ticks, FETCH_COST_TICKS + TIMEOUT_COST_TICKS);
    }

    #[test]
    fn stats_snapshots_satisfy_the_attempt_invariant() {
        let plan = FaultPlan::new(FaultConfig::flaky(0.3), Seed(7));
        let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), 16);
        for round in 0..64 {
            let site = round % 16;
            if sim.allow(site) {
                let _ = sim.fetch_round(site, 4);
            }
            let mid = sim.stats();
            assert!(mid.is_consistent(), "mid-crawl snapshot: {mid:?}");
        }
        let stats = sim.into_stats();
        assert!(stats.is_consistent(), "final snapshot: {stats:?}");
        assert!(stats.attempts > 0);
    }

    #[test]
    fn inconsistent_stats_are_detected() {
        let bad = FetchStats {
            attempts: 5,
            ok: 1,
            timeouts: 1,
            ..FetchStats::default()
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn fetch_error_display_is_stable() {
        assert_eq!(FetchError::Transient.to_string(), "transient error");
        assert_eq!(FetchError::Dead.to_string(), "site dead");
        assert_eq!(
            FetchError::Exhausted("timeout").to_string(),
            "retries exhausted (last: timeout)"
        );
    }
}
