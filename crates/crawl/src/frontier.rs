//! Frontier policies: which discovered-but-unfetched site to crawl next.
//!
//! The §5 expander fetches *everything* each round; under a fetch budget
//! the order matters enormously, because site sizes are heavy-tailed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use webstruct_util::ids::SiteId;
use webstruct_util::rng::{Seed, Xoshiro256};

/// A frontier policy: receives discovered sites, yields the next fetch.
pub trait FrontierPolicy {
    /// A site was discovered (with an estimated size signal — here the
    /// true mention count, standing in for a search engine's result
    /// counts).
    fn offer(&mut self, site: SiteId, size_hint: usize);

    /// Next site to fetch, or `None` when the frontier is empty.
    fn next(&mut self) -> Option<SiteId>;

    /// Whether the frontier is empty.
    fn is_empty(&self) -> bool;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// First-in, first-out: pure breadth-first discovery.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<SiteId>,
}

impl FrontierPolicy for Fifo {
    fn offer(&mut self, site: SiteId, _size_hint: usize) {
        self.queue.push_back(site);
    }

    fn next(&mut self) -> Option<SiteId> {
        self.queue.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Largest-known-size first: greedy on the size signal.
#[derive(Debug, Default)]
pub struct LargestFirst {
    heap: BinaryHeap<(usize, Reverse<u32>)>,
}

impl FrontierPolicy for LargestFirst {
    fn offer(&mut self, site: SiteId, size_hint: usize) {
        self.heap.push((size_hint, Reverse(site.raw())));
    }

    fn next(&mut self) -> Option<SiteId> {
        self.heap.pop().map(|(_, Reverse(s))| SiteId::new(s))
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn name(&self) -> &'static str {
        "largest-first"
    }
}

/// Uniform-random next fetch (the no-signal baseline).
#[derive(Debug)]
pub struct RandomOrder {
    rng: Xoshiro256,
    pool: Vec<SiteId>,
}

impl RandomOrder {
    /// Seeded random policy.
    #[must_use]
    pub fn new(seed: Seed) -> Self {
        RandomOrder {
            rng: Xoshiro256::from_seed(seed.derive("frontier")),
            pool: Vec::new(),
        }
    }
}

impl FrontierPolicy for RandomOrder {
    fn offer(&mut self, site: SiteId, _size_hint: usize) {
        self.pool.push(site);
    }

    fn next(&mut self) -> Option<SiteId> {
        if self.pool.is_empty() {
            return None;
        }
        let i = self.rng.usize_below(self.pool.len());
        Some(self.pool.swap_remove(i))
    }

    fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Smallest-first: the adversarial baseline (tail sites first).
#[derive(Debug, Default)]
pub struct SmallestFirst {
    heap: BinaryHeap<(Reverse<usize>, Reverse<u32>)>,
}

impl FrontierPolicy for SmallestFirst {
    fn offer(&mut self, site: SiteId, size_hint: usize) {
        self.heap.push((Reverse(size_hint), Reverse(site.raw())));
    }

    fn next(&mut self) -> Option<SiteId> {
        self.heap.pop().map(|(_, Reverse(s))| SiteId::new(s))
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn name(&self) -> &'static str {
        "smallest-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> SiteId {
        SiteId::new(id)
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f = Fifo::default();
        assert!(f.is_empty());
        f.offer(s(3), 10);
        f.offer(s(1), 99);
        assert_eq!(f.next(), Some(s(3)));
        assert_eq!(f.next(), Some(s(1)));
        assert_eq!(f.next(), None);
        assert_eq!(f.name(), "fifo");
    }

    #[test]
    fn largest_first_orders_by_size_then_id() {
        let mut f = LargestFirst::default();
        f.offer(s(5), 10);
        f.offer(s(2), 40);
        f.offer(s(9), 40);
        assert_eq!(f.next(), Some(s(2)), "ties break to smaller id");
        assert_eq!(f.next(), Some(s(9)));
        assert_eq!(f.next(), Some(s(5)));
        assert!(f.is_empty());
    }

    #[test]
    fn smallest_first_is_the_reverse() {
        let mut f = SmallestFirst::default();
        f.offer(s(5), 10);
        f.offer(s(2), 40);
        assert_eq!(f.next(), Some(s(5)));
        assert_eq!(f.next(), Some(s(2)));
    }

    #[test]
    fn random_order_is_seeded_and_complete() {
        let mut a = RandomOrder::new(Seed(5));
        let mut b = RandomOrder::new(Seed(5));
        for i in 0..20 {
            a.offer(s(i), 1);
            b.offer(s(i), 1);
        }
        let seq_a: Vec<_> = std::iter::from_fn(|| a.next()).collect();
        let seq_b: Vec<_> = std::iter::from_fn(|| b.next()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same order");
        let mut sorted: Vec<u32> = seq_a.iter().map(|x| x.raw()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "a permutation");
        // Different seed differs (overwhelmingly).
        let mut c = RandomOrder::new(Seed(6));
        for i in 0..20 {
            c.offer(s(i), 1);
        }
        let seq_c: Vec<_> = std::iter::from_fn(|| c.next()).collect();
        assert_ne!(seq_a, seq_c);
    }
}
