//! Match scoring and clustering: from candidate pairs to merged entities.

use crate::blocking::{candidate_pairs, Blocking};
use crate::records::Record;
use crate::similarity::name_similarity;
use webstruct_util::hash::FxHashMap;

/// Matcher parameters.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Name-similarity threshold for a match without phone evidence.
    pub name_threshold: f64,
    /// Name-similarity threshold when phones agree (much weaker evidence
    /// needed).
    pub name_threshold_phone_match: f64,
    /// Whether disagreeing phones veto a match outright.
    pub phone_veto: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            name_threshold: 0.82,
            name_threshold_phone_match: 0.45,
            phone_veto: true,
        }
    }
}

/// Pairwise decision: do two records describe the same entity?
#[must_use]
pub fn is_match(a: &Record, b: &Record, config: &MatchConfig) -> bool {
    let sim = name_similarity(&a.name, &b.name);
    match (a.phone, b.phone) {
        (Some(pa), Some(pb)) if pa == pb => sim >= config.name_threshold_phone_match,
        (Some(_), Some(_)) if config.phone_veto => false,
        _ => sim >= config.name_threshold,
    }
}

/// The result of clustering records.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id per record.
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub n_clusters: usize,
}

/// Cluster records: score candidate pairs, union the matches.
#[must_use]
pub fn cluster(records: &[Record], blocking: Blocking, config: &MatchConfig) -> Clustering {
    let mut parent: Vec<u32> = (0..records.len() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }
    for (a, b) in candidate_pairs(records, blocking) {
        if is_match(&records[a as usize], &records[b as usize], config) {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[rb as usize] = ra;
            }
        }
    }
    // Densify cluster ids.
    let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
    let mut assignment = Vec::with_capacity(records.len());
    for i in 0..records.len() as u32 {
        let root = find(&mut parent, i);
        let next = dense.len() as u32;
        let id = *dense.entry(root).or_insert(next);
        assignment.push(id);
    }
    Clustering {
        n_clusters: dense.len(),
        assignment,
    }
}

/// Pairwise precision/recall/F1 of a clustering against record truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupReport {
    /// Blocking strategy used.
    pub blocking: Blocking,
    /// Number of predicted clusters.
    pub n_clusters: usize,
    /// Number of true entities among the records.
    pub n_truth: usize,
    /// Pairwise precision.
    pub precision: f64,
    /// Pairwise recall.
    pub recall: f64,
}

impl DedupReport {
    /// Pairwise F1.
    #[must_use]
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            return 0.0;
        }
        2.0 * self.precision * self.recall / (self.precision + self.recall)
    }
}

/// Cluster and evaluate in one call.
#[must_use]
pub fn dedup_and_evaluate(
    records: &[Record],
    blocking: Blocking,
    config: &MatchConfig,
) -> DedupReport {
    let clustering = cluster(records, blocking, config);
    // Pairwise counts via cluster/truth contingency.
    let mut cluster_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    let mut truth_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    let mut cell: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    for (r, &c) in records.iter().zip(&clustering.assignment) {
        *cluster_sizes.entry(c).or_insert(0) += 1;
        *truth_sizes.entry(r.truth.raw()).or_insert(0) += 1;
        *cell.entry((c, r.truth.raw())).or_insert(0) += 1;
    }
    let pairs = |n: u64| n * (n.saturating_sub(1)) / 2;
    let predicted: u64 = cluster_sizes.values().map(|&n| pairs(n)).sum();
    let actual: u64 = truth_sizes.values().map(|&n| pairs(n)).sum();
    let correct: u64 = cell.values().map(|&n| pairs(n)).sum();
    DedupReport {
        blocking,
        n_clusters: clustering.n_clusters,
        n_truth: truth_sizes.len(),
        precision: if predicted == 0 {
            1.0
        } else {
            correct as f64 / predicted as f64
        },
        recall: if actual == 0 {
            1.0
        } else {
            correct as f64 / actual as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{generate_records, VariantModel};
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
    use webstruct_util::ids::{EntityId, RegionId, SiteId};
    use webstruct_util::rng::Seed;

    fn rec(id: u32, name: &str, phone: Option<u64>, truth: u32) -> Record {
        Record {
            id,
            site: SiteId::new(0),
            name: name.to_string(),
            phone,
            region: RegionId::new(0),
            truth: EntityId::new(truth),
        }
    }

    #[test]
    fn phone_agreement_lowers_the_bar() {
        let cfg = MatchConfig::default();
        let a = rec(0, "Golden Dragon Cafe", Some(4_155_550_134), 0);
        let b = rec(1, "G D C Restaurant Group", Some(4_155_550_134), 0);
        // Weak name similarity, but phones agree.
        assert!(is_match(&a, &b, &cfg) || name_similarity(&a.name, &b.name) < 0.45);
        let c = rec(2, "Golden Dragon Cafe", Some(2_125_559_999), 0);
        assert!(!is_match(&a, &c, &cfg), "phone veto applies");
        let mut no_veto = cfg;
        no_veto.phone_veto = false;
        assert!(is_match(&a, &c, &no_veto), "identical names match sans veto");
    }

    #[test]
    fn missing_phone_falls_back_to_names() {
        let cfg = MatchConfig::default();
        let a = rec(0, "Golden Dragon Cafe", None, 0);
        let b = rec(1, "Golden Dragon", Some(1), 0);
        assert!(is_match(&a, &b, &cfg) == (name_similarity(&a.name, &b.name) >= 0.82));
    }

    #[test]
    fn end_to_end_dedup_quality() {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 300), Seed(111));
        let records = generate_records(&catalog, 4, &VariantModel::default(), Seed(112));
        let report = dedup_and_evaluate(&records, Blocking::PhoneOrName, &MatchConfig::default());
        assert!(report.precision > 0.97, "precision {}", report.precision);
        assert!(report.recall > 0.80, "recall {}", report.recall);
        assert!(report.f1() > 0.88, "f1 {}", report.f1());
        // Cluster count lands near the true entity count.
        let ratio = report.n_clusters as f64 / report.n_truth as f64;
        assert!((0.8..1.5).contains(&ratio), "cluster/truth ratio {ratio}");
    }

    #[test]
    fn clean_records_dedup_perfectly() {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 150), Seed(113));
        let clean = VariantModel {
            drop_suffix: 0.0,
            typo: 0.0,
            missing_phone: 0.0,
            wrong_phone: 0.0,
        };
        let records = generate_records(&catalog, 3, &clean, Seed(114));
        let report = dedup_and_evaluate(&records, Blocking::PhoneOrName, &MatchConfig::default());
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.n_clusters, report.n_truth);
    }

    #[test]
    fn singleton_records_stay_apart() {
        let records = vec![
            rec(0, "Alpha Bistro", Some(1_234), 0),
            rec(1, "Omega Grill", Some(5_678), 1),
        ];
        let clustering = cluster(&records, Blocking::PhoneOrName, &MatchConfig::default());
        assert_eq!(clustering.n_clusters, 2);
        assert_ne!(clustering.assignment[0], clustering.assignment[1]);
    }

    #[test]
    fn report_f1_edge_cases() {
        let r = DedupReport {
            blocking: Blocking::Phone,
            n_clusters: 0,
            n_truth: 0,
            precision: 0.0,
            recall: 0.0,
        };
        assert_eq!(r.f1(), 0.0);
    }
}
