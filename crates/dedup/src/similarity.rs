//! String similarity for record matching.
//!
//! Implements the standard measures used by listing-deduplication systems:
//! Jaro, Jaro–Winkler, and token-set Jaccard over normalised names.

/// Normalise a listing name: lowercase, collapse whitespace, strip
/// punctuation.
#[must_use]
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_space = true;
    for c in name.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Jaro similarity in `[0, 1]`.
#[must_use]
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched sequences in order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|&(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by shared prefix (up to 4
/// chars), standard scaling factor 0.1.
#[must_use]
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    if base <= 0.7 {
        return base;
    }
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    base + prefix as f64 * 0.1 * (1.0 - base)
}

/// Token-set Jaccard over whitespace tokens of the *normalised* names.
#[must_use]
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: std::collections::BTreeSet<&str> = a.split_whitespace().collect();
    let tb: std::collections::BTreeSet<&str> = b.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    inter as f64 / union as f64
}

/// The combined name similarity used by the matcher: the mean of
/// Jaro–Winkler (character-level typos) and token Jaccard (word-level
/// edits), over normalised inputs.
#[must_use]
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    (jaro_winkler(&na, &nb) + token_jaccard(&na, &nb)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize("Golden  Dragon, Cafe!"), "golden dragon cafe");
        assert_eq!(normalize("  A&B  "), "a b");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn jaro_reference_values() {
        // Classic textbook pairs.
        assert!((jaro("martha", "marhta") - 0.9444).abs() < 1e-3);
        assert!((jaro("dixon", "dicksonx") - 0.7667).abs() < 1e-3);
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefixes() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611).abs() < 1e-3);
        assert!(jw > jaro("martha", "marhta"));
        // No boost below the 0.7 threshold.
        assert_eq!(jaro_winkler("abc", "xyz"), jaro("abc", "xyz"));
    }

    #[test]
    fn jaccard_counts_tokens() {
        assert_eq!(token_jaccard("golden dragon cafe", "golden dragon"), 2.0 / 3.0);
        assert_eq!(token_jaccard("a b", "a b"), 1.0);
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("a", "b"), 0.0);
    }

    #[test]
    fn name_similarity_tolerates_realistic_variants() {
        let full = "Golden Dragon Cafe";
        assert!(name_similarity(full, "Golden Dragon Cafe") > 0.99);
        assert!(name_similarity(full, "Golden Dragon") > 0.75);
        assert!(name_similarity(full, "Goldn Dragon Cafe") > 0.7); // typo
        assert!(name_similarity(full, "Prairie Crown Grill") < 0.5);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let pairs = [
            ("Golden Dragon Cafe", "Golden Dragon"),
            ("martha", "marhta"),
            ("", "x"),
        ];
        for (a, b) in pairs {
            for f in [jaro, jaro_winkler, token_jaccard, name_similarity] {
                let ab = f(a, b);
                let ba = f(b, a);
                assert!((ab - ba).abs() < 1e-12, "asymmetric on {a:?}/{b:?}");
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }
}
