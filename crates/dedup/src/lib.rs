//! # webstruct-dedup
//!
//! Record deduplication — the "deduplication and linking" stage of the
//! end-to-end challenge enumerated in §1 of *An Analysis of Structured
//! Data on the Web* ("automatic crawling, clustering, extraction,
//! deduplication and linking, all at the scale and diversity of the
//! Web"):
//!
//! * [`similarity`] — Jaro/Jaro–Winkler/token-Jaccard name similarity;
//! * [`records`] — noisy per-site listing records with ground truth;
//! * [`blocking`] — phone/name blocking with recall-vs-volume evaluation;
//! * [`cluster`](mod@cluster) — pairwise matching (phone-boosted thresholds),
//!   union–find clustering, pairwise precision/recall/F1.

//!
//! ## Example
//!
//! ```
//! use webstruct_dedup::name_similarity;
//!
//! assert!(name_similarity("Golden Dragon Cafe", "Golden Dragon") > 0.75);
//! assert!(name_similarity("Golden Dragon Cafe", "Ruby Crossing Inn") < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod blocking;
pub mod cluster;
pub mod records;
pub mod similarity;

pub use blocking::{candidate_pairs, evaluate_blocking, Blocking, BlockingReport};
pub use cluster::{cluster, dedup_and_evaluate, is_match, DedupReport, MatchConfig};
pub use records::{generate_records, Record, VariantModel};
pub use similarity::{jaro, jaro_winkler, name_similarity, normalize, token_jaccard};
