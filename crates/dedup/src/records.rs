//! Listing records and the variant model.
//!
//! Different sites render the same business differently: truncated names,
//! typos, missing phones. This module turns catalog entities into the
//! noisy per-site records a real extraction run would produce, retaining
//! ground truth for evaluation.

use webstruct_corpus::entity::EntityCatalog;
use webstruct_util::ids::{EntityId, RegionId, SiteId};
use webstruct_util::rng::{Seed, Xoshiro256};

/// One extracted listing record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Dense record id.
    pub id: u32,
    /// The site the record came from.
    pub site: SiteId,
    /// Rendered (possibly corrupted) name.
    pub name: String,
    /// Extracted phone digits, when the site exposed one.
    pub phone: Option<u64>,
    /// The record's region.
    pub region: RegionId,
    /// Ground truth: the entity this record describes.
    pub truth: EntityId,
}

/// Corruption rates for record generation.
#[derive(Debug, Clone, Copy)]
pub struct VariantModel {
    /// P(drop the trailing name token) — "Golden Dragon Cafe" → "Golden
    /// Dragon".
    pub drop_suffix: f64,
    /// P(typo: swap two adjacent characters).
    pub typo: f64,
    /// P(the phone is missing from the record).
    pub missing_phone: f64,
    /// P(the phone digits are wrong — a stale or mistyped listing).
    pub wrong_phone: f64,
}

impl Default for VariantModel {
    fn default() -> Self {
        VariantModel {
            drop_suffix: 0.25,
            typo: 0.15,
            missing_phone: 0.30,
            wrong_phone: 0.03,
        }
    }
}

/// Generate `per_entity` records for each catalog entity.
///
/// # Panics
/// Panics when probabilities are outside `[0, 1]` or `per_entity == 0`.
#[must_use]
pub fn generate_records(
    catalog: &EntityCatalog,
    per_entity: usize,
    model: &VariantModel,
    seed: Seed,
) -> Vec<Record> {
    assert!(per_entity > 0, "need at least one record per entity");
    for p in [
        model.drop_suffix,
        model.typo,
        model.missing_phone,
        model.wrong_phone,
    ] {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    }
    let mut rng = Xoshiro256::from_seed(seed.derive("records"));
    let mut records = Vec::with_capacity(catalog.len() * per_entity);
    for entity in &catalog.entities {
        for copy in 0..per_entity {
            let mut name = entity.name.clone();
            // The first copy is the canonical listing; later copies vary.
            if copy > 0 {
                if rng.bool_with(model.drop_suffix) {
                    if let Some(pos) = name.rfind(' ') {
                        name.truncate(pos);
                    }
                }
                if rng.bool_with(model.typo) {
                    name = swap_typo(&name, &mut rng);
                }
            }
            let phone = entity.phone.map(webstruct_corpus::phone::PhoneNumber::digits);
            let phone = if rng.bool_with(model.missing_phone) {
                None
            } else if rng.bool_with(model.wrong_phone) {
                phone.map(|p| {
                    let line = p % 10_000;
                    p - line + (line + 1 + rng.u64_below(9_998)) % 10_000
                })
            } else {
                phone
            };
            records.push(Record {
                id: records.len() as u32,
                site: SiteId::new(copy as u32),
                name,
                phone,
                region: entity.region,
                truth: entity.id,
            });
        }
    }
    records
}

fn swap_typo(name: &str, rng: &mut Xoshiro256) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    // Find a swappable pair of alphabetic neighbours.
    let candidates: Vec<usize> = (0..chars.len().saturating_sub(1))
        .filter(|&i| chars[i].is_alphabetic() && chars[i + 1].is_alphabetic())
        .collect();
    if let Some(&i) = rng.choose(&candidates) {
        chars.swap(i, i + 1);
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::CatalogConfig;

    fn catalog() -> EntityCatalog {
        EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 200), Seed(91))
    }

    #[test]
    fn generates_per_entity_records_with_truth() {
        let c = catalog();
        let records = generate_records(&c, 3, &VariantModel::default(), Seed(92));
        assert_eq!(records.len(), 600);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.truth.index() < c.len());
        }
        // Every entity appears exactly 3 times in truth.
        let mut counts = vec![0; c.len()];
        for r in &records {
            counts[r.truth.index()] += 1;
        }
        assert!(counts.iter().all(|&n| n == 3));
    }

    #[test]
    fn first_copy_is_canonical() {
        let c = catalog();
        let records = generate_records(&c, 2, &VariantModel::default(), Seed(93));
        for chunk in records.chunks(2) {
            let truth_name = &c.entity(chunk[0].truth).name;
            assert_eq!(&chunk[0].name, truth_name, "copy 0 is unmodified");
        }
    }

    #[test]
    fn variants_actually_vary() {
        let c = catalog();
        let records = generate_records(&c, 4, &VariantModel::default(), Seed(94));
        let modified = records
            .iter()
            .filter(|r| r.name != c.entity(r.truth).name)
            .count();
        assert!(modified > 50, "only {modified} modified names");
        let missing = records.iter().filter(|r| r.phone.is_none()).count();
        let frac = missing as f64 / records.len() as f64;
        assert!((0.2..0.4).contains(&frac), "missing-phone fraction {frac}");
    }

    #[test]
    fn zero_noise_model_produces_clean_records() {
        let c = catalog();
        let clean = VariantModel {
            drop_suffix: 0.0,
            typo: 0.0,
            missing_phone: 0.0,
            wrong_phone: 0.0,
        };
        let records = generate_records(&c, 2, &clean, Seed(95));
        for r in &records {
            assert_eq!(r.name, c.entity(r.truth).name);
            assert_eq!(r.phone, c.entity(r.truth).phone.map(|p| p.digits()));
        }
    }

    #[test]
    fn swap_typo_preserves_charset() {
        let mut rng = Xoshiro256::from_seed(Seed(96));
        for _ in 0..50 {
            let t = swap_typo("Golden Dragon", &mut rng);
            let mut a: Vec<char> = t.chars().collect();
            let mut b: Vec<char> = "Golden Dragon".chars().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_copies_rejected() {
        let c = catalog();
        let _ = generate_records(&c, 0, &VariantModel::default(), Seed(97));
    }
}
