//! Blocking: cheap partitioning of records so the quadratic matcher only
//! compares plausible pairs.

use crate::records::Record;
use webstruct_util::hash::FxHashMap;

/// A blocking strategy: maps each record to one or more block keys;
/// records sharing a key become candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Exact phone digits (records without phones form no block).
    Phone,
    /// Region + first normalised name token.
    RegionFirstToken,
    /// Union of [`Blocking::Phone`] and [`Blocking::RegionFirstToken`] —
    /// the production choice: phone blocks catch renamed listings, name
    /// blocks catch records with missing phones.
    PhoneOrName,
}

impl Blocking {
    /// Strategy name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Blocking::Phone => "phone",
            Blocking::RegionFirstToken => "region+token",
            Blocking::PhoneOrName => "phone|name",
        }
    }
}

/// Candidate pairs (record indices, `a < b`), deduplicated and sorted.
#[must_use]
pub fn candidate_pairs(records: &[Record], strategy: Blocking) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    if matches!(strategy, Blocking::Phone | Blocking::PhoneOrName) {
        let mut by_phone: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for r in records {
            if let Some(p) = r.phone {
                by_phone.entry(p).or_default().push(r.id);
            }
        }
        emit_block_pairs(by_phone.values(), &mut pairs);
    }
    if matches!(strategy, Blocking::RegionFirstToken | Blocking::PhoneOrName) {
        let mut by_key: FxHashMap<(u32, String), Vec<u32>> = FxHashMap::default();
        for r in records {
            let token = crate::similarity::normalize(&r.name)
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            by_key.entry((r.region.raw(), token)).or_default().push(r.id);
        }
        emit_block_pairs(by_key.values(), &mut pairs);
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn emit_block_pairs<'a, I>(blocks: I, pairs: &mut Vec<(u32, u32)>)
where
    I: Iterator<Item = &'a Vec<u32>>,
{
    for block in blocks {
        for i in 0..block.len() {
            for j in i + 1..block.len() {
                let (a, b) = (block[i].min(block[j]), block[i].max(block[j]));
                pairs.push((a, b));
            }
        }
    }
}

/// Blocking diagnostics: candidate volume vs. the quadratic baseline, and
/// pair-level recall of true duplicate pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingReport {
    /// Strategy evaluated.
    pub strategy: Blocking,
    /// Candidate pairs produced.
    pub candidates: usize,
    /// All-pairs count `n(n-1)/2`.
    pub all_pairs: usize,
    /// Fraction of true duplicate pairs retained.
    pub pair_recall: f64,
}

/// Evaluate a blocking strategy against ground truth.
#[must_use]
pub fn evaluate_blocking(records: &[Record], strategy: Blocking) -> BlockingReport {
    let pairs = candidate_pairs(records, strategy);
    let n = records.len();
    let truth_of = |id: u32| records[id as usize].truth;
    let retained = pairs
        .iter()
        .filter(|&&(a, b)| truth_of(a) == truth_of(b))
        .count();
    // Count all true pairs.
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    for r in records {
        *counts.entry(r.truth.raw()).or_insert(0) += 1;
    }
    let true_pairs: usize = counts.values().map(|&c| c * (c - 1) / 2).sum();
    BlockingReport {
        strategy,
        candidates: pairs.len(),
        all_pairs: n * n.saturating_sub(1) / 2,
        pair_recall: if true_pairs == 0 {
            1.0
        } else {
            retained as f64 / true_pairs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{generate_records, VariantModel};
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
    use webstruct_util::rng::Seed;

    fn records() -> Vec<Record> {
        let c = EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 150), Seed(101));
        generate_records(&c, 3, &VariantModel::default(), Seed(102))
    }

    #[test]
    fn phone_blocking_is_tight_but_lossy() {
        let rs = records();
        let report = evaluate_blocking(&rs, Blocking::Phone);
        assert!(report.candidates < report.all_pairs / 10);
        // Missing phones (30%) cost recall.
        assert!(report.pair_recall < 0.9, "recall {}", report.pair_recall);
        assert!(report.pair_recall > 0.2);
    }

    #[test]
    fn union_blocking_recovers_recall() {
        let rs = records();
        let phone = evaluate_blocking(&rs, Blocking::Phone);
        let name = evaluate_blocking(&rs, Blocking::RegionFirstToken);
        let both = evaluate_blocking(&rs, Blocking::PhoneOrName);
        assert!(both.pair_recall >= phone.pair_recall);
        assert!(both.pair_recall >= name.pair_recall);
        assert!(
            both.pair_recall > 0.85,
            "union recall {}",
            both.pair_recall
        );
        assert!(both.candidates <= phone.candidates + name.candidates);
    }

    #[test]
    fn pairs_are_canonical_and_unique() {
        let rs = records();
        let pairs = candidate_pairs(&rs, Blocking::PhoneOrName);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
        assert!(pairs.iter().all(|&(a, b)| a < b));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Blocking::Phone.name(), "phone");
        assert_eq!(Blocking::PhoneOrName.name(), "phone|name");
    }

    #[test]
    fn empty_records() {
        let report = evaluate_blocking(&[], Blocking::PhoneOrName);
        assert_eq!(report.candidates, 0);
        assert_eq!(report.pair_recall, 1.0);
    }
}
