//! One benchmark per paper artifact: the cost of regenerating each table
//! and figure at bench scale. Run `cargo bench -p webstruct-bench` and see
//! EXPERIMENTS.md for the paper-vs-measured comparison the artifacts feed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webstruct_bench::bench_study;
use webstruct_core::experiments::{connectivity, spread, table1, tail_value};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1_domain_list", |b| {
        b.iter(|| black_box(table1()));
    });

    group.bench_function("fig1_phone_coverage_8_domains", |b| {
        let mut study = bench_study();
        // Warm the generation cache so the bench isolates the analysis.
        let _ = spread::fig1(&mut study);
        b.iter(|| black_box(spread::fig1(&mut study)));
    });

    group.bench_function("fig2_homepage_coverage_8_domains", |b| {
        let mut study = bench_study();
        let _ = spread::fig2(&mut study);
        b.iter(|| black_box(spread::fig2(&mut study)));
    });

    group.bench_function("fig3_isbn_coverage", |b| {
        let mut study = bench_study();
        let _ = spread::fig3(&mut study);
        b.iter(|| black_box(spread::fig3(&mut study)));
    });

    group.bench_function("fig4_review_coverage", |b| {
        let mut study = bench_study();
        let _ = spread::fig4(&mut study);
        b.iter(|| black_box(spread::fig4(&mut study)));
    });

    group.bench_function("fig5_greedy_cover", |b| {
        let mut study = bench_study();
        let _ = spread::fig5(&mut study);
        b.iter(|| black_box(spread::fig5(&mut study)));
    });

    group.bench_function("fig6_demand_curves", |b| {
        let mut study = bench_study();
        let _ = tail_value::fig6(&mut study);
        b.iter(|| black_box(tail_value::fig6(&mut study)));
    });

    group.bench_function("fig7_demand_vs_reviews", |b| {
        let mut study = bench_study();
        let _ = tail_value::fig7(&mut study);
        b.iter(|| black_box(tail_value::fig7(&mut study)));
    });

    group.bench_function("fig8_value_add", |b| {
        let mut study = bench_study();
        let _ = tail_value::fig8(&mut study);
        b.iter(|| black_box(tail_value::fig8(&mut study)));
    });

    group.bench_function("table2_graph_metrics_17_graphs", |b| {
        let mut study = bench_study();
        let _ = connectivity::table2_rows(&mut study);
        b.iter(|| black_box(connectivity::table2_rows(&mut study)));
    });

    group.bench_function("fig9_robustness_sweeps", |b| {
        let mut study = bench_study();
        let _ = connectivity::fig9(&mut study);
        b.iter(|| black_box(connectivity::fig9(&mut study)));
    });

    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);

    group.bench_function("generate_restaurant_world", |b| {
        b.iter(|| {
            let mut study = bench_study();
            black_box(study.domain(webstruct_corpus::domain::Domain::Restaurants))
        });
    });

    group.bench_function("simulate_traffic_year_yelp", |b| {
        b.iter(|| {
            let mut study = bench_study();
            black_box(study.traffic(webstruct_demand::StudySite::Yelp))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures, bench_generation);
criterion_main!(benches);
