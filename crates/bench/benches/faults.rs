//! Std-only fault-injection benchmark: times budgeted crawls at a sweep
//! of injected failure rates and writes `BENCH_faults.json` — crawl
//! throughput (fetch attempts per second) clean vs. flaky.
//!
//! ```text
//! cargo bench -p webstruct-bench --bench faults -- \
//!     --out artifacts/BENCH_faults.json --scale 0.05 --budget 2000 --repeats 3
//! ```

use webstruct_bench::run_fault_bench;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_faults.json");
    let mut scale = 0.05f64;
    let mut budget = 2_000usize;
    let mut repeats = 3usize;
    let mut rates: Vec<f64> = vec![0.0, 0.1, 0.3];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--budget" if i + 1 < args.len() => {
                budget = args[i + 1].parse().expect("--budget takes an integer");
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().expect("--repeats takes an integer");
                i += 2;
            }
            "--rates" if i + 1 < args.len() => {
                rates = args[i + 1]
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates takes e.g. 0,0.1,0.3"))
                    .collect();
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "fault bench: scale={scale} budget={budget} rates={rates:?} repeats={repeats} -> {out_path}"
    );
    let report = run_fault_bench(scale, budget, &rates, repeats);
    for m in &report.measurements {
        let rel = report
            .relative_throughput(m.failure_rate)
            .map_or_else(|| "-".to_string(), |r| format!("{r:.2}x"));
        eprintln!(
            "  fail={:<5} {:>10.4}s  {:>10.1} attempts/s (rel {})  retries={} breaker_opens={} entities={}",
            format!("{:.0}%", m.failure_rate * 100.0),
            m.secs,
            m.attempts_per_sec(),
            rel,
            m.retries,
            m.breaker_opens,
            m.entities_found
        );
    }
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_faults.json");
    eprintln!("wrote {out_path}");
}
