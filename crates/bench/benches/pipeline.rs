//! Std-only pipeline benchmark: times generate / render+extract /
//! analyze stages across worker-thread counts and writes
//! `BENCH_pipeline.json`.
//!
//! ```text
//! cargo bench -p webstruct-bench --bench pipeline -- \
//!     --out artifacts/BENCH_pipeline.json --scale 0.05 --threads 1,2,4,8 --repeats 3
//! ```

use webstruct_bench::run_pipeline_bench;

/// Count heap traffic for the whole binary: the harness reads deltas
/// around each instrumented stage, so the per-page allocation numbers in
/// the report are real measurements, not estimates.
#[global_allocator]
static ALLOC: webstruct_bench::alloc::CountingAlloc = webstruct_bench::alloc::CountingAlloc;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_pipeline.json");
    let mut scale = 0.02f64;
    let mut repeats = 3usize;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().expect("--repeats takes an integer");
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = args[i + 1]
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4"))
                    .collect();
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "pipeline bench: scale={scale} repeats={repeats} threads={threads:?} -> {out_path}"
    );
    let report = run_pipeline_bench(scale, &threads, repeats);
    for m in &report.measurements {
        let speedup = report
            .speedup(&m.stage, m.threads)
            .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
        let hot = m.hot.as_ref().map_or_else(String::new, |h| {
            format!(
                "  {:.0} pages/s  {:.2} MB/s  {:.1} allocs/page  {:.0} B alloc/page",
                h.pages_per_sec, h.mb_per_sec, h.allocs_per_page, h.bytes_alloc_per_page
            )
        });
        let scan = m
            .scan_mb_per_sec
            .map_or_else(String::new, |s| format!("  {s:.1} MB/s scanned"));
        eprintln!(
            "  {:<20} threads={:<3} {:>10.4}s  speedup {}{}{}",
            m.stage, m.threads, m.secs, speedup, hot, scan
        );
    }
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_pipeline.json");
    eprintln!(
        "wrote {out_path} (hardware_threads={})",
        report.hardware_threads
    );
}
