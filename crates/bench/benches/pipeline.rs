//! Extraction-pipeline throughput: scanner MB/s and end-to-end pages/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use webstruct_bench::bench_study;
use webstruct_corpus::domain::Domain;
use webstruct_corpus::page::{Page, PageConfig, PageStream};
use webstruct_extract::phone_scan::scan_phones;
use webstruct_extract::isbn_scan::scan_isbns;
use webstruct_extract::{train_review_classifier, Extractor, NaiveBayes};
use webstruct_util::rng::Seed;

fn rendered_pages(domain: Domain, max_pages: usize) -> (Vec<Page>, webstruct_corpus::entity::EntityCatalog) {
    let mut study = bench_study();
    let built = study.domain(domain);
    let pages: Vec<Page> = PageStream::new(
        &built.web,
        &built.catalog,
        PageConfig::default(),
        Seed(3),
    )
    .take(max_pages)
    .collect();
    (pages, built.catalog.clone())
}

fn bench_scanners(c: &mut Criterion) {
    let (pages, _) = rendered_pages(Domain::Restaurants, 2_000);
    let corpus_text: String = pages.iter().map(|p| p.text.as_str()).collect();
    let (book_pages, _) = rendered_pages(Domain::Books, 2_000);
    let book_text: String = book_pages.iter().map(|p| p.text.as_str()).collect();

    let mut group = c.benchmark_group("scanner_throughput");
    group.throughput(Throughput::Bytes(corpus_text.len() as u64));
    group.bench_function("phone_scan", |b| {
        b.iter(|| black_box(scan_phones(&corpus_text).len()));
    });
    group.throughput(Throughput::Bytes(book_text.len() as u64));
    group.bench_function("isbn_scan", |b| {
        b.iter(|| black_box(scan_isbns(&book_text).len()));
    });
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let clf: NaiveBayes = train_review_classifier(Seed(5), 200).unwrap();
    let (pages, _) = rendered_pages(Domain::Restaurants, 500);
    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(pages.len() as u64));
    group.bench_function("nb_classify_pages", |b| {
        b.iter(|| {
            let hits = pages.iter().filter(|p| clf.is_review(&p.text)).count();
            black_box(hits)
        });
    });
    group.bench_function("nb_train_400_docs", |b| {
        b.iter(|| black_box(train_review_classifier(Seed(5), 200).unwrap()));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let (pages, catalog) = rendered_pages(Domain::Restaurants, 2_000);
    let n_sites = pages.iter().map(|p| p.site.index()).max().unwrap_or(0) + 1;
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pages.len() as u64));
    group.bench_function("extract_2000_pages", |b| {
        let clf = train_review_classifier(Seed(5), 200).unwrap();
        let extractor = Extractor::new(&catalog).with_review_classifier(clf);
        b.iter(|| {
            let mut acc = webstruct_extract::ExtractedWeb::new(n_sites, catalog.len());
            for page in &pages {
                let ex = extractor.extract_page(page);
                acc.ingest(page.site, &ex);
            }
            black_box(acc.pages_processed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scanners, bench_classifier, bench_end_to_end);
criterion_main!(benches);
