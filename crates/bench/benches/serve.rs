//! Std-only serving bench: build warm serving state once, then replay
//! the simulated search/browse population over real loopback sockets
//! against a sweep of server worker counts. Writes `BENCH_serve.json`
//! for `bench_gate.sh` to gate (an rps floor and a p99 latency ceiling;
//! a digest divergence across the sweep fails in any mode).
//!
//! ```text
//! cargo bench -p webstruct-bench --bench serve -- \
//!     --out artifacts/BENCH_serve.json --scale 0.05 --requests 2000 \
//!     --clients 4
//! ```

use webstruct_bench::serve::run_serve_bench;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_serve.json");
    let mut scale = 0.05f64;
    let mut requests = 2000u64;
    let mut clients = 4usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--requests" if i + 1 < args.len() => {
                requests = args[i + 1].parse().expect("--requests takes an integer");
                i += 2;
            }
            "--clients" if i + 1 < args.len() => {
                clients = args[i + 1].parse().expect("--clients takes an integer");
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "serve bench: scale={scale} requests={requests} clients={clients} -> {out_path}"
    );
    let report = run_serve_bench(scale, requests, clients, &[1, 2, 4]);
    for m in &report.measurements {
        eprintln!(
            "  {} worker(s): {:.0} req/s, p50 {:.2}ms p99 {:.2}ms mean {:.2}ms, \
             {} ok / {} rejected / {} errors",
            m.server_threads, m.rps, m.p50_ms, m.p99_ms, m.mean_ms, m.ok, m.rejected, m.errors,
        );
    }
    eprintln!(
        "  headline: {:.0} req/s, p99 {:.2}ms, byte identical: {}",
        report.rps, report.p99_latency_ms, report.byte_identical
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
