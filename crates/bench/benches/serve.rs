//! Std-only serving bench: build warm serving state once, then replay
//! the simulated search/browse population over real loopback sockets
//! against a sweep of server worker counts — each count measured with
//! the hot-path response cache off (full router) and on — plus an
//! allocation window over cache hits and a cached replay with an epoch
//! hot-swap triggered mid-stream. Writes `BENCH_serve.json` for
//! `bench_gate.sh` to gate (per-thread rps floors, a cached-speedup
//! floor, a p99 latency ceiling, an allocs-per-hit ceiling; a digest
//! divergence — across the sweep or between cached and uncached — fails
//! in any mode).
//!
//! ```text
//! cargo bench -p webstruct-bench --bench serve -- \
//!     --out artifacts/BENCH_serve.json --scale 0.05 --requests 2000 \
//!     --clients 4
//! ```

use webstruct_bench::serve::run_serve_bench;

/// The counting allocator makes `allocs_per_request_cached` a real
/// number; without it the window reports zero unconditionally.
#[global_allocator]
static ALLOC: webstruct_bench::alloc::CountingAlloc = webstruct_bench::alloc::CountingAlloc;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_serve.json");
    let mut scale = 0.05f64;
    let mut requests = 2000u64;
    let mut clients = 4usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--requests" if i + 1 < args.len() => {
                requests = args[i + 1].parse().expect("--requests takes an integer");
                i += 2;
            }
            "--clients" if i + 1 < args.len() => {
                clients = args[i + 1].parse().expect("--clients takes an integer");
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "serve bench: scale={scale} requests={requests} clients={clients} -> {out_path}"
    );
    let report = run_serve_bench(scale, requests, clients, &[1, 2, 4]);
    for m in &report.measurements {
        eprintln!(
            "  {} worker(s): {:.0} req/s cached / {:.0} uncached ({:.2}x), \
             hit rate {:.1}%, p50 {:.2}ms p99 {:.2}ms mean {:.2}ms, \
             {} ok / {} rejected / {} errors",
            m.server_threads,
            m.rps,
            m.rps_uncached,
            if m.rps_uncached > 0.0 { m.rps / m.rps_uncached } else { 0.0 },
            100.0 * m.cache_hit_rate,
            m.p50_ms,
            m.p99_ms,
            m.mean_ms,
            m.ok,
            m.rejected,
            m.errors,
        );
    }
    eprintln!(
        "  headline: {:.0} req/s uncached, {:.0} cached (worst ratio {:.2}x), \
         {:.0} req/s through a hot-swap, p99 {:.2}ms, \
         {:.3} alloc(s)/request on hits, byte identical: {}, \
         cached == uncached bytes: {}",
        report.rps,
        report.rps_cached,
        report.min_cached_ratio,
        report.rps_swap,
        report.p99_latency_ms,
        report.allocs_per_request_cached,
        report.byte_identical,
        report.cached_digest_identical,
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
