//! Std-only durability benchmark: crash-point torture sweep, flaky-I/O
//! corruption trials, and the resume-after-kill cost measurement. Writes
//! `BENCH_durability.json` for `bench_gate.sh` to gate (resume cost
//! fraction < 0.5, zero sweep/corruption failures).
//!
//! ```text
//! cargo bench -p webstruct-bench --bench durability -- \
//!     --out artifacts/BENCH_durability.json --scale 0.1 --shard-mb 4 \
//!     --sweep-stride 3 --trials 10
//! ```

use webstruct_bench::durability::run_durability_bench;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_durability.json");
    let mut scale = 0.1f64;
    let mut shard_mb = 4u64;
    let mut sweep_stride = 3u64;
    let mut trials = 10usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--shard-mb" if i + 1 < args.len() => {
                shard_mb = args[i + 1].parse().expect("--shard-mb takes an integer");
                i += 2;
            }
            "--sweep-stride" if i + 1 < args.len() => {
                sweep_stride = args[i + 1].parse().expect("--sweep-stride takes an integer");
                i += 2;
            }
            "--trials" if i + 1 < args.len() => {
                trials = args[i + 1].parse().expect("--trials takes an integer");
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "durability bench: scale={scale} shard_mb={shard_mb} sweep_stride={sweep_stride} \
         trials={trials} -> {out_path}"
    );
    let report = run_durability_bench(scale, shard_mb.max(1) * 1024 * 1024, sweep_stride, trials);
    eprintln!(
        "  cold write {:.3}s ({} ops); resume after 70%-kill {:.3}s \
         ({:.0}% of cold, {} reused / {} re-rendered, manifest identical: {})",
        report.cold_write_secs,
        report.ops_per_cold_write,
        report.resume_secs,
        100.0 * report.resume_cost_fraction,
        report.resume_reused_shards,
        report.resume_rendered_shards,
        report.resume_manifest_identical,
    );
    eprintln!(
        "  crash sweep: {} points, {} failures; corruption trials: {}, {} failures",
        report.sweep_points,
        report.sweep_failures,
        report.corruption_trials,
        report.corruption_failures,
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_durability.json");
    eprintln!("wrote {out_path}");
}
