//! Std-only incremental-recomputation benchmark: populate a
//! content-addressed store, mutate a fraction of the corpus, and measure
//! the warm (dirty-slice) re-run against a cold run at the same mutated
//! state. Writes `BENCH_incremental.json` for `bench_gate.sh` to gate
//! (incremental cost fraction <= 0.05 after a 1% mutation; a warm/cold
//! digest mismatch fails in any mode).
//!
//! ```text
//! cargo bench -p webstruct-bench --bench incremental -- \
//!     --out artifacts/BENCH_incremental.json --scale 0.1 --shard-kb 4 \
//!     --fraction 0.01
//! ```

use webstruct_bench::incremental::run_incremental_bench;

fn main() {
    let mut out_path = String::from("artifacts/BENCH_incremental.json");
    let mut scale = 0.1f64;
    let mut shard_kb = 4u64;
    let mut fraction = 0.01f64;
    let mut threads = webstruct_util::par::num_threads();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--shard-kb" if i + 1 < args.len() => {
                shard_kb = args[i + 1].parse().expect("--shard-kb takes an integer");
                i += 2;
            }
            "--fraction" if i + 1 < args.len() => {
                fraction = args[i + 1].parse().expect("--fraction takes a float");
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = args[i + 1].parse().expect("--threads takes an integer");
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    eprintln!(
        "incremental bench: scale={scale} shard_kb={shard_kb} fraction={fraction} \
         threads={threads} -> {out_path}"
    );
    let report = run_incremental_bench(scale, shard_kb.max(1) * 1024, fraction, threads);
    eprintln!(
        "  {} shards, {} sites mutated -> {} stale; warm {:.3}s vs cold {:.3}s \
         ({:.1}% of cold), {} cache hits / {} misses, byte identical: {}",
        report.n_shards,
        report.sites_mutated,
        report.shards_stale,
        report.warm_secs,
        report.cold_secs,
        100.0 * report.incremental_cost_fraction,
        report.cache_hits,
        report.cache_misses,
        report.byte_identical,
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_incremental.json");
    eprintln!("wrote {out_path}");
}
