//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * site ordering: by-size vs. greedy set cover vs. random — the Figure 5
//!   question, measured as compute cost (the coverage outcome is in the
//!   figure itself);
//! * diameter algorithms: exact iFUB vs. the double-sweep lower bound vs.
//!   a naive all-pairs BFS on a subsample;
//! * hashing: Fx vs. SipHash on the mention-aggregation hot path;
//! * data source: oracle relations vs. full-text extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use webstruct_bench::bench_study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::page::{PageConfig, PageStream};
use webstruct_coverage::{greedy_cover, k_coverage};
use webstruct_extract::Extractor;
use webstruct_graph::{double_sweep, eccentricity, ifub_diameter, BipartiteGraph};
use webstruct_util::hash::FxHashMap;
use webstruct_util::ids::EntityId;
use webstruct_util::rng::{Seed, Xoshiro256};

fn fixture() -> (usize, Vec<Vec<EntityId>>) {
    let mut study = bench_study();
    let built = study.domain(Domain::Restaurants);
    let lists = built.occurrence_lists(Attribute::Phone, &study.config);
    (built.catalog.len(), lists)
}

fn bench_site_ordering(c: &mut Criterion) {
    let (n, lists) = fixture();
    let mut group = c.benchmark_group("ablation_site_ordering");
    group.sample_size(10);
    group.bench_function("by_size_kcov", |b| {
        b.iter(|| black_box(k_coverage(n, &lists, 1).unwrap()));
    });
    group.bench_function("greedy_set_cover", |b| {
        b.iter(|| black_box(greedy_cover(n, &lists).unwrap()));
    });
    group.bench_function("random_order_union", |b| {
        // Baseline: union coverage in a shuffled order (no sorting cost).
        b.iter(|| {
            let mut order: Vec<usize> = (0..lists.len()).collect();
            Xoshiro256::from_seed(Seed(7)).shuffle(&mut order);
            let mut covered = vec![false; n];
            let mut count = 0usize;
            for &s in &order {
                for e in &lists[s] {
                    if !covered[e.index()] {
                        covered[e.index()] = true;
                        count += 1;
                    }
                }
            }
            black_box(count)
        });
    });
    group.finish();
}

fn bench_diameter(c: &mut Criterion) {
    let (n, lists) = fixture();
    let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
    let mut group = c.benchmark_group("ablation_diameter");
    group.sample_size(10);
    group.bench_function("ifub_exact", |b| {
        b.iter(|| black_box(ifub_diameter(&graph, 100_000)));
    });
    group.bench_function("double_sweep_bound", |b| {
        let start = (0..graph.n_nodes() as u32)
            .max_by_key(|&v| graph.degree(v))
            .unwrap();
        b.iter(|| black_box(double_sweep(&graph, start)));
    });
    group.bench_function("sampled_eccentricities_64", |b| {
        // The "cluster of BFS" approach the paper used, subsampled.
        let mut rng = Xoshiro256::from_seed(Seed(11));
        let nodes: Vec<u32> = (0..64)
            .map(|_| rng.u64_below(graph.n_nodes() as u64) as u32)
            .collect();
        b.iter(|| {
            let mut max = 0;
            for &node in &nodes {
                max = max.max(eccentricity(&graph, node));
            }
            black_box(max)
        });
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    // The mention-aggregation hot path: count distinct entities per site.
    let (_, lists) = fixture();
    let pairs: Vec<(u32, u32)> = lists
        .iter()
        .enumerate()
        .flat_map(|(s, l)| l.iter().map(move |e| (s as u32, e.raw())))
        .collect();
    let mut group = c.benchmark_group("ablation_hashing");
    group.sample_size(10);
    group.bench_function("fx_hash_aggregation", |b| {
        b.iter(|| {
            let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
            for &p in &pairs {
                *map.entry(p).or_insert(0) += 1;
            }
            black_box(map.len())
        });
    });
    group.bench_function("sip_hash_aggregation", |b| {
        b.iter(|| {
            let mut map: HashMap<(u32, u32), u32> = HashMap::new();
            for &p in &pairs {
                *map.entry(p).or_insert(0) += 1;
            }
            black_box(map.len())
        });
    });
    group.finish();
}

fn bench_data_source(c: &mut Criterion) {
    let mut study = bench_study();
    let built = study.domain(Domain::Banks);
    let mut group = c.benchmark_group("ablation_data_source");
    group.sample_size(10);
    group.bench_function("oracle_occurrences", |b| {
        b.iter(|| black_box(built.web.occurrence_lists(Attribute::Phone)));
    });
    group.bench_function("full_text_extraction", |b| {
        b.iter(|| {
            let extractor = Extractor::new(&built.catalog);
            let pages = PageStream::new(
                &built.web,
                &built.catalog,
                PageConfig::default(),
                Seed(3),
            );
            black_box(extractor.extract_all(built.web.n_sites(), pages))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_site_ordering,
    bench_diameter,
    bench_hashing,
    bench_data_source
);
criterion_main!(benches);
