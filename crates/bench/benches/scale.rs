//! Scale-sweep benchmark: streamed (out-of-core) render+extract at a
//! ladder of corpus scales, one **child process per scale** so each
//! scale's peak RSS (`VmHWM`) is measured clean — the kernel's high-water
//! mark never resets, so sweeping in one process would report every
//! scale at the largest scale's footprint.
//!
//! ```text
//! cargo bench -p webstruct-bench --bench scale -- \
//!     --out artifacts/BENCH_scale.json --scales 0.02,0.1,0.5,1.0 \
//!     --threads 1,2 --repeats 2 --shard-mb 8
//! ```

use webstruct_bench::scale::{run_scale_child, ScaleMeasurement, ScaleReport, SCALE_SHARD_BYTES};

fn main() {
    let mut out_path = String::from("artifacts/BENCH_scale.json");
    let mut scales: Vec<f64> = vec![0.02, 0.1, 0.5, 1.0];
    let mut threads: Vec<usize> = vec![1, 2];
    let mut repeats = 2usize;
    let mut shard_bytes = SCALE_SHARD_BYTES;
    let mut child: Option<f64> = None;
    let mut child_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--scales" if i + 1 < args.len() => {
                scales = args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--scales takes e.g. 0.1,1.0"))
                    .collect();
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = args[i + 1]
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2"))
                    .collect();
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().expect("--repeats takes an integer");
                i += 2;
            }
            "--shard-mb" if i + 1 < args.len() => {
                let mb: u64 = args[i + 1].parse().expect("--shard-mb takes an integer");
                shard_bytes = mb * 1024 * 1024;
                i += 2;
            }
            "--child" if i + 1 < args.len() => {
                child = Some(args[i + 1].parse().expect("--child takes a scale"));
                i += 2;
            }
            "--child-out" if i + 1 < args.len() => {
                child_out = Some(args[i + 1].clone());
                i += 2;
            }
            // `cargo bench` forwards its own flags (e.g. --bench); skip them.
            _ => i += 1,
        }
    }

    if let Some(scale) = child {
        run_child(scale, &threads, repeats, shard_bytes, &child_out.expect("--child-out"));
        return;
    }

    eprintln!(
        "scale bench: scales={scales:?} threads={threads:?} repeats={repeats} \
         shard_bytes={shard_bytes} -> {out_path}"
    );
    let exe = std::env::current_exe().expect("current_exe");
    let tmp_root = std::env::temp_dir();
    let mut report = ScaleReport {
        shard_target_bytes: shard_bytes,
        repeats,
        measurements: Vec::new(),
    };
    let threads_arg = threads
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    for &scale in &scales {
        let kv_path = tmp_root.join(format!(
            "webstruct-scale-kv-{}-{}.txt",
            std::process::id(),
            report.measurements.len()
        ));
        let status = std::process::Command::new(&exe)
            // One malloc arena: glibc gives each worker thread its own
            // arena by default, so memory freed on the main thread (the
            // dropped Web, the previous thread-count's accumulator) is
            // invisible to worker-thread allocations and VmHWM measures
            // arena fragmentation instead of live data. The extract hot
            // path is allocation-free, so a single arena costs no
            // contention — it is the right production setting for the
            // streamed pipeline, and DESIGN.md §12 documents it.
            .env("MALLOC_ARENA_MAX", "1")
            .args([
                "--child",
                &scale.to_string(),
                "--threads",
                &threads_arg,
                "--repeats",
                &repeats.to_string(),
                "--shard-mb",
                &(shard_bytes / (1024 * 1024)).max(1).to_string(),
                "--child-out",
                kv_path.to_str().expect("utf-8 temp path"),
            ])
            .status()
            .expect("spawn scale child");
        assert!(status.success(), "scale {scale} child failed: {status}");
        let kv = std::fs::read_to_string(&kv_path).expect("read child measurement");
        let _ = std::fs::remove_file(&kv_path);
        let m = ScaleMeasurement::from_kv(&kv)
            .unwrap_or_else(|| panic!("scale {scale} child wrote malformed measurement:\n{kv}"));
        eprintln!(
            "  scale {:<5} {:>8} pages  {:>4} shards  write {:.2} MB/s  \
             t1 {:.0} pages/s  t2 {:.0} pages/s  peak RSS {:.1} MB",
            m.scale,
            m.pages,
            m.shards,
            m.write_mb_per_sec(),
            m.pages_per_sec(1).unwrap_or(0.0),
            m.pages_per_sec(2).unwrap_or(0.0),
            m.peak_rss_bytes as f64 / 1e6,
        );
        report.measurements.push(m);
    }

    if let Some(ratio) = report.rss_ratio(1.0, 0.1) {
        eprintln!("  peak-RSS ratio scale 1.0 / 0.1: {ratio:.2}x");
    }
    if let Some(min) = report.min_thread2_speedup() {
        eprintln!("  worst 2-thread speedup across scales: {min:.2}x");
    }
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, report.to_json()).expect("write BENCH_scale.json");
    eprintln!("wrote {out_path}");
}

/// Child mode: measure exactly one scale in this process and report over
/// the key/value file. The process exits afterwards, so its `VmHWM` is
/// this scale's footprint and nothing else's.
fn run_child(scale: f64, threads: &[usize], repeats: usize, shard_bytes: u64, out: &str) {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-scale-shards-{}",
        std::process::id()
    ));
    let m = run_scale_child(scale, threads, repeats, shard_bytes, &dir)
        .unwrap_or_else(|e| panic!("scale {scale} streamed run failed: {e}"));
    std::fs::write(out, m.to_kv()).expect("write child measurement");
}
