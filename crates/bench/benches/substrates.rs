//! Benchmarks for the extension substrates: discovery, fusion, dedup,
//! and the streaming-coverage accumulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use webstruct_bench::bench_study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::EntityCatalog;
use webstruct_coverage::StreamingCoverage;
use webstruct_crawl::{crawl, Fifo, LargestFirst, RandomOrder, SearchIndex};
use webstruct_dedup::{
    candidate_pairs, dedup_and_evaluate, generate_records, Blocking, MatchConfig, VariantModel,
};
use webstruct_fuse::{evaluate, ClaimSet, ErrorModel, IterativeTrust, MajorityVote};
use webstruct_util::ids::EntityId;
use webstruct_util::rng::Seed;

fn world() -> (EntityCatalog, Vec<Vec<EntityId>>) {
    let mut study = bench_study();
    let built = study.domain(Domain::Restaurants);
    let lists = built.occurrence_lists(Attribute::Phone, &study.config);
    (built.catalog.clone(), lists)
}

fn bench_discovery(c: &mut Criterion) {
    let (catalog, lists) = world();
    let index = SearchIndex::build(catalog.len(), &lists, None);
    let seeds = [EntityId::new(0)];
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    group.bench_function("index_build", |b| {
        b.iter(|| black_box(SearchIndex::build(catalog.len(), &lists, None)));
    });
    group.bench_function("crawl_largest_first", |b| {
        b.iter(|| black_box(crawl(&index, &lists, LargestFirst::default(), &seeds, 1_000)));
    });
    group.bench_function("crawl_fifo", |b| {
        b.iter(|| black_box(crawl(&index, &lists, Fifo::default(), &seeds, 1_000)));
    });
    group.bench_function("crawl_random", |b| {
        b.iter(|| {
            black_box(crawl(
                &index,
                &lists,
                RandomOrder::new(Seed(3)),
                &seeds,
                1_000,
            ))
        });
    });
    group.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let mut study = bench_study();
    let built = study.domain(Domain::Banks);
    let claims = ClaimSet::generate(
        &built.catalog,
        &built.web,
        &ErrorModel::default(),
        0.2,
        Seed(4),
    );
    let mut group = c.benchmark_group("fusion");
    group.throughput(Throughput::Elements(claims.n_claims() as u64));
    group.bench_function("majority_vote", |b| {
        b.iter(|| black_box(evaluate(&MajorityVote, &claims, 10)));
    });
    group.bench_function("iterative_trust", |b| {
        b.iter(|| black_box(evaluate(&IterativeTrust::default(), &claims, 10)));
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let (catalog, _) = world();
    let records = generate_records(&catalog, 3, &VariantModel::default(), Seed(5));
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("blocking_phone_or_name", |b| {
        b.iter(|| black_box(candidate_pairs(&records, Blocking::PhoneOrName)));
    });
    group.bench_function("full_dedup_pipeline", |b| {
        b.iter(|| {
            black_box(dedup_and_evaluate(
                &records,
                Blocking::PhoneOrName,
                &MatchConfig::default(),
            ))
        });
    });
    group.finish();
}

fn bench_streaming_coverage(c: &mut Criterion) {
    let (catalog, lists) = world();
    let mut group = c.benchmark_group("streaming_coverage");
    let total: usize = lists.iter().map(Vec::len).sum();
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("ingest_all_sites", |b| {
        b.iter(|| {
            let mut sc = StreamingCoverage::new(catalog.len(), 10);
            for l in &lists {
                sc.add_site(l);
            }
            black_box(sc.coverage(1))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_discovery,
    bench_fusion,
    bench_dedup,
    bench_streaming_coverage
);
criterion_main!(benches);
