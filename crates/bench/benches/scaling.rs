//! Scaling sweeps: how generation and the analyses grow with corpus size.
//! The k-coverage and component analyses are designed to be O(edges); this
//! bench makes that claim measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_coverage::k_coverage;
use webstruct_graph::{component_stats, BipartiteGraph};
use webstruct_util::rng::Seed;

const SCALES: [f64; 3] = [0.02, 0.05, 0.1];

fn world_at(scale: f64) -> (usize, Vec<Vec<webstruct_util::EntityId>>) {
    let n = ((20_000.0 * scale) as usize).max(64);
    let catalog = EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, n), Seed(1));
    let web = Web::generate(
        &catalog,
        &WebConfig::preset(Domain::Restaurants).scaled(scale),
        Seed(1),
    );
    (n, web.occurrence_lists(Attribute::Phone))
}

fn bench_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_generation");
    group.sample_size(10);
    for scale in SCALES {
        let n = ((20_000.0 * scale) as usize).max(64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            let catalog =
                EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, n), Seed(1));
            let cfg = WebConfig::preset(Domain::Restaurants).scaled(scale);
            b.iter(|| black_box(Web::generate(&catalog, &cfg, Seed(1))));
        });
    }
    group.finish();
}

fn bench_kcov_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_kcoverage");
    group.sample_size(10);
    for scale in SCALES {
        let (n, lists) = world_at(scale);
        let edges: usize = lists.iter().map(Vec::len).sum();
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, _| {
            b.iter(|| black_box(k_coverage(n, &lists, 10).unwrap()));
        });
    }
    group.finish();
}

fn bench_components_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_components");
    group.sample_size(10);
    for scale in SCALES {
        let (n, lists) = world_at(scale);
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        group.throughput(Throughput::Elements(graph.n_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, _| {
            b.iter(|| black_box(component_stats(&graph, &[])));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generation_scaling,
    bench_kcov_scaling,
    bench_components_scaling
);
criterion_main!(benches);
