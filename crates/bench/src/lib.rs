//! # webstruct-bench
//!
//! Shared fixtures for the Criterion benchmark harness. The benches live
//! in `benches/`:
//!
//! * `figures` — one benchmark per paper table/figure (the regeneration
//!   cost of each artifact at bench scale);
//! * `ablations` — design-choice ablations called out in DESIGN.md:
//!   site-ordering strategies, diameter algorithms, hashing on the
//!   mention-aggregation hot path, oracle vs. full-text extraction;
//! * `pipeline` — extraction throughput microbenchmarks (pages/second,
//!   scanner MB/s).

#![warn(missing_docs)]
#![warn(clippy::all)]

use webstruct_core::cache::Study;
use webstruct_core::study::StudyConfig;

/// The scale every benchmark runs at: small enough for stable Criterion
/// timings, large enough to exercise real data volumes.
pub const BENCH_SCALE: f64 = 0.05;

/// A fresh study session at bench scale.
#[must_use]
pub fn bench_study() -> Study {
    Study::new(StudyConfig::default().with_scale(BENCH_SCALE))
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_study_builds() {
        let mut s = super::bench_study();
        let d = s.domain(webstruct_corpus::domain::Domain::Banks);
        assert!(d.web.n_mentions() > 0);
    }
}
