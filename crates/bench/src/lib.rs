//! # webstruct-bench
//!
//! Std-only benchmark harness (the offline build environment cannot
//! resolve criterion). Two bench targets:
//!
//! * `benches/pipeline.rs` times the four pipeline stages — generate,
//!   render+extract, analyze (oracle figures), and the end-to-end
//!   Extracted-source study — at a sweep of worker-thread counts, and
//!   writes the measurements to `BENCH_pipeline.json`;
//! * `benches/faults.rs` times budgeted crawls under increasing
//!   fault-injection severity and writes crawl throughput (fetch
//!   attempts per second, including retry/backoff bookkeeping) to
//!   `BENCH_faults.json`;
//! * `benches/scale.rs` runs the out-of-core render+extract path at a
//!   ladder of corpus scales — one child process per scale so each peak
//!   RSS is clean — and writes `BENCH_scale.json` (see [`scale`]);
//! * `benches/durability.rs` runs the crash-point torture sweep and the
//!   resume-after-kill cost measurement and writes
//!   `BENCH_durability.json` (see [`durability`]);
//! * `benches/incremental.rs` measures the warm (dirty-slice) re-run
//!   after a small corpus mutation against a cold run at the same state
//!   and writes `BENCH_incremental.json` (see [`incremental`]);
//! * `benches/serve.rs` replays the simulated search/browse population
//!   over real loopback sockets against a sweep of server worker counts
//!   and writes `BENCH_serve.json` (see [`serve`]).
//!
//! Run them with:
//!
//! ```text
//! cargo bench -p webstruct-bench --bench pipeline -- --out artifacts/BENCH_pipeline.json
//! cargo bench -p webstruct-bench --bench faults -- --out artifacts/BENCH_faults.json
//! cargo bench -p webstruct-bench --bench scale -- --out artifacts/BENCH_scale.json
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alloc;
pub mod durability;
pub mod incremental;
pub mod scale;
pub mod serve;

use crate::alloc::count_allocs;
use std::time::Instant;
use webstruct_core::cache::Study;
use webstruct_core::runner::run_all;
use webstruct_core::study::{DataSource, StudyConfig};
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::page::{PageConfig, PageStream};
use webstruct_extract::{train_review_classifier, ExtractPool, ExtractedWeb, Extractor};
use webstruct_util::par;

/// The scale every benchmark runs at: small enough for stable timings,
/// large enough to exercise real data volumes.
pub const BENCH_SCALE: f64 = 0.05;

/// A fresh study session at bench scale.
#[must_use]
pub fn bench_study() -> Study {
    Study::new(StudyConfig::default().with_scale(BENCH_SCALE))
}

/// Throughput and heap-traffic statistics for a hot-path stage,
/// gathered from one instrumented (allocation-counted) run plus the
/// best-of timing of the same deterministic workload.
#[derive(Debug, Clone, Copy)]
pub struct HotPathStats {
    /// Pages processed by the stage.
    pub pages: u64,
    /// Bytes of page text that entered extraction.
    pub bytes: u64,
    /// Heap allocation calls during the instrumented run (0 unless the
    /// binary installed [`alloc::CountingAlloc`]).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Pages per best-of wall-clock second.
    pub pages_per_sec: f64,
    /// Megabytes of page text per best-of wall-clock second.
    pub mb_per_sec: f64,
    /// Allocation calls per page.
    pub allocs_per_page: f64,
    /// Allocated bytes per page.
    pub bytes_alloc_per_page: f64,
}

impl HotPathStats {
    /// Assemble the stats from a timed run (`secs`), the page/byte totals
    /// of the workload, and the allocation delta of one instrumented run.
    #[must_use]
    pub fn from_run(secs: f64, pages: u64, bytes: u64, delta: alloc::AllocSnapshot) -> Self {
        let per_sec = |x: f64| if secs > 0.0 { x / secs } else { 0.0 };
        let per_page = |x: u64| {
            if pages > 0 {
                x as f64 / pages as f64
            } else {
                0.0
            }
        };
        let stats = HotPathStats {
            pages,
            bytes,
            allocs: delta.calls,
            alloc_bytes: delta.bytes,
            pages_per_sec: per_sec(pages as f64),
            mb_per_sec: per_sec(bytes as f64 / 1e6),
            allocs_per_page: per_page(delta.calls),
            bytes_alloc_per_page: per_page(delta.bytes),
        };
        // Mirror the headline measurements into the obs registry as
        // gauges (latest wins), so a traced bench run carries its own
        // throughput/allocation numbers in RUN_REPORT.json. Gauges are
        // timing-derived, so they deliberately live outside the
        // determinism-checked counter space.
        let m = webstruct_util::obs::metrics();
        m.set_gauge("bench.pages_per_sec", stats.pages_per_sec);
        m.set_gauge("bench.allocs_per_page", stats.allocs_per_page);
        m.set_gauge("bench.bytes_alloc_per_page", stats.bytes_alloc_per_page);
        m.set_gauge(
            "bench.peak_rss_bytes",
            webstruct_util::obs::peak_rss_bytes() as f64,
        );
        stats
    }
}

/// One timed measurement: a named stage at a worker-thread count.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Stage name (`generate`, `render_extract`, `render_extract_owned`,
    /// `analyze_oracle`, `pipeline_extracted`, or a per-kernel `scan_*`
    /// stage).
    pub stage: String,
    /// Worker threads the stage was configured with.
    pub threads: usize,
    /// Best-of-`repeats` wall-clock seconds.
    pub secs: f64,
    /// Hot-path throughput/allocation stats (render+extract stages only).
    pub hot: Option<HotPathStats>,
    /// Scanner throughput for the `scan_*` kernel stages: megabytes of
    /// input handed to that one kernel per best-of second.
    pub scan_mb_per_sec: Option<f64>,
}

/// A full benchmark report, serialisable to JSON by hand (no serde in
/// the offline environment).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Corpus scale factor the stages ran at.
    pub scale: f64,
    /// Repeats per measurement (best time is kept).
    pub repeats: usize,
    /// `std::thread::available_parallelism()` on the machine that ran
    /// the bench — speedups are only physically possible up to this.
    pub hardware_threads: usize,
    /// All measurements, in execution order.
    pub measurements: Vec<Measurement>,
}

impl BenchReport {
    /// Best time recorded for `stage` at `threads`, if measured.
    #[must_use]
    pub fn secs_for(&self, stage: &str, threads: usize) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.stage == stage && m.threads == threads)
            .map(|m| m.secs)
    }

    /// Speedup of `stage` at `threads` relative to its 1-thread time.
    #[must_use]
    pub fn speedup(&self, stage: &str, threads: usize) -> Option<f64> {
        let base = self.secs_for(stage, 1)?;
        let t = self.secs_for(stage, threads)?;
        (t > 0.0).then(|| base / t)
    }

    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let speedup = self
                .speedup(&m.stage, m.threads)
                .map_or_else(|| "null".to_string(), |s| format!("{s:.3}"));
            let hot = m.hot.as_ref().map_or_else(String::new, |h| {
                format!(
                    ", \"pages\": {}, \"pages_per_sec\": {:.1}, \"mb_per_sec\": {:.3}, \
                     \"allocs\": {}, \"allocs_per_page\": {:.2}, \
                     \"bytes_alloc_per_page\": {:.1}",
                    h.pages,
                    h.pages_per_sec,
                    h.mb_per_sec,
                    h.allocs,
                    h.allocs_per_page,
                    h.bytes_alloc_per_page,
                )
            });
            let scan = m
                .scan_mb_per_sec
                .map_or_else(String::new, |s| format!(", \"scan_mb_per_sec\": {s:.3}"));
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \"speedup_vs_1\": {}{}{}}}{}\n",
                m.stage,
                m.threads,
                m.secs,
                speedup,
                hot,
                scan,
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

pub(crate) fn best_of<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// `std::thread::available_parallelism()`, defaulting to 1 where the
/// platform cannot say. Recorded in every bench report so gate baselines
/// are only compared against runs on comparable hardware.
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Time the pipeline stages at each thread count in `thread_counts`.
///
/// Stages:
/// * `generate` — catalog + web generation for the Restaurants domain
///   (inherently sequential; measured once per thread count as a
///   baseline anchor);
/// * `render_extract` — page rendering plus full extraction via
///   [`Extractor::extract_web`] at the given worker count;
/// * `analyze_oracle` — the full 33-figure oracle-source study
///   ([`run_all`]) with `WEBSTRUCT_THREADS` pinned to the worker count;
/// * `pipeline_extracted` — the end-to-end Extracted-source study
///   (render + extract + every figure), the acceptance-criterion
///   workload.
///
/// # Panics
/// Panics if classifier training fails (impossible by construction).
#[must_use]
pub fn run_pipeline_bench(scale: f64, thread_counts: &[usize], repeats: usize) -> BenchReport {
    let mut report = BenchReport {
        scale,
        repeats,
        hardware_threads: hardware_threads(),
        measurements: Vec::new(),
    };
    let config = StudyConfig::default().with_scale(scale);
    let study = webstruct_core::study::DomainStudy::generate(Domain::Restaurants, &config);
    let clf = train_review_classifier(config.seed.derive("nb"), 300)
        .expect("training set is balanced by construction");
    let extractor = Extractor::new(&study.catalog).with_review_classifier(clf);

    for &threads in thread_counts {
        let secs = best_of(repeats, || {
            let d = webstruct_core::study::DomainStudy::generate(Domain::Restaurants, &config);
            std::hint::black_box(d.web.n_sites());
        });
        report.measurements.push(Measurement {
            stage: "generate".into(),
            threads,
            secs,
            hot: None,
            scan_mb_per_sec: None,
        });

        // Warmup pass before enabling `CountingAlloc`: grows the pool's
        // shard scratches and accumulator sets to the workload, so the
        // instrumented run below measures true steady state at every
        // thread count instead of charging one-time per-shard setup to
        // the window.
        let mut pool = ExtractPool::new();
        let warm = extractor.extract_web_pooled(
            &study.web,
            &PageConfig::default(),
            config.seed.derive("render"),
            threads,
            &mut pool,
        );
        std::hint::black_box(warm.pages_processed);
        let secs = best_of(repeats, || {
            let extracted = extractor.extract_web_pooled(
                &study.web,
                &PageConfig::default(),
                config.seed.derive("render"),
                threads,
                &mut pool,
            );
            std::hint::black_box(extracted.total_occurrences(Attribute::Phone));
        });
        // One extra instrumented run of the identical deterministic
        // workload measures its heap traffic (zero delta unless the
        // binary installed the counting allocator).
        let ((pages, bytes), delta) = count_allocs(|| {
            let extracted = extractor.extract_web_pooled(
                &study.web,
                &PageConfig::default(),
                config.seed.derive("render"),
                threads,
                &mut pool,
            );
            (extracted.pages_processed, extracted.bytes_rendered)
        });
        report.measurements.push(Measurement {
            stage: "render_extract".into(),
            threads,
            secs,
            hot: Some(HotPathStats::from_run(secs, pages, bytes, delta)),
            scan_mb_per_sec: None,
        });

        if threads == 1 {
            // The pre-scratch baseline: owned `Page` values off the
            // iterator, a fresh extraction per page. Recording it next to
            // the fused stage keeps the before/after allocation numbers
            // in one artifact.
            let run_owned = || {
                let pages = PageStream::new(
                    &study.web,
                    &study.catalog,
                    PageConfig::default(),
                    config.seed.derive("render"),
                );
                let mut acc = ExtractedWeb::new(study.web.n_sites(), study.catalog.len());
                for page in pages {
                    let ex = extractor.extract_page(&page);
                    acc.bytes_rendered += page.text.len() as u64;
                    acc.ingest(page.site, &ex);
                }
                acc
            };
            let secs = best_of(repeats, || {
                std::hint::black_box(run_owned().pages_processed);
            });
            let (extracted, delta) = count_allocs(run_owned);
            report.measurements.push(Measurement {
                stage: "render_extract_owned".into(),
                threads: 1,
                secs,
                hot: Some(HotPathStats::from_run(
                    secs,
                    extracted.pages_processed,
                    extracted.bytes_rendered,
                    delta,
                )),
                scan_mb_per_sec: None,
            });

            // Per-kernel scanner throughput: each extraction kernel timed
            // alone over the same rendered corpus.
            report
                .measurements
                .extend(run_scan_kernel_bench(&study, &config, repeats));
        }

        std::env::set_var(par::THREADS_ENV, threads.to_string());
        let secs = best_of(repeats, || {
            let out = run_all(&config);
            std::hint::black_box(out.figures.len());
        });
        report.measurements.push(Measurement {
            stage: "analyze_oracle".into(),
            threads,
            secs,
            hot: None,
            scan_mb_per_sec: None,
        });

        let secs = best_of(repeats, || {
            let cfg = config.clone().with_source(DataSource::Extracted);
            let out = run_all(&cfg);
            std::hint::black_box(out.figures.len());
        });
        report.measurements.push(Measurement {
            stage: "pipeline_extracted".into(),
            threads,
            secs,
            hot: None,
            scan_mb_per_sec: None,
        });
        std::env::remove_var(par::THREADS_ENV);
    }
    report
}

/// Time each extraction kernel in isolation over the full rendered
/// corpus: pages (and their tag-stripped texts) are materialised outside
/// the timed windows, so each `scan_*` stage measures exactly one
/// scanner's throughput over its real input. The HTML-facing kernels
/// (`strip_tags`, `anchor_href`) are fed page HTML; the text-facing ones
/// (`phone`, `isbn`, `token`) the visible text, mirroring the pipeline.
fn run_scan_kernel_bench(
    study: &webstruct_core::study::DomainStudy,
    config: &StudyConfig,
    repeats: usize,
) -> Vec<Measurement> {
    use webstruct_corpus::page::Page;
    use webstruct_extract::{html, isbn_scan, phone_scan, tokenize};

    let pages: Vec<Page> = PageStream::new(
        &study.web,
        &study.catalog,
        PageConfig::default(),
        config.seed.derive("render"),
    )
    .collect();
    let html_bytes: u64 = pages.iter().map(|p| p.text.len() as u64).sum();
    let mut texts: Vec<String> = Vec::with_capacity(pages.len());
    let mut buf = String::new();
    for p in &pages {
        html::strip_tags_into(&p.text, &mut buf);
        texts.push(buf.clone());
    }
    let text_bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();

    let mut out = Vec::new();
    let mut push = |stage: &str, bytes: u64, secs: f64| {
        out.push(Measurement {
            stage: stage.into(),
            threads: 1,
            secs,
            hot: None,
            scan_mb_per_sec: (secs > 0.0).then(|| bytes as f64 / 1e6 / secs),
        });
    };

    let mut strip = String::new();
    let secs = best_of(repeats, || {
        let mut n = 0usize;
        for p in &pages {
            html::strip_tags_into(&p.text, &mut strip);
            n += strip.len();
        }
        std::hint::black_box(n);
    });
    push("scan_strip_tags", html_bytes, secs);

    let secs = best_of(repeats, || {
        let mut n = 0usize;
        for p in &pages {
            html::for_each_anchor_href(&p.text, |href, _| n += href.len());
        }
        std::hint::black_box(n);
    });
    push("scan_anchor_href", html_bytes, secs);

    let secs = best_of(repeats, || {
        let mut n = 0u64;
        for t in &texts {
            phone_scan::for_each_phone(t, |m| n += m.phone.digits());
        }
        std::hint::black_box(n);
    });
    push("scan_phone", text_bytes, secs);

    let secs = best_of(repeats, || {
        let mut n = 0u64;
        for t in &texts {
            isbn_scan::for_each_isbn(t, |m| n += u64::from(m.isbn.core()));
        }
        std::hint::black_box(n);
    });
    push("scan_isbn", text_bytes, secs);

    let mut token_buf = String::new();
    let secs = best_of(repeats, || {
        let mut n = 0usize;
        for t in &texts {
            tokenize::for_each_token(t, &mut token_buf, |tok| n += tok.len());
        }
        std::hint::black_box(n);
    });
    push("scan_token", text_bytes, secs);

    out
}

/// One timed crawl under a fault plan of the given severity.
#[derive(Debug, Clone)]
pub struct FaultMeasurement {
    /// Injected failure rate (0.0 = clean baseline).
    pub failure_rate: f64,
    /// Best-of-`repeats` wall-clock seconds for the budgeted crawl.
    pub secs: f64,
    /// Fetch attempts charged against the budget (includes retries).
    pub attempts: u64,
    /// Retries issued inside those attempts.
    pub retries: u64,
    /// Rounds that exhausted their retries and failed.
    pub failed_rounds: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Entities discovered by the end of the budget.
    pub entities_found: usize,
}

impl FaultMeasurement {
    /// Crawl throughput: fetch attempts per wall-clock second.
    #[must_use]
    pub fn attempts_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.attempts as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Report for the fault-injection bench, serialisable to JSON by hand.
#[derive(Debug, Clone)]
pub struct FaultBenchReport {
    /// Corpus scale factor the crawls ran at.
    pub scale: f64,
    /// Fetch budget each crawl ran with.
    pub fetch_budget: usize,
    /// Repeats per measurement (best time is kept).
    pub repeats: usize,
    /// One measurement per swept failure rate.
    pub measurements: Vec<FaultMeasurement>,
}

impl FaultBenchReport {
    /// Throughput at `failure_rate` relative to the clean (0.0) baseline.
    #[must_use]
    pub fn relative_throughput(&self, failure_rate: f64) -> Option<f64> {
        let base = self
            .measurements
            .iter()
            .find(|m| m.failure_rate == 0.0)?
            .attempts_per_sec();
        let at = self
            .measurements
            .iter()
            .find(|m| (m.failure_rate - failure_rate).abs() < 1e-9)?
            .attempts_per_sec();
        (base > 0.0).then(|| at / base)
    }

    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"fetch_budget\": {},\n", self.fetch_budget));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"failure_rate\": {}, \"secs\": {:.6}, \"attempts_per_sec\": {:.1}, \
                 \"attempts\": {}, \"retries\": {}, \"failed_rounds\": {}, \
                 \"breaker_opens\": {}, \"entities_found\": {}}}{}\n",
                m.failure_rate,
                m.secs,
                m.attempts_per_sec(),
                m.attempts,
                m.retries,
                m.failed_rounds,
                m.breaker_opens,
                m.entities_found,
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Time budgeted crawls at each failure rate in `rates`.
///
/// Every crawl uses the same Restaurants occurrence lists, seeds and
/// largest-first frontier; only the injected [`FaultConfig::flaky`]
/// severity varies, so the timing difference is exactly the cost of the
/// retry/backoff/breaker machinery plus the extra rounds faults force.
#[must_use]
pub fn run_fault_bench(
    scale: f64,
    fetch_budget: usize,
    rates: &[f64],
    repeats: usize,
) -> FaultBenchReport {
    use webstruct_crawl::{Crawler, LargestFirst, SearchIndex};
    use webstruct_util::fault::{BreakerConfig, FaultConfig, FaultPlan, RetryPolicy};
    use webstruct_util::ids::EntityId;
    use webstruct_util::rng::Xoshiro256;

    let config = StudyConfig::default().with_scale(scale);
    let study = Study::new(config.clone());
    let built = study.domain(Domain::Restaurants);
    let lists = built.occurrence_lists(webstruct_corpus::domain::Attribute::Phone, &config);
    let n_entities = built.catalog.len();
    let mut rng = Xoshiro256::from_seed(config.seed.derive("bench-fault-seeds"));
    let seeds: Vec<EntityId> = (0..3)
        .map(|_| EntityId::new(rng.u64_below(n_entities as u64) as u32))
        .collect();
    let plan_seed = config.seed.derive("bench-fault-plan");

    let mut report = FaultBenchReport {
        scale,
        fetch_budget,
        repeats,
        measurements: Vec::new(),
    };
    for (i, &rate) in rates.iter().enumerate() {
        let plan = FaultPlan::new(FaultConfig::flaky(rate), plan_seed.derive_u64(i as u64));
        let run = || {
            let index = SearchIndex::build(n_entities, &lists, None);
            Crawler::new(&index, &lists, LargestFirst::default(), &seeds).run_with_faults(
                fetch_budget,
                u64::MAX,
                &plan,
                RetryPolicy::default(),
                BreakerConfig::default(),
            )
        };
        let result = run();
        let secs = best_of(repeats, || {
            std::hint::black_box(run().entities_found);
        });
        report.measurements.push(FaultMeasurement {
            failure_rate: rate,
            secs,
            attempts: result.fetch.attempts as u64,
            retries: result.fetch.retries as u64,
            failed_rounds: result.fetch.failed_rounds as u64,
            breaker_opens: result.fetch.breaker_opens as u64,
            entities_found: result.entities_found,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_study_builds() {
        let s = super::bench_study();
        let d = s.domain(webstruct_corpus::domain::Domain::Banks);
        assert!(d.web.n_mentions() > 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = BenchReport {
            scale: 0.01,
            repeats: 1,
            hardware_threads: 4,
            measurements: vec![
                Measurement {
                    stage: "render_extract".into(),
                    threads: 1,
                    secs: 2.0,
                    hot: Some(HotPathStats {
                        pages: 1000,
                        bytes: 4_000_000,
                        allocs: 500,
                        alloc_bytes: 64_000,
                        pages_per_sec: 500.0,
                        mb_per_sec: 2.0,
                        allocs_per_page: 0.5,
                        bytes_alloc_per_page: 64.0,
                    }),
                    scan_mb_per_sec: None,
                },
                Measurement {
                    stage: "render_extract".into(),
                    threads: 4,
                    secs: 0.5,
                    hot: None,
                    scan_mb_per_sec: None,
                },
                Measurement {
                    stage: "scan_token".into(),
                    threads: 1,
                    secs: 0.25,
                    hot: None,
                    scan_mb_per_sec: Some(123.456),
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"hardware_threads\": 4"));
        assert!(json.contains("\"speedup_vs_1\": 4.000"));
        assert!(json.contains("\"pages_per_sec\": 500.0"));
        assert!(json.contains("\"mb_per_sec\": 2.000"));
        assert!(json.contains("\"allocs_per_page\": 0.50"));
        assert!(json.contains("\"bytes_alloc_per_page\": 64.0"));
        assert!(json.contains("\"scan_mb_per_sec\": 123.456"));
        assert_eq!(report.speedup("render_extract", 4), Some(4.0));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fault_report_json_is_well_formed() {
        let report = FaultBenchReport {
            scale: 0.01,
            fetch_budget: 100,
            repeats: 1,
            measurements: vec![
                FaultMeasurement {
                    failure_rate: 0.0,
                    secs: 1.0,
                    attempts: 100,
                    retries: 0,
                    failed_rounds: 0,
                    breaker_opens: 0,
                    entities_found: 50,
                },
                FaultMeasurement {
                    failure_rate: 0.3,
                    secs: 2.0,
                    attempts: 100,
                    retries: 20,
                    failed_rounds: 3,
                    breaker_opens: 1,
                    entities_found: 30,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"failure_rate\": 0.3"));
        assert!(json.contains("\"attempts_per_sec\": 100.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let rel = report.relative_throughput(0.3).unwrap();
        assert!((rel - 0.5).abs() < 1e-9, "rel {rel}");
    }

    #[test]
    fn fault_bench_runs_at_tiny_scale() {
        let report = run_fault_bench(0.01, 200, &[0.0, 0.3], 1);
        assert_eq!(report.measurements.len(), 2);
        let clean = &report.measurements[0];
        let faulty = &report.measurements[1];
        assert_eq!(clean.retries, 0, "clean run never retries");
        assert!(clean.attempts > 0);
        assert!(faulty.retries > 0, "30% run should retry");
        assert!(
            faulty.entities_found <= clean.entities_found,
            "faults cannot help discovery"
        );
    }
}
