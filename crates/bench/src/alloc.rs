//! A counting global allocator: wraps [`std::alloc::System`] and keeps
//! atomic totals of allocation calls and bytes requested. Installed as
//! the `#[global_allocator]` by the bench binaries and the
//! allocation-budget regression test; the counters make per-page heap
//! traffic on the hot path a measurable, regression-testable quantity.
//!
//! Counting is process-global and thread-safe (relaxed atomics — exact
//! totals, no ordering requirements). When the allocator is *not*
//! installed, [`AllocSnapshot::delta`] reports zeros; callers that need
//! real numbers must install it in their binary:
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: webstruct_bench::alloc::CountingAlloc = webstruct_bench::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Counting is off until a measured window opens: warmup passes (scratch
/// growth, pool setup, classifier training) run before [`count_allocs`]
/// enables the counters, so snapshots report steady state only.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// System allocator wrapper that counts allocation calls and bytes while
/// a [`count_allocs`] window is open. Deallocations are not tracked: the
/// hot-path metric of interest is how much new heap traffic each page
/// costs, not peak usage.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocation calls (alloc + alloc_zeroed + realloc) so far.
    pub calls: u64,
    /// Total bytes requested by those calls so far.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Read the current counter totals.
    #[must_use]
    pub fn now() -> Self {
        AllocSnapshot {
            calls: ALLOC_CALLS.load(Ordering::Relaxed),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counters accumulated since `earlier` (saturating, in case the
    /// snapshots are passed out of order).
    #[must_use]
    pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Measure the allocation traffic of one closure run: enable counting,
/// snapshot, run, snapshot, delta, restore. Counting is disabled outside
/// these windows, so warmup passes never leak one-time setup traffic into
/// a measurement. Only meaningful in binaries that installed
/// [`CountingAlloc`] as the global allocator.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let was_enabled = ENABLED.swap(true, Ordering::Relaxed);
    let before = AllocSnapshot::now();
    let out = f();
    let after = AllocSnapshot::now();
    ENABLED.store(was_enabled, Ordering::Relaxed);
    (out, after.delta(&before))
}
