//! Incremental recomputation bench: the warm/cold cost ratio behind
//! `BENCH_incremental.json`.
//!
//! The measurement cycle (repeated best-of-`REPS` like the durability
//! bench, since both sides of the ratio are short wall-clock intervals):
//!
//! 1. **Populate** a store at epoch 0 — everything renders and extracts,
//!    and every shard's extraction snapshot lands in the
//!    content-addressed cache (`ext-*.wse`).
//! 2. **Mutate** a fraction of the corpus's sites (seed-pure).
//! 3. **Warm run** on the populated store: only the dirty shard slice
//!    re-renders and re-extracts; clean shards replay from cache.
//! 4. **Cold oracle** at the *mutated* state in a wiped directory: the
//!    denominator of `incremental_cost_fraction`, and the byte-identity
//!    oracle — the warm run's output digest must equal the cold one's.
//!
//! The acceptance target is `incremental_cost_fraction <= 0.05` after a
//! 1% mutation (gated by `bench_gate.sh`; warn by default, hard in
//! strict mode). A digest mismatch is a determinism violation and fails
//! the gate in any mode.

use std::path::PathBuf;
use std::time::Instant;
use webstruct_core::epoch::Epoch;
use webstruct_core::study::StudyConfig;
use webstruct_corpus::domain::Domain;
use webstruct_util::rng::Seed;

/// Everything `BENCH_incremental.json` records.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Corpus scale of the measurement.
    pub scale: f64,
    /// Shard payload target in bytes (small, so the dirty slice is a
    /// small fraction of the shard count).
    pub shard_bytes: u64,
    /// Fraction of sites mutated between the populate and the warm run.
    pub mutation_fraction: f64,
    /// Worker threads used by every run.
    pub threads: usize,
    /// Shards in the store.
    pub n_shards: usize,
    /// Sites the mutation dirtied.
    pub sites_mutated: usize,
    /// Shards the warm run re-rendered (the dirty slice).
    pub shards_stale: usize,
    /// Clean shards whose extraction replayed from cache on the warm run.
    pub cache_hits: usize,
    /// Shards the warm run re-extracted.
    pub cache_misses: usize,
    /// Seconds for the cold run at the mutated state (best of reps).
    pub cold_secs: f64,
    /// Seconds for the warm run at the mutated state (best of reps).
    pub warm_secs: f64,
    /// `warm_secs / cold_secs` — the headline number, gated at 0.05.
    pub incremental_cost_fraction: f64,
    /// Whether every rep's warm output digest equalled its cold oracle's.
    pub byte_identical: bool,
    /// The (shared) output digest of the final rep, as hex.
    pub output_digest: String,
}

impl IncrementalReport {
    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"scale\": {},\n  \"shard_bytes\": {},\n  \
             \"mutation_fraction\": {},\n  \"threads\": {},\n  \
             \"n_shards\": {},\n  \"sites_mutated\": {},\n  \
             \"shards_stale\": {},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"cold_secs\": {:.6},\n  \
             \"warm_secs\": {:.6},\n  \"incremental_cost_fraction\": {:.6},\n  \
             \"byte_identical\": {},\n  \"output_digest\": \"{}\"\n}}\n",
            self.scale,
            self.shard_bytes,
            self.mutation_fraction,
            self.threads,
            self.n_shards,
            self.sites_mutated,
            self.shards_stale,
            self.cache_hits,
            self.cache_misses,
            self.cold_secs,
            self.warm_secs,
            self.incremental_cost_fraction,
            self.byte_identical,
            self.output_digest,
        )
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-bench-incremental-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the incremental bench: populate, mutate `fraction` of sites, and
/// measure the warm re-run against a cold run at the same mutated state.
///
/// # Panics
/// Panics if any epoch run fails — the bench runs on a clean temp
/// directory, so a failure is a pipeline bug, not an environment issue.
#[must_use]
pub fn run_incremental_bench(
    scale: f64,
    shard_bytes: u64,
    fraction: f64,
    threads: usize,
) -> IncrementalReport {
    let warm_dir = bench_dir("warm");
    let cold_dir = bench_dir("cold");
    const REPS: usize = 3;

    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut byte_identical = true;
    let mut last = None;
    for rep in 0..REPS {
        // A fresh Epoch each rep so the mutation applies to a pristine
        // revision state; the dirty set is seed-pure, so every rep
        // measures the identical workload.
        let mut epoch = Epoch::new(Domain::Restaurants, StudyConfig::default().with_scale(scale))
            .with_shard_bytes(shard_bytes);
        let _ = std::fs::remove_dir_all(&warm_dir);
        epoch
            .run(&warm_dir, threads)
            .expect("epoch-0 populate run");
        let mutated = epoch.mutate(fraction, Seed(11));

        let t0 = Instant::now();
        let warm = epoch.run(&warm_dir, threads).expect("warm run");
        warm_secs = warm_secs.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let cold = epoch.run_cold(&cold_dir, threads).expect("cold oracle");
        cold_secs = cold_secs.min(t1.elapsed().as_secs_f64());

        if warm.output_digest != cold.output_digest {
            eprintln!(
                "  DETERMINISM VIOLATION in rep {rep}: warm {} != cold {}",
                warm.digest_hex(),
                cold.digest_hex()
            );
            byte_identical = false;
        }
        last = Some((mutated, warm));
    }
    let (sites_mutated, warm) = last.expect("at least one rep");
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);

    IncrementalReport {
        scale,
        shard_bytes,
        mutation_fraction: fraction,
        threads,
        n_shards: warm.recovery.shards_total,
        sites_mutated,
        shards_stale: warm.recovery.shards_stale,
        cache_hits: warm.cache_hits,
        cache_misses: warm.cache_misses,
        cold_secs,
        warm_secs,
        incremental_cost_fraction: if cold_secs > 0.0 {
            warm_secs / cold_secs
        } else {
            0.0
        },
        byte_identical,
        output_digest: warm.digest_hex(),
    }
}
