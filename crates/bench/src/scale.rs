//! The scale sweep behind `BENCH_scale.json`: streamed render+extract
//! at a ladder of corpus scales, with per-scale peak RSS.
//!
//! Peak RSS (`VmHWM` in `/proc/self/status`) is a process-lifetime
//! high-water mark — it never goes back down — so one process cannot
//! measure two scales without the small run inheriting the big run's
//! peak. The bench binary (`benches/scale.rs`) therefore re-executes
//! itself once per scale: each child runs [`run_scale_child`] for
//! exactly one scale, reports its measurement over a key/value file, and
//! the parent assembles the [`ScaleReport`].

use std::path::Path;
use webstruct_corpus::domain::Domain;
use webstruct_corpus::page::PageConfig;
use webstruct_corpus::{ShardError, ShardStore};
use webstruct_extract::{train_review_classifier, Extractor};
use webstruct_util::obs;

use crate::best_of;

/// Default shard payload target for the sweep: small enough that even
/// scale 0.1 cuts several shards (so the streamed path actually streams
/// and the work-stealing scheduler has work to steal).
pub const SCALE_SHARD_BYTES: u64 = 8 * 1024 * 1024;

/// One child process's measurement of the streamed pipeline at a scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleMeasurement {
    /// Corpus scale factor.
    pub scale: f64,
    /// Pages extracted (identical across thread counts by construction).
    pub pages: u64,
    /// Bytes of page text extracted.
    pub bytes: u64,
    /// Shard files the corpus was cut into.
    pub shards: usize,
    /// Wall-clock seconds to render the corpus into shard files.
    pub write_secs: f64,
    /// `(threads, best-of seconds)` for the streamed extract stage.
    pub extract: Vec<(usize, f64)>,
    /// `VmHWM` of the child process after the run (0 off Linux).
    pub peak_rss_bytes: u64,
}

impl ScaleMeasurement {
    /// Shard-write throughput in MB of page text per second.
    #[must_use]
    pub fn write_mb_per_sec(&self) -> f64 {
        if self.write_secs > 0.0 {
            self.bytes as f64 / 1e6 / self.write_secs
        } else {
            0.0
        }
    }

    /// Best-of seconds for the streamed extract at `threads`.
    #[must_use]
    pub fn extract_secs(&self, threads: usize) -> Option<f64> {
        self.extract.iter().find(|(t, _)| *t == threads).map(|(_, s)| *s)
    }

    /// Streamed-extract throughput in pages per second at `threads`.
    #[must_use]
    pub fn pages_per_sec(&self, threads: usize) -> Option<f64> {
        let secs = self.extract_secs(threads)?;
        (secs > 0.0).then(|| self.pages as f64 / secs)
    }

    /// Streamed-extract throughput in MB per second at `threads`.
    #[must_use]
    pub fn mb_per_sec(&self, threads: usize) -> Option<f64> {
        let secs = self.extract_secs(threads)?;
        (secs > 0.0).then(|| self.bytes as f64 / 1e6 / secs)
    }

    /// Serialise as the key/value lines the child hands its parent.
    #[must_use]
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scale {}\n", self.scale));
        out.push_str(&format!("pages {}\n", self.pages));
        out.push_str(&format!("bytes {}\n", self.bytes));
        out.push_str(&format!("shards {}\n", self.shards));
        out.push_str(&format!("write_secs {}\n", self.write_secs));
        out.push_str(&format!("peak_rss_bytes {}\n", self.peak_rss_bytes));
        for (t, s) in &self.extract {
            out.push_str(&format!("extract {t} {s}\n"));
        }
        out
    }

    /// Parse the child's key/value lines; `None` on any malformed or
    /// missing field.
    #[must_use]
    pub fn from_kv(text: &str) -> Option<ScaleMeasurement> {
        let mut m = ScaleMeasurement {
            scale: f64::NAN,
            pages: 0,
            bytes: 0,
            shards: 0,
            write_secs: f64::NAN,
            extract: Vec::new(),
            peak_rss_bytes: u64::MAX,
        };
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let key = parts.next()?;
            match key {
                "scale" => m.scale = parts.next()?.parse().ok()?,
                "pages" => m.pages = parts.next()?.parse().ok()?,
                "bytes" => m.bytes = parts.next()?.parse().ok()?,
                "shards" => m.shards = parts.next()?.parse().ok()?,
                "write_secs" => m.write_secs = parts.next()?.parse().ok()?,
                "peak_rss_bytes" => m.peak_rss_bytes = parts.next()?.parse().ok()?,
                "extract" => {
                    let t = parts.next()?.parse().ok()?;
                    let s = parts.next()?.parse().ok()?;
                    m.extract.push((t, s));
                }
                _ => return None,
            }
        }
        (m.scale.is_finite() && m.write_secs.is_finite() && m.peak_rss_bytes != u64::MAX)
            .then_some(m)
    }
}

/// The assembled sweep, serialisable to JSON by hand.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Shard payload target every scale used.
    pub shard_target_bytes: u64,
    /// Repeats per extract timing (best kept).
    pub repeats: usize,
    /// One measurement per swept scale, ascending.
    pub measurements: Vec<ScaleMeasurement>,
}

impl ScaleReport {
    /// Measurement at `scale`, if swept.
    #[must_use]
    pub fn at(&self, scale: f64) -> Option<&ScaleMeasurement> {
        self.measurements.iter().find(|m| (m.scale - scale).abs() < 1e-9)
    }

    /// Peak-RSS ratio between two swept scales — the flat-memory
    /// acceptance number (`rss(hi) / rss(lo)`).
    #[must_use]
    pub fn rss_ratio(&self, hi: f64, lo: f64) -> Option<f64> {
        let hi = self.at(hi)?.peak_rss_bytes;
        let lo = self.at(lo)?.peak_rss_bytes;
        (lo > 0).then(|| hi as f64 / lo as f64)
    }

    /// Pages/s at `threads` relative to 1 thread for `scale` — the
    /// scheduler's non-regression number.
    #[must_use]
    pub fn thread_speedup(&self, scale: f64, threads: usize) -> Option<f64> {
        let m = self.at(scale)?;
        let base = m.pages_per_sec(1)?;
        let at = m.pages_per_sec(threads)?;
        (base > 0.0).then(|| at / base)
    }

    /// Worst 2-thread speedup across every swept scale.
    #[must_use]
    pub fn min_thread2_speedup(&self) -> Option<f64> {
        self.measurements
            .iter()
            .filter_map(|m| self.thread_speedup(m.scale, 2))
            .min_by(f64::total_cmp)
    }

    /// Render the report as a stable, hand-rolled JSON document. Per-scale
    /// numbers are flattened to one key per figure so line-oriented
    /// tooling (`scripts/bench_gate.sh`) can grep them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"));
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"shard_target_bytes\": {},\n",
            self.shard_target_bytes
        ));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scale\": {}, \"pages\": {}, \"bytes\": {}, \"shards\": {}, \
                 \"write_secs\": {:.6}, \"write_mb_per_sec\": {:.3}, \"peak_rss_bytes\": {}",
                m.scale,
                m.pages,
                m.bytes,
                m.shards,
                m.write_secs,
                m.write_mb_per_sec(),
                m.peak_rss_bytes,
            ));
            for &(t, s) in &m.extract {
                out.push_str(&format!(
                    ", \"extract_t{t}_secs\": {s:.6}, \"extract_t{t}_pages_per_sec\": {}, \
                     \"extract_t{t}_mb_per_sec\": {}",
                    fmt_opt(m.pages_per_sec(t)),
                    fmt_opt(m.mb_per_sec(t)),
                ));
            }
            out.push_str(&format!(
                ", \"thread2_speedup\": {}}}{}\n",
                fmt_opt(self.thread_speedup(m.scale, 2)),
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"min_thread2_speedup\": {},\n",
            fmt_opt(self.min_thread2_speedup())
        ));
        out.push_str(&format!(
            "  \"rss_ratio_full_vs_tenth\": {}\n}}\n",
            fmt_opt(self.rss_ratio(1.0, 0.1))
        ));
        out
    }
}

/// Run one scale of the sweep in the current process: render the
/// Restaurants corpus into shard files under `dir`, stream-extract the
/// store at each thread count, and read the process's peak RSS last so
/// it covers the whole workload. The shard files are removed before
/// returning.
///
/// # Errors
/// Propagates shard I/O and validation failures.
///
/// # Panics
/// Panics if classifier training fails (impossible by construction).
pub fn run_scale_child(
    scale: f64,
    thread_counts: &[usize],
    repeats: usize,
    shard_target_bytes: u64,
    dir: &Path,
) -> Result<ScaleMeasurement, ShardError> {
    // WEBSTRUCT_SCALE_PROBE=1 prints a per-phase RSS breakdown (high-water
    // mark + current) to stderr — the tool that attributes any future
    // peak-RSS regression to generate / shard write / extract without
    // recompiling. Costs nothing when unset.
    let probe = std::env::var("WEBSTRUCT_SCALE_PROBE").is_ok();
    let rss = |tag: &str| {
        if probe {
            let cur = std::fs::read_to_string("/proc/self/status")
                .ok()
                .and_then(|s| {
                    s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                        l.split_whitespace().nth(1).and_then(|v| v.parse::<u64>().ok())
                    })
                })
                .unwrap_or(0)
                * 1024;
            eprintln!(
                "probe[{scale}] {tag}: VmHWM {:.1} MB, VmRSS {:.1} MB",
                obs::peak_rss_bytes() as f64 / 1e6,
                cur as f64 / 1e6
            );
        }
    };
    let config = webstruct_core::study::StudyConfig::default().with_scale(scale);
    let study = webstruct_core::study::DomainStudy::generate(Domain::Restaurants, &config);
    let (catalog, web) = (study.catalog, study.web);
    rss("generate");
    let clf = train_review_classifier(config.seed.derive("nb"), 300)
        .expect("training set is balanced by construction");
    let extractor = Extractor::new(&catalog).with_review_classifier(clf);
    let page_config = PageConfig::default();
    let seed = config.seed.derive("render");

    let t = std::time::Instant::now();
    let store = ShardStore::write(dir, &web, &catalog, &page_config, seed, shard_target_bytes)?;
    let write_secs = t.elapsed().as_secs_f64();
    rss("shard write");

    let n_sites = web.n_sites();
    // The whole point of the shard store: once the corpus is on disk,
    // the generated web is dead weight. Dropping it before the extract
    // phase keeps the measured peak honest about what streaming needs.
    drop(web);
    rss("web dropped");
    let mut measurement = ScaleMeasurement {
        scale,
        pages: 0,
        bytes: 0,
        shards: store.len(),
        write_secs,
        extract: Vec::new(),
        peak_rss_bytes: 0,
    };
    for &threads in thread_counts {
        let mut err = None;
        let secs = best_of(repeats, || {
            match extractor.extract_store(&store, n_sites, threads) {
                Ok(extracted) => {
                    measurement.pages = extracted.pages_processed;
                    measurement.bytes = extracted.bytes_rendered;
                }
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        rss(&format!("extract t{threads}"));
        measurement.extract.push((threads, secs));
    }
    let _ = std::fs::remove_dir_all(dir);
    measurement.peak_rss_bytes = obs::peak_rss_bytes();
    Ok(measurement)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScaleMeasurement {
        ScaleMeasurement {
            scale: 0.1,
            pages: 1000,
            bytes: 5_000_000,
            shards: 3,
            write_secs: 0.5,
            extract: vec![(1, 2.0), (2, 1.0)],
            peak_rss_bytes: 100 << 20,
        }
    }

    #[test]
    fn kv_roundtrip_is_lossless() {
        let m = sample();
        assert_eq!(ScaleMeasurement::from_kv(&m.to_kv()), Some(m));
    }

    #[test]
    fn malformed_kv_is_rejected() {
        assert!(ScaleMeasurement::from_kv("scale 0.1\npages ??\n").is_none());
        assert!(ScaleMeasurement::from_kv("unknown 1\n").is_none());
        assert!(ScaleMeasurement::from_kv("scale 0.1\n").is_none(), "missing fields");
    }

    #[test]
    fn report_json_carries_ratios() {
        let mut big = sample();
        big.scale = 1.0;
        big.peak_rss_bytes = 250 << 20;
        big.extract = vec![(1, 20.0), (2, 11.0)];
        let report = ScaleReport {
            shard_target_bytes: SCALE_SHARD_BYTES,
            repeats: 2,
            measurements: vec![sample(), big],
        };
        let rss = report.rss_ratio(1.0, 0.1).unwrap();
        assert!((rss - 2.5).abs() < 1e-9, "rss ratio {rss}");
        let t2 = report.thread_speedup(0.1, 2).unwrap();
        assert!((t2 - 2.0).abs() < 1e-9, "t2 speedup {t2}");
        let min = report.min_thread2_speedup().unwrap();
        assert!((min - 20.0 / 11.0).abs() < 1e-9, "min {min}");
        let json = report.to_json();
        assert!(json.contains("\"rss_ratio_full_vs_tenth\": 2.500"));
        assert!(json.contains("\"min_thread2_speedup\": 1.818"));
        assert!(json.contains("\"extract_t2_pages_per_sec\": 1000.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn scale_child_runs_at_tiny_scale() {
        let dir = std::env::temp_dir().join(format!("webstruct-scale-test-{}", std::process::id()));
        let m = run_scale_child(0.01, &[1, 2], 1, 256 * 1024, &dir).unwrap();
        assert!(m.pages > 0);
        assert!(m.bytes > 0);
        assert!(m.shards >= 2, "256 KiB target should cut several shards");
        assert!(m.extract_secs(1).is_some() && m.extract_secs(2).is_some());
        assert!(!dir.exists(), "shard dir is cleaned up");
        if cfg!(target_os = "linux") {
            assert!(m.peak_rss_bytes > 0);
        }
    }
}
