//! Durability bench: the crash-point torture sweep and resume-after-kill
//! cost measurement behind `BENCH_durability.json`.
//!
//! Three measurements:
//!
//! 1. **Cold write** of a scale-`s` store (the baseline all recovery
//!    costs are compared against), counting the I/O ops it issues.
//! 2. **Resume after kill**: the same write killed at 70% of its ops and
//!    resumed; `resume_cost_fraction` = resume seconds / cold seconds.
//!    The acceptance gate is < 0.5 — resume must re-render only the
//!    missing tail, never the whole store — and the resumed manifest
//!    must be byte-identical to the cold one.
//! 3. **Torture sweeps** over a micro store: a stride of crash points
//!    across every write/rename/fsync site (open-or-resume must converge
//!    to the cold bytes at each), plus flaky-I/O trials with silent bit
//!    flips (scrub-then-repair must converge). `sweep_failures` and
//!    `corruption_failures` are gated at zero.

use std::path::{Path, PathBuf};
use std::time::Instant;
use webstruct_core::study::{DomainStudy, StudyConfig};
use webstruct_corpus::domain::Domain;
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::page::PageConfig;
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_corpus::{ShardStore, StoreManifest};
use webstruct_util::iofault::{FaultSession, IoFaultPlan};
use webstruct_util::rng::Seed;

/// Everything `BENCH_durability.json` records.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Corpus scale of the resume measurement.
    pub scale: f64,
    /// Shard payload target in bytes.
    pub shard_bytes: u64,
    /// I/O operations one cold write issues (the crash-sweep domain).
    pub ops_per_cold_write: u64,
    /// Seconds for the cold write.
    pub cold_write_secs: f64,
    /// Seconds to resume after the 70%-kill.
    pub resume_secs: f64,
    /// `resume_secs / cold_write_secs` — gated below 0.5.
    pub resume_cost_fraction: f64,
    /// Shards the resume kept without re-rendering.
    pub resume_reused_shards: usize,
    /// Shards the resume re-rendered.
    pub resume_rendered_shards: usize,
    /// Whether the resumed manifest matched the cold manifest exactly.
    pub resume_manifest_identical: bool,
    /// Crash points injected in the sweep.
    pub sweep_points: usize,
    /// Crash points that failed to converge to the cold store — gated at 0.
    pub sweep_failures: usize,
    /// Flaky-I/O trials (bit flips, torn/lost writes, ENOSPC).
    pub corruption_trials: usize,
    /// Flaky trials that failed to converge — gated at 0.
    pub corruption_failures: usize,
}

impl DurabilityReport {
    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"scale\": {},\n  \"shard_bytes\": {},\n  \"ops_per_cold_write\": {},\n  \
             \"cold_write_secs\": {:.6},\n  \"resume_secs\": {:.6},\n  \
             \"resume_cost_fraction\": {:.6},\n  \"resume_reused_shards\": {},\n  \
             \"resume_rendered_shards\": {},\n  \"resume_manifest_identical\": {},\n  \
             \"sweep_points\": {},\n  \"sweep_failures\": {},\n  \
             \"corruption_trials\": {},\n  \"corruption_failures\": {}\n}}\n",
            self.scale,
            self.shard_bytes,
            self.ops_per_cold_write,
            self.cold_write_secs,
            self.resume_secs,
            self.resume_cost_fraction,
            self.resume_reused_shards,
            self.resume_rendered_shards,
            self.resume_manifest_identical,
            self.sweep_points,
            self.sweep_failures,
            self.corruption_trials,
            self.corruption_failures,
        )
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-bench-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every top-level store file, name-sorted: the convergence oracle.
fn store_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry"))
        .filter(|e| e.path().is_file())
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read store file"),
            )
        })
        .collect();
    out.sort();
    out
}

/// The micro corpus the sweeps torture: small enough that hundreds of
/// crash-and-recover cycles stay cheap, large enough to cut several
/// shards.
fn micro_web() -> (EntityCatalog, Web) {
    let catalog =
        EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 120), Seed(21));
    let config = WebConfig::preset(Domain::Restaurants).scaled(0.004);
    let web = Web::generate(&catalog, &config, Seed(21));
    (catalog, web)
}

/// Run the full durability bench: resume cost at `scale`, then the
/// crash-point sweep (one point per `sweep_stride` ops) and
/// `corruption_trials` flaky-I/O trials on the micro store.
#[must_use]
pub fn run_durability_bench(
    scale: f64,
    shard_bytes: u64,
    sweep_stride: u64,
    corruption_trials: usize,
) -> DurabilityReport {
    let cfg = PageConfig::default();
    let seed = Seed(3);

    // --- resume-after-kill cost at the requested scale ---
    // Both sides of the ratio are best-of-3: the cold write and the
    // resume each take well under two seconds, so a single contended
    // scheduler slice can easily double one of them and push the
    // fraction over its gate. Minima are the standard noise filter for
    // a ratio of two short wall-clock measurements.
    let study = DomainStudy::generate(Domain::Restaurants, &StudyConfig::default().with_scale(scale));
    let cold_dir = bench_dir("cold");
    let kill_dir = bench_dir("killed");
    const REPS: usize = 3;
    let mut cold_write_secs = f64::INFINITY;
    let mut resume_secs = f64::INFINITY;
    let mut ops_per_cold_write = 0u64;
    let mut resume_report = None;
    let mut resume_manifest_identical = true;
    for _ in 0..REPS {
        let _ = std::fs::remove_dir_all(&cold_dir);
        let session = FaultSession::clean();
        let t0 = Instant::now();
        ShardStore::write_with_session(
            &cold_dir, &study.web, &study.catalog, &cfg, seed, shard_bytes, &session,
        )
        .expect("cold write");
        cold_write_secs = cold_write_secs.min(t0.elapsed().as_secs_f64());
        ops_per_cold_write = session.ops_issued();
        let cold_manifest =
            std::fs::read(StoreManifest::path_in(&cold_dir)).expect("cold manifest");

        // The manifest recommits after every rendered shard, so resume
        // pays only (a) rendering the missing tail, (b) a 64-byte header
        // read per surviving shard, and (c) at most one re-render for a
        // shard whose rename beat the kill but whose manifest commit did
        // not. Killing at 70% of the ops leaves a ~30% tail.
        let _ = std::fs::remove_dir_all(&kill_dir);
        let kill_at = ops_per_cold_write * 7 / 10;
        let killed = FaultSession::new(IoFaultPlan::crash_at(kill_at, Seed(1)));
        assert!(
            ShardStore::write_with_session(
                &kill_dir, &study.web, &study.catalog, &cfg, seed, shard_bytes, &killed,
            )
            .is_err(),
            "kill at op {kill_at} did not surface"
        );
        let t1 = Instant::now();
        let (_, report) = ShardStore::write_resumable(
            &kill_dir, &study.web, &study.catalog, &cfg, seed, shard_bytes,
        )
        .expect("resume after kill");
        resume_secs = resume_secs.min(t1.elapsed().as_secs_f64());
        resume_report = Some(report);
        resume_manifest_identical &= std::fs::read(StoreManifest::path_in(&kill_dir))
            .expect("resumed manifest")
            == cold_manifest;
    }
    let resume_report = resume_report.expect("at least one resume rep");
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);

    // --- crash-point sweep on the micro store ---
    let (catalog, web) = micro_web();
    let micro_target = 256 * 1024;
    let refdir = bench_dir("sweep-ref");
    let ref_session = FaultSession::clean();
    ShardStore::write_with_session(
        &refdir, &web, &catalog, &cfg, seed, micro_target, &ref_session,
    )
    .expect("micro reference write");
    let micro_ops = ref_session.ops_issued();
    let reference = store_files(&refdir);

    let sweep_dir = bench_dir("sweep");
    let mut sweep_points = 0usize;
    let mut sweep_failures = 0usize;
    let mut op = 0u64;
    while op < micro_ops {
        sweep_points += 1;
        let _ = std::fs::remove_dir_all(&sweep_dir);
        let s = FaultSession::new(IoFaultPlan::crash_at(op, Seed(1_000 + op)));
        let crashed = ShardStore::write_with_session(
            &sweep_dir, &web, &catalog, &cfg, seed, micro_target, &s,
        );
        let converged = crashed.is_err()
            && (ShardStore::open(&sweep_dir).is_ok()
                || ShardStore::write_resumable(&sweep_dir, &web, &catalog, &cfg, seed, micro_target)
                    .is_ok())
            && store_files(&sweep_dir) == reference;
        if !converged {
            eprintln!("  SWEEP FAILURE at op {op}/{micro_ops}");
            sweep_failures += 1;
        }
        op += sweep_stride.max(1);
    }

    // --- flaky-I/O (silent corruption) trials ---
    let mut corruption_failures = 0usize;
    for trial in 0..corruption_trials as u64 {
        let _ = std::fs::remove_dir_all(&sweep_dir);
        let s = FaultSession::new(IoFaultPlan::flaky(0.01, 0.5, Seed(7_000 + trial)));
        let wrote = ShardStore::write_with_session(
            &sweep_dir, &web, &catalog, &cfg, seed, micro_target, &s,
        );
        let clean = wrote.is_ok()
            && matches!(ShardStore::scrub_dir(&sweep_dir), Ok(r) if r.is_clean());
        let converged = (clean
            || ShardStore::repair(&sweep_dir, &web, &catalog, &cfg, seed, micro_target).is_ok())
            && store_files(&sweep_dir) == reference;
        if !converged {
            eprintln!("  CORRUPTION FAILURE in trial {trial}");
            corruption_failures += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&refdir);
    let _ = std::fs::remove_dir_all(&sweep_dir);

    DurabilityReport {
        scale,
        shard_bytes,
        ops_per_cold_write,
        cold_write_secs,
        resume_secs,
        resume_cost_fraction: if cold_write_secs > 0.0 {
            resume_secs / cold_write_secs
        } else {
            0.0
        },
        resume_reused_shards: resume_report.shards_reused,
        resume_rendered_shards: resume_report.shards_rendered,
        resume_manifest_identical,
        sweep_points,
        sweep_failures,
        corruption_trials,
        corruption_failures,
    }
}
