//! Serving-layer bench: replay the simulated search/browse population
//! over real sockets and record throughput, latency percentiles and the
//! response-cache speedup into `BENCH_serve.json`.
//!
//! One warm [`ServeState`] is built up front and shared by a sweep of
//! server worker counts; each sweep step replays the identical seed-pure
//! [`RequestPlan`] twice — once with the hot-path cache disabled (the
//! full-router baseline) and once with it enabled — and folds every
//! response into an order-independent digest. The numbers
//! `bench_gate.sh` reads:
//!
//! * `rps_t{n}` — uncached requests-per-second at `n` server workers,
//!   floor-gated per thread count against the baseline;
//! * `rps` / `rps_cached` — best uncached / cached rps across the sweep;
//! * `min_cached_ratio` — the *worst* cached-over-uncached speedup across
//!   the sweep (floor-gated: the cache must pay for itself at every
//!   worker count, not just the headline one);
//! * `p99_latency_ms` — 99th-percentile latency of the best uncached
//!   step (ceiling-gated);
//! * `allocs_per_request_cached` — steady-state allocator calls per
//!   request measured over a window of cache hits (ceiling-gated:
//!   a hit must not touch the heap);
//! * `rps_swap` — throughput of a cached replay with an epoch hot-swap
//!   triggered mid-stream (recorded, not gated — the interesting claim
//!   is that it completes with consistent accounting);
//! * `byte_identical` — whether every sweep step produced the same
//!   response digest with zero transport errors, per mode;
//! * `cached_digest_identical` — whether the cached and uncached replays
//!   produced the *same* digest at every worker count. A `false` in
//!   either digest field is a determinism violation and fails the gate
//!   in any mode.

use crate::alloc::count_allocs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webstruct_core::epoch::Epoch;
use webstruct_core::study::StudyConfig;
use webstruct_corpus::domain::Domain;
use webstruct_demand::model::{StudySite, TrafficConfig};
use webstruct_demand::traffic::RequestPlan;
use webstruct_serve::{
    fetch, replay, EpochManager, ReplayOptions, ReplayReport, ServeConfig, ServeEpoch, ServeState,
    Server, SharedServing,
};

/// Fraction of replayed events that send their cached validator
/// (`If-None-Match`) — enough conditional traffic to exercise the 304
/// path in both modes without dominating the stream.
const REVALIDATE_FRAC: f64 = 0.02;

/// Cache-hit requests measured inside the allocation-counting window.
const ALLOC_WINDOW: u64 = 256;

/// One sweep step: cached and uncached replays against servers at one
/// worker count.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Worker threads the servers ran with.
    pub server_threads: usize,
    /// Requests per second with the response cache enabled.
    pub rps: f64,
    /// Requests per second with the cache disabled (full router).
    pub rps_uncached: f64,
    /// Median latency of the cached replay, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency of the cached replay, milliseconds.
    pub p99_ms: f64,
    /// Mean latency of the cached replay, milliseconds.
    pub mean_ms: f64,
    /// p99 latency of the uncached replay, milliseconds.
    pub p99_uncached_ms: f64,
    /// 2xx/304 responses (cached replay).
    pub ok: u64,
    /// 4xx/5xx responses (cached replay).
    pub rejected: u64,
    /// Transport failures across both replays.
    pub errors: u64,
    /// Order-independent response digest of the cached replay (hex).
    pub digest: String,
    /// Order-independent response digest of the uncached replay (hex).
    pub digest_uncached: String,
    /// Cache hit rate of the cached replay: `hits / (hits + misses +
    /// revalidations)`, from the server's own counters.
    pub cache_hit_rate: f64,
}

/// Everything `BENCH_serve.json` records.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Corpus scale the serving state was built at.
    pub scale: f64,
    /// Requests per replay.
    pub requests: u64,
    /// Concurrent replay clients.
    pub clients: usize,
    /// Entities in the served catalog.
    pub entities: usize,
    /// Sites in the served corpus.
    pub sites: usize,
    /// `available_parallelism` of the machine the bench ran on — gate
    /// baselines are only comparable at matching worker counts, so the
    /// gate records this next to its verdicts.
    pub hardware_threads: usize,
    /// One measurement per swept server worker count.
    pub measurements: Vec<ServeMeasurement>,
    /// Best *uncached* requests-per-second across the sweep (the
    /// floor-gated headline, comparable across bench versions).
    pub rps: f64,
    /// Best *cached* requests-per-second across the sweep.
    pub rps_cached: f64,
    /// Cache hit rate of the best cached step.
    pub cache_hit_rate: f64,
    /// Worst cached/uncached rps ratio across the sweep (floor-gated).
    pub min_cached_ratio: f64,
    /// p99 latency of the best-uncached-rps step (ceiling-gated).
    pub p99_latency_ms: f64,
    /// Allocator calls per request over a steady-state window of cache
    /// hits on a keep-alive connection.
    pub allocs_per_request_cached: f64,
    /// Throughput of a cached replay with a hot-swap mid-stream.
    pub rps_swap: f64,
    /// Whether every step produced the same response digest with zero
    /// transport errors, within each mode (hard-gated).
    pub byte_identical: bool,
    /// Whether cached and uncached digests agreed at every worker count
    /// (hard-gated in any mode).
    pub cached_digest_identical: bool,
}

impl ServeBenchReport {
    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"entities\": {},\n", self.entities));
        out.push_str(&format!("  \"sites\": {},\n", self.sites));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"server_threads\": {}, \"rps\": {:.1}, \"rps_uncached\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
                 \"p99_uncached_ms\": {:.3}, \"ok\": {}, \"rejected\": {}, \"errors\": {}, \
                 \"cache_hit_rate\": {:.4}, \"digest\": \"{}\", \"digest_uncached\": \"{}\"}}{}\n",
                m.server_threads,
                m.rps,
                m.rps_uncached,
                m.p50_ms,
                m.p99_ms,
                m.mean_ms,
                m.p99_uncached_ms,
                m.ok,
                m.rejected,
                m.errors,
                m.cache_hit_rate,
                m.digest,
                m.digest_uncached,
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        // Flat per-thread uncached rps keys for the gate's grep-based
        // JSON reader (one line per swept worker count).
        for m in &self.measurements {
            out.push_str(&format!(
                "  \"rps_t{}\": {:.1},\n",
                m.server_threads, m.rps_uncached
            ));
        }
        out.push_str(&format!("  \"rps\": {:.1},\n", self.rps));
        out.push_str(&format!("  \"rps_cached\": {:.1},\n", self.rps_cached));
        out.push_str(&format!(
            "  \"cache_hit_rate\": {:.4},\n",
            self.cache_hit_rate
        ));
        out.push_str(&format!(
            "  \"min_cached_ratio\": {:.3},\n",
            self.min_cached_ratio
        ));
        out.push_str(&format!(
            "  \"p99_latency_ms\": {:.3},\n",
            self.p99_latency_ms
        ));
        out.push_str(&format!(
            "  \"allocs_per_request_cached\": {:.4},\n",
            self.allocs_per_request_cached
        ));
        out.push_str(&format!("  \"rps_swap\": {:.1},\n", self.rps_swap));
        out.push_str(&format!(
            "  \"byte_identical\": {},\n",
            self.byte_identical
        ));
        out.push_str(&format!(
            "  \"cached_digest_identical\": {}\n}}\n",
            self.cached_digest_identical
        ));
        out
    }
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webstruct-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Start a server over `state` at `threads` workers with the cache on or
/// off, replay `plan` (one warmup pass, one measured pass), shut down and
/// return the measured report plus the joined stats.
fn replay_once(
    state: &Arc<ServeState>,
    threads: usize,
    cache: bool,
    plan: &RequestPlan,
    opts: &ReplayOptions,
) -> (ReplayReport, webstruct_serve::ServeStats) {
    let server = Server::start(
        Arc::clone(state),
        &ServeConfig {
            threads,
            cache,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    // One warmup pass primes connection state, the page cache and (when
    // enabled) the entity slab; the measured pass replays the identical
    // plan against steady state.
    let _ = replay(addr, plan, opts);
    let report = replay(addr, plan, opts);
    fetch(addr, "POST", "/shutdown").expect("shutdown request");
    let stats = server.join();
    assert!(stats.is_consistent(), "serve stats inconsistent: {stats:?}");
    (report, stats)
}

/// Read exactly one HTTP response off `stream` into `scratch`, returning
/// its total wire length (head + body). Warmup-only: allocates freely.
fn read_one_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> usize {
    scratch.clear();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&scratch[..pos]).into_owned();
            let content_length: usize = head
                .split("\r\n")
                .find_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .expect("response carries Content-Length");
            let total = pos + 4 + content_length;
            while scratch.len() < total {
                let n = stream.read(&mut chunk).expect("read response body");
                assert!(n > 0, "connection closed mid-body");
                scratch.extend_from_slice(&chunk[..n]);
            }
            assert_eq!(scratch.len(), total, "over-read past one response");
            return total;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head");
        scratch.extend_from_slice(&chunk[..n]);
    }
}

/// Measure steady-state allocator calls per request over a window of
/// cache hits: a keep-alive connection cycles pre-rendered targets whose
/// exact response lengths were learned during warmup, so the client does
/// zero heap work inside the counted window and every allocation charged
/// to it is the server's.
///
/// Only meaningful in binaries that installed
/// [`CountingAlloc`](crate::alloc::CountingAlloc); elsewhere it reports
/// `0.0` (the counters stay flat).
fn measure_allocs_per_request(addr: SocketAddr) -> f64 {
    let targets = ["/sites", "/coverage", "/coverage.csv", "/entity/1", "/entity/7"];
    let requests: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| format!("GET {t} HTTP/1.1\r\n\r\n").into_bytes())
        .collect();
    let mut stream = TcpStream::connect(addr).expect("connect for alloc window");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    stream.set_nodelay(true).expect("set nodelay");
    // Warmup: learn every target's exact wire length (and fill the
    // entity-slab cells) so the measured loop reads fixed byte counts.
    let mut scratch: Vec<u8> = Vec::with_capacity(1 << 16);
    let mut lens = Vec::with_capacity(requests.len());
    for req in &requests {
        stream.write_all(req).expect("warmup write");
        lens.push(read_one_response(&mut stream, &mut scratch));
    }
    for req in &requests {
        stream.write_all(req).expect("warmup write");
        read_one_response(&mut stream, &mut scratch);
    }
    let mut buf = vec![0u8; lens.iter().copied().max().unwrap_or(0).max(4096)];
    let ((), delta) = count_allocs(|| {
        for i in 0..ALLOC_WINDOW as usize {
            let k = i % requests.len();
            stream.write_all(&requests[k]).expect("measured write");
            let mut got = 0;
            while got < lens[k] {
                let n = stream.read(&mut buf[got..lens[k]]).expect("measured read");
                assert!(n > 0, "connection closed in measured window");
                got += n;
            }
        }
    });
    #[allow(clippy::cast_precision_loss)]
    let per_request = delta.calls as f64 / ALLOC_WINDOW as f64;
    per_request
}

/// Run the serving bench: build state once, then for each worker count
/// in `thread_counts` replay `requests` requests with `clients`
/// concurrent connections against an uncached and a cached server;
/// finish with an allocation window over cache hits and a cached replay
/// with an epoch hot-swap triggered mid-stream.
///
/// # Panics
/// Panics if the state build, server bind or shutdown request fails —
/// the bench runs on a loopback socket and a clean temp directory, so a
/// failure is a serving-layer bug, not an environment issue.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_serve_bench(
    scale: f64,
    requests: u64,
    clients: usize,
    thread_counts: &[usize],
) -> ServeBenchReport {
    let dir = bench_dir();
    let config = StudyConfig::default().with_scale(scale);
    let seed = config.seed;
    let epoch = Epoch::new(Domain::Restaurants, config);
    let state = Arc::new(
        ServeState::from_epoch(&epoch, &dir, 2).expect("serve state builds on a clean temp dir"),
    );
    let plan = RequestPlan::new(
        &TrafficConfig::preset(StudySite::Amazon).scaled(scale),
        state.catalog.len(),
        seed,
    )
    .with_revalidate_frac(REVALIDATE_FRAC);
    let opts = ReplayOptions { clients, requests };

    let mut measurements = Vec::new();
    for &threads in thread_counts {
        let (uncached, _) = replay_once(&state, threads, false, &plan, &opts);
        let (cached, stats) = replay_once(&state, threads, true, &plan, &opts);
        let lookups = stats.cache_hits + stats.cache_misses + stats.cache_revalidations;
        #[allow(clippy::cast_precision_loss)]
        let cache_hit_rate = if lookups == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / lookups as f64
        };
        measurements.push(ServeMeasurement {
            server_threads: threads,
            rps: cached.rps,
            rps_uncached: uncached.rps,
            p50_ms: cached.p50_ms,
            p99_ms: cached.p99_ms,
            mean_ms: cached.mean_ms,
            p99_uncached_ms: uncached.p99_ms,
            ok: cached.ok,
            rejected: cached.rejected,
            errors: cached.errors + uncached.errors,
            digest: cached.digest,
            digest_uncached: uncached.digest,
            cache_hit_rate,
        });
    }

    // Steady-state allocation window over cache hits: a dedicated
    // single-worker cached server so nothing else touches the heap while
    // the window is open.
    let alloc_server = Server::start(
        Arc::clone(&state),
        &ServeConfig {
            threads: 1,
            max_requests_per_conn: 1_000_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind alloc-window server");
    let allocs_per_request_cached = measure_allocs_per_request(alloc_server.local_addr());
    fetch(alloc_server.local_addr(), "POST", "/shutdown").expect("shutdown request");
    let alloc_stats = alloc_server.join();
    assert!(alloc_stats.is_consistent(), "alloc-window stats inconsistent");

    // Hot-swap run: cached server with a live EpochManager; a trigger
    // thread fires POST /admin/epoch once the replay is underway, so the
    // measured stream straddles the publish.
    let swap_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let shared = Arc::new(SharedServing::new(ServeEpoch::new(Arc::clone(&state))));
    let manager = Arc::new(EpochManager::new(epoch, dir.clone(), swap_threads));
    let swap_server = Server::start_with(
        Arc::clone(&shared),
        Some(manager),
        &ServeConfig {
            threads: swap_threads,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind hot-swap server");
    let swap_addr = swap_server.local_addr();
    let trigger = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        fetch(swap_addr, "POST", "/admin/epoch?fraction_bp=100&seed=7").expect("trigger swap")
    });
    let t0 = Instant::now();
    let swap_report = replay(swap_addr, &plan, &opts);
    let trigger_resp = trigger.join().expect("trigger thread");
    assert!(
        trigger_resp.status == 200 || trigger_resp.status == 409,
        "unexpected swap-trigger status {}",
        trigger_resp.status
    );
    // Wait out any still-running rebuild so join() observes the final
    // swap count.
    while t0.elapsed() < Duration::from_secs(30) {
        let s = swap_server.stats();
        if s.cache_swaps > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    fetch(swap_addr, "POST", "/shutdown").expect("shutdown request");
    let swap_stats = swap_server.join();
    assert!(
        swap_stats.is_consistent(),
        "hot-swap stats inconsistent: {swap_stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let best_uncached = measurements
        .iter()
        .max_by(|a, b| a.rps_uncached.total_cmp(&b.rps_uncached))
        .expect("at least one sweep step");
    let best_cached = measurements
        .iter()
        .max_by(|a, b| a.rps.total_cmp(&b.rps))
        .expect("at least one sweep step");
    let byte_identical = measurements.iter().all(|m| {
        m.digest == measurements[0].digest
            && m.digest_uncached == measurements[0].digest_uncached
            && m.errors == 0
    });
    let cached_digest_identical = measurements.iter().all(|m| m.digest == m.digest_uncached);
    let min_cached_ratio = measurements
        .iter()
        .map(|m| {
            if m.rps_uncached > 0.0 {
                m.rps / m.rps_uncached
            } else {
                0.0
            }
        })
        .fold(f64::INFINITY, f64::min);
    ServeBenchReport {
        scale,
        requests,
        clients,
        entities: state.catalog.len(),
        sites: state.n_sites(),
        hardware_threads: crate::hardware_threads(),
        rps: best_uncached.rps_uncached,
        rps_cached: best_cached.rps,
        cache_hit_rate: best_cached.cache_hit_rate,
        min_cached_ratio,
        p99_latency_ms: best_uncached.p99_uncached_ms,
        allocs_per_request_cached,
        rps_swap: swap_report.rps,
        byte_identical,
        cached_digest_identical,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_runs_at_tiny_scale() {
        let report = run_serve_bench(0.01, 120, 2, &[1, 2]);
        assert_eq!(report.measurements.len(), 2);
        assert!(report.byte_identical, "{report:?}");
        assert!(report.cached_digest_identical, "{report:?}");
        assert!(report.rps > 0.0);
        assert!(report.rps_cached > 0.0);
        assert!(report.rps_swap > 0.0);
        assert!(report.min_cached_ratio > 0.0);
        assert!(
            report.cache_hit_rate > 0.5,
            "hot traffic should mostly hit: {report:?}"
        );
        let json = report.to_json();
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"cached_digest_identical\": true"));
        assert!(json.contains("\"server_threads\": 2"));
        assert!(json.contains("\"rps_t1\":"));
        assert!(json.contains("\"hardware_threads\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
