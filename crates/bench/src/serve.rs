//! Serving-layer bench: replay the simulated search/browse population
//! over real sockets and record throughput and latency percentiles into
//! `BENCH_serve.json`.
//!
//! One warm [`ServeState`] is built up front and shared by a sweep of
//! server worker counts; each sweep step replays the identical seed-pure
//! [`RequestPlan`] and folds every response into an order-independent
//! digest. The headline numbers `bench_gate.sh` reads:
//!
//! * `rps` — the best requests-per-second across the sweep (floor-gated);
//! * `p99_latency_ms` — the 99th-percentile latency of that best run
//!   (ceiling-gated);
//! * `byte_identical` — whether every sweep step produced the same
//!   response digest with zero transport errors. A `false` here is a
//!   determinism violation and fails the gate in any mode.

use std::path::PathBuf;
use std::sync::Arc;
use webstruct_core::study::StudyConfig;
use webstruct_corpus::domain::Domain;
use webstruct_demand::model::{StudySite, TrafficConfig};
use webstruct_demand::traffic::RequestPlan;
use webstruct_serve::{fetch, replay, ReplayOptions, ReplayReport, ServeConfig, ServeState, Server};

/// One sweep step: a full replay against a server at one worker count.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Worker threads the server ran with.
    pub server_threads: usize,
    /// Requests per second over the whole replay.
    pub rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx/5xx responses.
    pub rejected: u64,
    /// Transport failures.
    pub errors: u64,
    /// Order-independent response digest (hex).
    pub digest: String,
}

/// Everything `BENCH_serve.json` records.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Corpus scale the serving state was built at.
    pub scale: f64,
    /// Requests per sweep step.
    pub requests: u64,
    /// Concurrent replay clients.
    pub clients: usize,
    /// Entities in the served catalog.
    pub entities: usize,
    /// Sites in the served corpus.
    pub sites: usize,
    /// One measurement per swept server worker count.
    pub measurements: Vec<ServeMeasurement>,
    /// Best requests-per-second across the sweep (the headline, gated
    /// with a floor).
    pub rps: f64,
    /// p99 latency of the best-rps step (the headline, gated with a
    /// ceiling).
    pub p99_latency_ms: f64,
    /// Whether every step produced the same response digest with zero
    /// transport errors (hard-gated).
    pub byte_identical: bool,
}

impl ServeBenchReport {
    /// Render the report as a stable, hand-rolled JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"entities\": {},\n", self.entities));
        out.push_str(&format!("  \"sites\": {},\n", self.sites));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"server_threads\": {}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"ok\": {}, \"rejected\": {}, \
                 \"errors\": {}, \"digest\": \"{}\"}}{}\n",
                m.server_threads,
                m.rps,
                m.p50_ms,
                m.p99_ms,
                m.mean_ms,
                m.ok,
                m.rejected,
                m.errors,
                m.digest,
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"rps\": {:.1},\n", self.rps));
        out.push_str(&format!(
            "  \"p99_latency_ms\": {:.3},\n",
            self.p99_latency_ms
        ));
        out.push_str(&format!("  \"byte_identical\": {}\n}}\n", self.byte_identical));
        out
    }
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webstruct-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the serving bench: build state once, then replay `requests`
/// requests with `clients` concurrent connections against a server at
/// each worker count in `thread_counts`.
///
/// # Panics
/// Panics if the state build, server bind or shutdown request fails —
/// the bench runs on a loopback socket and a clean temp directory, so a
/// failure is a serving-layer bug, not an environment issue.
#[must_use]
pub fn run_serve_bench(
    scale: f64,
    requests: u64,
    clients: usize,
    thread_counts: &[usize],
) -> ServeBenchReport {
    let dir = bench_dir();
    let config = StudyConfig::default().with_scale(scale);
    let state = Arc::new(
        ServeState::build(Domain::Restaurants, config.clone(), &dir, 2)
            .expect("serve state builds on a clean temp dir"),
    );
    let plan = RequestPlan::new(
        &TrafficConfig::preset(StudySite::Amazon).scaled(scale),
        state.catalog.len(),
        config.seed,
    );
    let opts = ReplayOptions { clients, requests };

    let mut measurements = Vec::new();
    for &threads in thread_counts {
        let server = Server::start(
            Arc::clone(&state),
            &ServeConfig {
                threads,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        // One warmup pass primes connection state and the page cache;
        // the measured pass replays the identical plan.
        let _ = replay(addr, &plan, &opts);
        let report: ReplayReport = replay(addr, &plan, &opts);
        fetch(addr, "POST", "/shutdown").expect("shutdown request");
        let stats = server.join();
        assert!(stats.is_consistent(), "serve stats inconsistent: {stats:?}");
        measurements.push(ServeMeasurement {
            server_threads: threads,
            rps: report.rps,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
            mean_ms: report.mean_ms,
            ok: report.ok,
            rejected: report.rejected,
            errors: report.errors,
            digest: report.digest,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let best = measurements
        .iter()
        .max_by(|a, b| a.rps.total_cmp(&b.rps))
        .expect("at least one sweep step");
    let byte_identical = measurements
        .iter()
        .all(|m| m.digest == measurements[0].digest && m.errors == 0);
    ServeBenchReport {
        scale,
        requests,
        clients,
        entities: state.catalog.len(),
        sites: state.n_sites(),
        rps: best.rps,
        p99_latency_ms: best.p99_ms,
        byte_identical,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_runs_at_tiny_scale() {
        let report = run_serve_bench(0.01, 120, 2, &[1, 2]);
        assert_eq!(report.measurements.len(), 2);
        assert!(report.byte_identical, "{report:?}");
        assert!(report.rps > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"server_threads\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
