//! Allocation-regression guard for the render→extract hot path.
//!
//! This binary installs [`CountingAlloc`] as its global allocator and
//! runs the fused single-threaded pipeline over a small Restaurants
//! corpus, asserting its steady-state heap traffic stays under a
//! documented per-page budget. A change that reintroduces per-page
//! allocations (a `format!` in the render loop, an owned `String` token,
//! a cloned `Page` in the truncation path) fails this test rather than
//! silently eroding throughput.
//!
//! The file contains exactly one `#[test]` on purpose: parallel tests in
//! the same binary would pollute the process-global counters.

use webstruct_bench::alloc::{count_allocs, CountingAlloc};
use webstruct_corpus::domain::Domain;
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::page::{PageConfig, PageStream};
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_extract::{train_review_classifier, ExtractPool, ExtractedWeb, Extractor};
use webstruct_util::rng::Seed;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The per-page allocation budget for the fused hot path.
///
/// Measured at scale 0.01 the fused path runs at ~0.3 allocations/page
/// (residual traffic: entity-set growth in the per-site accumulators and
/// occasional buffer regrowth when a page exceeds every previous one).
/// The pre-refactor owned path ran at ~16 allocations/page. The ceiling
/// sits at 2.0 — comfortably above measurement noise, an order of
/// magnitude below the old behaviour, so any reintroduced per-page
/// allocation (which costs at least +1.0) trips the guard.
const ALLOCS_PER_PAGE_BUDGET: f64 = 2.0;

/// The pooled path's budget: with every accumulator and scratch reused
/// across runs (see [`ExtractPool`]), steady state should be within a
/// fraction of an allocation per page at any thread count.
const POOLED_ALLOCS_PER_PAGE_BUDGET: f64 = 0.5;

#[test]
fn fused_hot_path_stays_within_alloc_budget() {
    let catalog = EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 400), Seed(71));
    let web = Web::generate(
        &catalog,
        &WebConfig::preset(Domain::Restaurants).scaled(0.02),
        Seed(71),
    );
    let clf = train_review_classifier(Seed(72), 200).expect("balanced training set");
    let extractor = Extractor::new(&catalog).with_review_classifier(clf);
    let config = PageConfig::default();

    // Warm-up run: lets every scratch buffer grow to the largest page and
    // the accumulator sets reach their steady capacity, so the measured
    // run reflects steady state rather than cold-start growth.
    let warm = extractor.extract_web(&web, &config, Seed(73), 1);
    assert!(warm.pages_processed > 500, "fixture too small to be meaningful");

    let (extracted, fused) = count_allocs(|| extractor.extract_web(&web, &config, Seed(73), 1));
    let pages = extracted.pages_processed;
    let fused_per_page = fused.calls as f64 / pages as f64;
    assert!(
        fused_per_page <= ALLOCS_PER_PAGE_BUDGET,
        "fused hot path allocates {fused_per_page:.2}/page over {pages} pages \
         (budget {ALLOCS_PER_PAGE_BUDGET}); a per-page allocation crept back in"
    );

    // The tentpole's acceptance bar: >= 2x fewer allocations per page
    // than the owned-Page baseline (in practice the gap is ~50x).
    let (owned_extracted, owned) = count_allocs(|| {
        let pages = PageStream::new(&web, &catalog, config.clone(), Seed(73));
        let mut acc = ExtractedWeb::new(web.n_sites(), catalog.len());
        for page in pages {
            let ex = extractor.extract_page(&page);
            acc.bytes_rendered += page.text.len() as u64;
            acc.ingest(page.site, &ex);
        }
        acc
    });
    assert_eq!(owned_extracted.pages_processed, pages);
    let owned_per_page = owned.calls as f64 / pages as f64;
    assert!(
        fused_per_page * 2.0 <= owned_per_page,
        "fused path ({fused_per_page:.2}/page) is not >=2x below owned ({owned_per_page:.2}/page)"
    );

    // The pooled path: after one warmup call the per-run state (shard
    // scratches, accumulators, sharding vectors) is fully reused, so the
    // counted window holds true steady state — at 1 worker and at a
    // parallel worker count alike.
    for threads in [1usize, 4] {
        let mut pool = ExtractPool::new();
        let warm = extractor.extract_web_pooled(&web, &config, Seed(73), threads, &mut pool);
        assert_eq!(warm.pages_processed, pages, "pooled warmup diverged");
        let (pooled_pages, pooled) = count_allocs(|| {
            extractor
                .extract_web_pooled(&web, &config, Seed(73), threads, &mut pool)
                .pages_processed
        });
        assert_eq!(pooled_pages, pages, "pooled rerun diverged");
        let pooled_per_page = pooled.calls as f64 / pages as f64;
        assert!(
            pooled_per_page <= POOLED_ALLOCS_PER_PAGE_BUDGET,
            "pooled steady state allocates {pooled_per_page:.3}/page at {threads} threads \
             (budget {POOLED_ALLOCS_PER_PAGE_BUDGET}); per-run setup is leaking into the window"
        );
    }
}
