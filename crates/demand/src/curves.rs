//! The aggregate demand curves of Figure 6: cumulative demand vs.
//! normalized inventory (CDF) and demand share vs. rank (PDF, log-log).

use crate::model::TrafficStudy;
use webstruct_util::report::{Figure, Series};
use webstruct_util::stats::cumulative_share_curve;

/// Which traffic channel to plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Search-log demand (raw demand).
    Search,
    /// Browse-log demand (on-site traffic).
    Browse,
}

impl Channel {
    /// Label used in figure ids/titles.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Channel::Search => "search",
            Channel::Browse => "browse",
        }
    }
}

fn demand_of(study: &TrafficStudy, channel: Channel) -> &[u32] {
    match channel {
        Channel::Search => &study.demand_search,
        Channel::Browse => &study.demand_browse,
    }
}

/// Demand values sorted descending (the rank axis of both plots).
#[must_use]
pub fn demand_sorted_desc(study: &TrafficStudy, channel: Channel) -> Vec<f64> {
    let mut v: Vec<f64> = demand_of(study, channel)
        .iter()
        .map(|&d| f64::from(d))
        .collect();
    v.sort_by(|a, b| b.partial_cmp(a).expect("demand is finite"));
    v
}

/// One site's CDF series: cumulative demand fraction vs. inventory
/// fraction (Figure 6(a)/(c)).
#[must_use]
pub fn cdf_series(study: &TrafficStudy, channel: Channel, points: usize) -> Series {
    let sorted = demand_sorted_desc(study, channel);
    Series::new(study.site.slug(), cumulative_share_curve(&sorted, points))
}

/// One site's PDF series: per-rank share of total demand, on log-log axes
/// (Figure 6(b)/(d)). Zero-demand ranks are omitted (they cannot render on
/// a log axis).
#[must_use]
pub fn pdf_series(study: &TrafficStudy, channel: Channel) -> Series {
    let sorted = demand_sorted_desc(study, channel);
    let total: f64 = sorted.iter().sum();
    let points = sorted
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d > 0.0 && total > 0.0)
        .map(|(rank, &d)| ((rank + 1) as f64, d / total))
        .collect();
    Series::new(study.site.slug(), points)
}

/// Figure 6(a)/(c): CDFs of all studies on one channel.
#[must_use]
pub fn cdf_figure(studies: &[&TrafficStudy], channel: Channel) -> Figure {
    let mut fig = Figure::new(
        format!("fig6-cdf-{}", channel.slug()),
        format!("cdf for {} data", channel.slug()),
    )
    .with_axes("normalized inventory", "cumulative demand");
    for study in studies {
        fig.push(cdf_series(study, channel, 101));
    }
    fig
}

/// Figure 6(b)/(d): per-rank demand share, log-log.
#[must_use]
pub fn pdf_figure(studies: &[&TrafficStudy], channel: Channel) -> Figure {
    let mut fig = Figure::new(
        format!("fig6-pdf-{}", channel.slug()),
        format!("pdf for {} data", channel.slug()),
    )
    .with_axes("rank", "percentage of demand")
    .with_log_x()
    .with_log_y();
    for study in studies {
        fig.push(pdf_series(study, channel));
    }
    fig
}

/// Demand share captured by the top `frac` of the inventory — the paper's
/// headline comparison ("top 20% of movie titles account for more than 90%
/// of the overall demand on IMDb, top 20% of business entities account for
/// only 60% on Yelp").
#[must_use]
pub fn top_share(study: &TrafficStudy, channel: Channel, frac: f64) -> f64 {
    let sorted = demand_sorted_desc(study, channel);
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let k = ((sorted.len() as f64 * frac).round() as usize).min(sorted.len());
    sorted[..k].iter().sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StudySite, TrafficConfig};
    use webstruct_util::rng::Seed;

    fn study(site: StudySite) -> TrafficStudy {
        TrafficStudy::simulate(&TrafficConfig::preset(site).scaled(0.05), Seed(8))
    }

    #[test]
    fn cdf_series_endpoints() {
        let s = study(StudySite::Yelp);
        let series = cdf_series(&s, Channel::Search, 51);
        assert_eq!(series.points.first().unwrap(), &(0.0, 0.0));
        let last = series.points.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12);
        assert!((last.1 - 1.0).abs() < 1e-9);
        // Monotone.
        assert!(series.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12));
    }

    #[test]
    fn pdf_series_is_normalized_and_decreasing() {
        let s = study(StudySite::Amazon);
        let series = pdf_series(&s, Channel::Browse);
        let sum: f64 = series.points.iter().map(|&(_, y)| y).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Ranks sorted descending by demand → shares non-increasing.
        assert!(series
            .points
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 + 1e-12));
    }

    #[test]
    fn imdb_top20_beats_yelp_top20() {
        let imdb = study(StudySite::Imdb);
        let yelp = study(StudySite::Yelp);
        let si = top_share(&imdb, Channel::Search, 0.2);
        let sy = top_share(&yelp, Channel::Search, 0.2);
        assert!(si > 0.8, "imdb top-20% share {si}");
        assert!(sy < si, "yelp {sy} must be flatter than imdb {si}");
        assert!(sy > 0.2, "even yelp is head-skewed");
    }

    #[test]
    fn figures_have_one_series_per_site() {
        let studies = [
            study(StudySite::Imdb),
            study(StudySite::Amazon),
            study(StudySite::Yelp),
        ];
        let refs: Vec<&TrafficStudy> = studies.iter().collect();
        let cdf = cdf_figure(&refs, Channel::Search);
        assert_eq!(cdf.series.len(), 3);
        assert!(cdf.series_named("imdb").is_some());
        let pdf = pdf_figure(&refs, Channel::Browse);
        assert_eq!(pdf.series.len(), 3);
        assert!(pdf.log_x && pdf.log_y);
    }

    #[test]
    fn top_share_edge_cases() {
        let s = study(StudySite::Yelp);
        assert_eq!(top_share(&s, Channel::Search, 0.0), 0.0);
        assert!((top_share(&s, Channel::Search, 1.0) - 1.0).abs() < 1e-9);
    }
}
