//! Demand-distribution estimation: recover the concentration parameters
//! from simulated logs, closing the loop on the generative claims
//! ("IMDb demand is the sharpest") with measured statistics rather than
//! configuration values.

use crate::curves::{demand_sorted_desc, Channel};
use crate::model::TrafficStudy;
use webstruct_util::powerlaw::hill_estimator;
use webstruct_util::stats::gini;

/// Measured concentration statistics of one channel's demand.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandEstimate {
    /// Gini coefficient of per-entity demand.
    pub gini: f64,
    /// Hill estimate of the demand tail exponent (survival exponent of
    /// the demand-size distribution), when estimable.
    pub tail_exponent: Option<f64>,
    /// Fraction of entities with zero recorded demand.
    pub zero_fraction: f64,
    /// Demand share of the top 1% of entities.
    pub top1_share: f64,
}

/// Estimate concentration statistics for one channel.
#[must_use]
pub fn estimate_demand(study: &TrafficStudy, channel: Channel) -> DemandEstimate {
    let sorted = demand_sorted_desc(study, channel);
    let n = sorted.len();
    let total: f64 = sorted.iter().sum();
    let zeros = sorted.iter().filter(|&&d| d == 0.0).count();
    let k = (n / 20).clamp(1, n.saturating_sub(1).max(1));
    let top1 = ((n as f64 * 0.01).ceil() as usize).clamp(1, n);
    DemandEstimate {
        gini: gini(&sorted),
        tail_exponent: if n < 3 {
            None
        } else {
            hill_estimator(&sorted, k)
        },
        zero_fraction: if n == 0 { 0.0 } else { zeros as f64 / n as f64 },
        top1_share: if total > 0.0 {
            sorted[..top1].iter().sum::<f64>() / total
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StudySite, TrafficConfig};
    use webstruct_util::rng::Seed;

    fn study(site: StudySite) -> TrafficStudy {
        TrafficStudy::simulate(&TrafficConfig::preset(site).scaled(0.05), Seed(19))
    }

    #[test]
    fn measured_concentration_ordering_matches_the_config() {
        let imdb = estimate_demand(&study(StudySite::Imdb), Channel::Search);
        let amazon = estimate_demand(&study(StudySite::Amazon), Channel::Search);
        let yelp = estimate_demand(&study(StudySite::Yelp), Channel::Search);
        assert!(imdb.gini > amazon.gini && amazon.gini > yelp.gini);
        assert!(imdb.top1_share > yelp.top1_share);
        // Movies: the exponential cutoff leaves a large dead tail.
        assert!(imdb.zero_fraction > yelp.zero_fraction);
    }

    #[test]
    fn tail_exponent_is_estimable_on_real_volumes() {
        let e = estimate_demand(&study(StudySite::Amazon), Channel::Browse);
        let alpha = e.tail_exponent.expect("estimable");
        assert!((0.2..6.0).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn degenerate_study() {
        let s = TrafficStudy {
            site: StudySite::Yelp,
            reviews: vec![0, 0],
            demand_search: vec![0, 0],
            demand_browse: vec![0, 0],
            tail_stats_search: crate::model::UserTailStats {
                active_users: 0,
                users_touching_tail: 0,
                regular_tail_users: 0,
                tail_demand_share: 0.0,
            },
            tail_stats_browse: crate::model::UserTailStats {
                active_users: 0,
                users_touching_tail: 0,
                regular_tail_users: 0,
                tail_demand_share: 0.0,
            },
        };
        let e = estimate_demand(&s, Channel::Search);
        assert_eq!(e.zero_fraction, 1.0);
        assert_eq!(e.top1_share, 0.0);
        assert_eq!(e.gini, 0.0);
    }
}
