//! # webstruct-demand
//!
//! The value-of-tail-extraction analyses of §4 of *An Analysis of
//! Structured Data on the Web*:
//!
//! * [`model`] — a deterministic year of search/browse traffic with
//!   unique-cookie demand counting, plus per-entity review inventories,
//!   for Amazon-, Yelp- and IMDb-like sites;
//! * [`curves`] — aggregate demand CDFs/PDFs (Figure 6);
//! * [`value`] — demand vs. availability and the relative value-add
//!   `VA(n)/VA(0)` of one new review (Figures 7–8), with pluggable
//!   information-decay models;
//! * [`traffic`] — the replay adapter: the simulated population as a
//!   deterministic, index-addressable stream of HTTP requests for load
//!   generation against `webstruct serve`.

//!
//! ## Example
//!
//! ```
//! use webstruct_demand::{StudySite, TrafficConfig, TrafficStudy};
//! use webstruct_util::Seed;
//!
//! let cfg = TrafficConfig::preset(StudySite::Yelp).scaled(0.01);
//! let study = TrafficStudy::simulate(&cfg, Seed::DEFAULT);
//! assert!(study.total_search() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod curves;
pub mod estimate;
pub mod model;
pub mod traffic;
pub mod value;

pub use curves::{cdf_figure, pdf_figure, top_share, Channel};
pub use estimate::{estimate_demand, DemandEstimate};
pub use model::{ReviewModel, StudySite, TrafficConfig, TrafficStudy, UserTailStats};
pub use traffic::{ReplayRequest, RequestPlan};
pub use value::{fig7, fig8, review_bins, value_add_series, InfoDecay, ReviewBin};
