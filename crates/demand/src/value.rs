//! Demand vs. availability and the value-add of a new review
//! (§4.3, Figures 7 and 8).
//!
//! The value of adding one review to entity `e` with `n` existing reviews
//! and demand `k` is `VA = k · I∆(n)`; with the paper's inverse-linear
//! information decay `I∆(n) = 1/(1+n)`, `VA = k/(1+n)`. Entities are
//! grouped by `log₂(n+1)` bins (paper footnote 4), and Figure 8 plots the
//! per-bin average relative to the zero-review bin.

use crate::curves::Channel;
use crate::model::TrafficStudy;
use webstruct_util::report::{Figure, Series};
use webstruct_util::stats::{log2_bin_midpoint, log2_review_bin, mean, std_dev};

/// The information-decay model `I∆(n)` for the (n+1)-th review.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfoDecay {
    /// `1 / (1 + n)` — the paper's primary choice, motivated by averaged
    /// review summaries.
    InverseLinear,
    /// A step function: full value while `n < c`, zero afterwards — the
    /// "users read at most c reviews" alternative the paper discusses
    /// (which only strengthens the tail-value conclusion).
    Step(u32),
}

impl InfoDecay {
    /// Evaluate `I∆(n)`.
    #[must_use]
    pub fn eval(self, n_reviews: u64) -> f64 {
        match self {
            InfoDecay::InverseLinear => 1.0 / (1.0 + n_reviews as f64),
            InfoDecay::Step(c) => {
                if n_reviews < u64::from(c) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Per-bin aggregate used by Figures 7 and 8.
#[derive(Debug, Clone, PartialEq)]
pub struct ReviewBin {
    /// Bin index (`log2_review_bin`).
    pub bin: u32,
    /// Representative review count (bin midpoint).
    pub midpoint: f64,
    /// Number of entities in the bin.
    pub n_entities: usize,
    /// Mean demand (raw units) of entities in the bin.
    pub mean_demand: f64,
    /// Mean z-normalised demand (Figure 7's y-axis).
    pub mean_demand_z: f64,
    /// Mean value-add `k·I∆(n)` over entities in the bin.
    pub mean_value_add: f64,
}

/// Group a study's entities by review-count bin and aggregate demand.
///
/// Returns bins in increasing order; empty bins are omitted.
#[must_use]
pub fn review_bins(study: &TrafficStudy, channel: Channel, decay: InfoDecay) -> Vec<ReviewBin> {
    let demand: Vec<f64> = match channel {
        Channel::Search => study.demand_search.iter().map(|&d| f64::from(d)).collect(),
        Channel::Browse => study.demand_browse.iter().map(|&d| f64::from(d)).collect(),
    };
    // Z-normalise demand within the dataset (Figure 7 caption).
    let m = mean(&demand);
    let s = std_dev(&demand);
    let mut per_bin: Vec<(usize, f64, f64, f64)> = vec![(0, 0.0, 0.0, 0.0); 11];
    for (e, &n_reviews) in study.reviews.iter().enumerate() {
        let bin = log2_review_bin(u64::from(n_reviews)) as usize;
        let k = demand[e];
        let z = if s > 0.0 { (k - m) / s } else { 0.0 };
        let va = k * decay.eval(u64::from(n_reviews));
        let slot = &mut per_bin[bin];
        slot.0 += 1;
        slot.1 += k;
        slot.2 += z;
        slot.3 += va;
    }
    per_bin
        .into_iter()
        .enumerate()
        .filter(|&(_, (count, _, _, _))| count > 0)
        .map(|(bin, (count, dsum, zsum, vsum))| ReviewBin {
            bin: bin as u32,
            midpoint: log2_bin_midpoint(bin as u32),
            n_entities: count,
            mean_demand: dsum / count as f64,
            mean_demand_z: zsum / count as f64,
            mean_value_add: vsum / count as f64,
        })
        .collect()
}

/// Figure 7 series: average normalized demand vs. number of reviews.
#[must_use]
pub fn demand_vs_reviews_series(
    study: &TrafficStudy,
    channel: Channel,
    decay: InfoDecay,
) -> Series {
    let bins = review_bins(study, channel, decay);
    Series::new(
        channel.slug(),
        bins.iter()
            .map(|b| (b.midpoint, b.mean_demand_z))
            .collect(),
    )
}

/// Figure 8 series: average relative value-add `VA(n)/VA(0)` vs. reviews.
///
/// Returns an empty series when the zero-review bin is absent or has zero
/// value-add (relative values would be undefined).
#[must_use]
pub fn value_add_series(study: &TrafficStudy, channel: Channel, decay: InfoDecay) -> Series {
    let bins = review_bins(study, channel, decay);
    let Some(base) = bins
        .iter()
        .find(|b| b.bin == 0)
        .map(|b| b.mean_value_add)
        .filter(|&v| v > 0.0)
    else {
        return Series::new(channel.slug(), Vec::new());
    };
    Series::new(
        channel.slug(),
        bins.iter()
            // x: use midpoint+1 so the zero-review bin renders on log axes.
            .map(|b| (b.midpoint + 1.0, b.mean_value_add / base))
            .collect(),
    )
}

/// Figure 7 for one site: both channels.
#[must_use]
pub fn fig7(study: &TrafficStudy) -> Figure {
    let mut fig = Figure::new(
        format!("fig7-{}", study.site.slug()),
        format!("{}: normalized demand vs. number of reviews", study.site),
    )
    .with_axes("# of reviews", "average normalized demand");
    fig.push(demand_vs_reviews_series(
        study,
        Channel::Browse,
        InfoDecay::InverseLinear,
    ));
    let mut s = demand_vs_reviews_series(study, Channel::Search, InfoDecay::InverseLinear);
    s.name = "search".to_string();
    fig.series[0].name = "browse".to_string();
    fig.push(s);
    fig
}

/// Figure 8 for one site: both channels, log-x.
#[must_use]
pub fn fig8(study: &TrafficStudy, decay: InfoDecay) -> Figure {
    let mut fig = Figure::new(
        format!("fig8-{}", study.site.slug()),
        format!("{}: average relative value-add of one review", study.site),
    )
    .with_axes("# of reviews", "VA(n)/VA(0)")
    .with_log_x();
    let mut browse = value_add_series(study, Channel::Browse, decay);
    browse.name = "browse".to_string();
    fig.push(browse);
    let mut search = value_add_series(study, Channel::Search, decay);
    search.name = "search".to_string();
    fig.push(search);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StudySite, TrafficConfig};
    use webstruct_util::rng::Seed;

    fn study(site: StudySite) -> TrafficStudy {
        TrafficStudy::simulate(&TrafficConfig::preset(site).scaled(0.1), Seed(13))
    }

    #[test]
    fn info_decay_models() {
        assert_eq!(InfoDecay::InverseLinear.eval(0), 1.0);
        assert_eq!(InfoDecay::InverseLinear.eval(9), 0.1);
        assert_eq!(InfoDecay::Step(10).eval(9), 1.0);
        assert_eq!(InfoDecay::Step(10).eval(10), 0.0);
    }

    #[test]
    fn bins_partition_all_entities() {
        let s = study(StudySite::Amazon);
        let bins = review_bins(&s, Channel::Search, InfoDecay::InverseLinear);
        let total: usize = bins.iter().map(|b| b.n_entities).sum();
        assert_eq!(total, s.reviews.len());
        // Bins strictly increasing.
        assert!(bins.windows(2).all(|w| w[0].bin < w[1].bin));
    }

    #[test]
    fn demand_increases_with_review_count() {
        // Figure 7's qualitative shape: entities with more reviews have
        // more demand on average.
        let s = study(StudySite::Amazon);
        let bins = review_bins(&s, Channel::Search, InfoDecay::InverseLinear);
        let first = bins.first().unwrap();
        let last = bins.last().unwrap();
        assert!(
            last.mean_demand > 3.0 * first.mean_demand.max(0.1),
            "head bin demand {} vs tail bin {}",
            last.mean_demand,
            first.mean_demand
        );
    }

    #[test]
    fn value_add_declines_for_amazon_and_yelp() {
        // The paper's Figure 8 finding: VA(n)/VA(0) < 1 for head bins.
        for site in [StudySite::Amazon, StudySite::Yelp] {
            let s = study(site);
            for channel in [Channel::Search, Channel::Browse] {
                let series = value_add_series(&s, channel, InfoDecay::InverseLinear);
                assert!(!series.points.is_empty());
                let (_, first) = series.points[0];
                let (_, last) = *series.points.last().unwrap();
                assert!((first - 1.0).abs() < 1e-9, "VA(0)/VA(0) must be 1");
                assert!(
                    last < 0.5,
                    "{site:?}/{channel:?}: head VA ratio {last} should fall well below 1"
                );
            }
        }
    }

    #[test]
    fn imdb_shows_midrange_bump() {
        // "For the IMDb data, the relative value-add goes up for entities
        // with mid-range popularity but then falls off for the head."
        let s = study(StudySite::Imdb);
        let series = value_add_series(&s, Channel::Search, InfoDecay::InverseLinear);
        let ys: Vec<f64> = series.points.iter().map(|&(_, y)| y).collect();
        let max = ys.iter().cloned().fold(f64::MIN, f64::max);
        let max_idx = ys.iter().position(|&y| y == max).unwrap();
        assert!(max > 1.1, "mid-range bump should exceed VA(0): max {max}");
        assert!(
            max_idx > 0 && max_idx < ys.len() - 1,
            "bump must be interior: idx {max_idx} of {}",
            ys.len()
        );
        assert!(
            *ys.last().unwrap() < max,
            "head bin should fall back from the bump"
        );
    }

    #[test]
    fn step_decay_strengthens_tail_value() {
        let s = study(StudySite::Amazon);
        let inv = value_add_series(&s, Channel::Search, InfoDecay::InverseLinear);
        let step = value_add_series(&s, Channel::Search, InfoDecay::Step(10));
        // Under the step model, head bins (n >= 10) have zero value-add.
        let head_step = step.points.last().unwrap().1;
        let head_inv = inv.points.last().unwrap().1;
        assert!(head_step <= head_inv);
        assert!(head_step.abs() < 1e-9);
    }

    #[test]
    fn figures_have_two_channels() {
        let s = study(StudySite::Yelp);
        let f7 = fig7(&s);
        assert_eq!(f7.series.len(), 2);
        assert!(f7.series_named("browse").is_some());
        assert!(f7.series_named("search").is_some());
        let f8 = fig8(&s, InfoDecay::InverseLinear);
        assert_eq!(f8.series.len(), 2);
        assert!(f8.log_x);
    }

    #[test]
    fn degenerate_zero_demand_study() {
        let study = TrafficStudy {
            site: StudySite::Yelp,
            reviews: vec![0, 5, 100],
            demand_search: vec![0, 0, 0],
            demand_browse: vec![0, 0, 0],
            tail_stats_search: crate::model::UserTailStats {
                active_users: 0,
                users_touching_tail: 0,
                regular_tail_users: 0,
                tail_demand_share: 0.0,
            },
            tail_stats_browse: crate::model::UserTailStats {
                active_users: 0,
                users_touching_tail: 0,
                regular_tail_users: 0,
                tail_demand_share: 0.0,
            },
        };
        let series = value_add_series(&study, Channel::Search, InfoDecay::InverseLinear);
        assert!(series.points.is_empty(), "zero base VA must yield empty series");
        let bins = review_bins(&study, Channel::Search, InfoDecay::InverseLinear);
        assert_eq!(bins.len(), 3);
        assert!(bins.iter().all(|b| b.mean_demand == 0.0));
    }
}
