//! The traffic simulator: the stand-in for one year of Yahoo! Search logs
//! ("search") and Yahoo! Toolbar logs ("browse"), §4.1 of the paper.
//!
//! We simulate a user population clicking entity pages on three
//! review-rich sites — product (Amazon-like), local-business (Yelp-like)
//! and movie (IMDb-like) inventories. Demand for an entity is the number
//! of unique cookies that visited it: per-month uniques summed over the
//! year for search (the paper's footnote 2), per-year uniques for browse.
//!
//! The generative knobs encode the qualitative structure the paper
//! reports: movie demand is the most concentrated ("a top movie title can
//! be watched by millions of people at the same time"), local-business
//! demand the flattest; every user carries some niche interest (the
//! Goel et al. observation the paper cites); and review availability
//! decays *faster* toward the tail than demand does — which is the
//! paper's headline §4 finding, emerging here from `review_rho >
//! demand exponents` rather than being asserted.

use webstruct_util::hash::FxHashSet;
use webstruct_util::rng::{Seed, Xoshiro256};
use webstruct_util::sample::{AliasTable, Zipf};

/// The three studied sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudySite {
    /// Product inventory (Amazon-like).
    Amazon,
    /// Local-business inventory (Yelp-like).
    Yelp,
    /// Movie inventory (IMDb-like).
    Imdb,
}

impl StudySite {
    /// All three, in the paper's plotting order.
    pub const ALL: [StudySite; 3] = [StudySite::Imdb, StudySite::Amazon, StudySite::Yelp];

    /// Lowercase label used in figures.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            StudySite::Amazon => "amazon",
            StudySite::Yelp => "yelp",
            StudySite::Imdb => "imdb",
        }
    }
}

impl std::fmt::Display for StudySite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// How a site's review inventory relates to entity popularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReviewModel {
    /// Expected reviews `scale · percentile^rho`, where percentile is the
    /// entity's popularity percentile in `(0, 1]`. With `rho` above the
    /// demand exponent this makes availability decay *faster* than demand
    /// toward the tail — the Amazon/Yelp regime of Figure 8.
    PercentilePower {
        /// Expected reviews of the top entity.
        scale: f64,
        /// Decay exponent.
        rho: f64,
    },
    /// Expected reviews `lin · E[demand] + quad · E[demand]²`, capped.
    /// Linear accumulation in the mid-range plus a quadratic pile-on for
    /// blockbusters (the reviewer micro-community effect of Gilbert &
    /// Karahalios, cited in §4.3 of the paper) — the IMDb regime, which
    /// produces the paper's mid-range value-add bump.
    DemandPolynomial {
        /// Reviews per expected visit in the linear regime.
        lin: f64,
        /// Quadratic pile-on coefficient.
        quad: f64,
        /// Hard cap on expected reviews.
        cap: f64,
    },
}

impl ReviewModel {
    /// Expected review count for an entity with popularity percentile
    /// `percentile` and analytically expected demand `expected_demand`.
    #[must_use]
    pub fn expected(self, percentile: f64, expected_demand: f64) -> f64 {
        match self {
            ReviewModel::PercentilePower { scale, rho } => scale * percentile.powf(rho),
            ReviewModel::DemandPolynomial { lin, quad, cap } => {
                (lin * expected_demand + quad * expected_demand * expected_demand).min(cap)
            }
        }
    }
}

/// Configuration of one site's traffic study.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Which site.
    pub site: StudySite,
    /// Inventory size (entity pages).
    pub n_entities: usize,
    /// User population (cookies).
    pub n_users: usize,
    /// Search click events over the year.
    pub search_events: usize,
    /// Browse click events over the year.
    pub browse_events: usize,
    /// Zipf exponent of the *interest* distribution over entities for
    /// search traffic (raw demand).
    pub search_alpha: f64,
    /// Same for browse traffic (shaped by on-site navigation).
    pub browse_alpha: f64,
    /// Optional exponential tail cutoff: interest is multiplied by
    /// `exp(-rank / (cutoff_frac * n))`. Movies use this — tail-movie
    /// demand collapses much faster than a power law.
    pub demand_tail_cutoff: Option<f64>,
    /// Probability a click goes to the user's personal niche set instead
    /// of the global interest distribution.
    pub niche_frac: f64,
    /// Size of each user's niche set.
    pub niche_size: usize,
    /// Zipf exponent of user activity.
    pub user_alpha: f64,
    /// The review-inventory model.
    pub review_model: ReviewModel,
}

impl TrafficConfig {
    /// Calibrated preset per site at a default laptop scale.
    #[must_use]
    pub fn preset(site: StudySite) -> Self {
        match site {
            // Products: mid concentration, deep inventory, many reviews.
            StudySite::Amazon => TrafficConfig {
                site,
                n_entities: 40_000,
                n_users: 30_000,
                search_events: 600_000,
                browse_events: 600_000,
                search_alpha: 0.95,
                browse_alpha: 1.05,
                demand_tail_cutoff: None,
                niche_frac: 0.25,
                niche_size: 8,
                user_alpha: 0.8,
                review_model: ReviewModel::PercentilePower {
                    scale: 1_500.0,
                    rho: 2.6,
                },
            },
            // Local businesses: flattest demand.
            StudySite::Yelp => TrafficConfig {
                site,
                n_entities: 20_000,
                n_users: 30_000,
                search_events: 400_000,
                browse_events: 400_000,
                search_alpha: 0.65,
                browse_alpha: 0.7,
                demand_tail_cutoff: None,
                niche_frac: 0.35,
                niche_size: 10,
                user_alpha: 0.8,
                review_model: ReviewModel::PercentilePower {
                    scale: 1_000.0,
                    rho: 2.2,
                },
            },
            // Movies: sharpest demand with a hard tail collapse.
            StudySite::Imdb => TrafficConfig {
                site,
                n_entities: 8_000,
                n_users: 30_000,
                search_events: 500_000,
                browse_events: 500_000,
                search_alpha: 1.25,
                browse_alpha: 1.4,
                demand_tail_cutoff: Some(0.45),
                niche_frac: 0.05,
                niche_size: 5,
                user_alpha: 0.8,
                review_model: ReviewModel::DemandPolynomial {
                    lin: 0.05,
                    quad: 1e-5,
                    cap: 50_000.0,
                },
            },
        }
    }

    /// Scale entity/user/event counts by `factor` (for tests and benches).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(16);
        self.n_entities = scale(self.n_entities);
        self.n_users = scale(self.n_users);
        self.search_events = scale(self.search_events);
        self.browse_events = scale(self.browse_events);
        self
    }
}

/// User-level tail statistics — the paper's §4.2 discussion of Goel et
/// al.: *"nearly every user had some niche interests represented in the
/// tail, even though these tail entities may only account for a small
/// fraction of the total demand."* Tail = entities outside the top 20% of
/// the inventory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserTailStats {
    /// Users with at least one counted visit.
    pub active_users: usize,
    /// Users with at least one counted visit to a tail entity.
    pub users_touching_tail: usize,
    /// Users with >= 20% of their counted visits on tail entities
    /// ("regularly" per the cited study).
    pub regular_tail_users: usize,
    /// Fraction of all counted visits that hit tail entities.
    pub tail_demand_share: f64,
}

impl UserTailStats {
    /// Fraction of active users who touched the tail at least once.
    #[must_use]
    pub fn touching_fraction(&self) -> f64 {
        if self.active_users == 0 {
            return 0.0;
        }
        self.users_touching_tail as f64 / self.active_users as f64
    }

    /// Fraction of active users who are regular tail consumers.
    #[must_use]
    pub fn regular_fraction(&self) -> f64 {
        if self.active_users == 0 {
            return 0.0;
        }
        self.regular_tail_users as f64 / self.active_users as f64
    }
}

/// The simulated year of traffic plus the site's review inventory.
#[derive(Debug, Clone)]
pub struct TrafficStudy {
    /// Which site this is.
    pub site: StudySite,
    /// Review count per entity (index = entity rank).
    pub reviews: Vec<u32>,
    /// Search demand per entity: unique (cookie, month) visits.
    pub demand_search: Vec<u32>,
    /// Browse demand per entity: unique cookies over the year.
    pub demand_browse: Vec<u32>,
    /// User-level tail statistics for the search channel.
    pub tail_stats_search: UserTailStats,
    /// User-level tail statistics for the browse channel.
    pub tail_stats_browse: UserTailStats,
}

impl TrafficStudy {
    /// Simulate a study deterministically.
    ///
    /// # Panics
    /// Panics on empty inventories/populations or probabilities outside
    /// `[0, 1]`.
    #[must_use]
    pub fn simulate(config: &TrafficConfig, seed: Seed) -> Self {
        assert!(config.n_entities > 0, "inventory must be non-empty");
        assert!(config.n_users > 0, "user population must be non-empty");
        assert!(
            (0.0..=1.0).contains(&config.niche_frac),
            "niche_frac out of range"
        );
        let seed = seed.derive("traffic").derive(config.site.slug());
        let n = config.n_entities;

        // Review inventory. The analytical expected search demand per
        // entity (global interest share + the uniform niche floor) feeds
        // the demand-indexed review models.
        let weights = interest_weights(config, config.search_alpha);
        let weight_sum: f64 = weights.iter().sum();
        let global_events = config.search_events as f64 * (1.0 - config.niche_frac);
        let niche_floor = config.search_events as f64 * config.niche_frac / n as f64;
        let mut rng = Xoshiro256::from_seed(seed.derive("reviews"));
        let reviews: Vec<u32> = (0..n)
            .map(|rank| {
                let percentile = 1.0 - rank as f64 / n as f64; // (0, 1]
                let expected_demand = global_events * weights[rank] / weight_sum + niche_floor;
                let lambda = config.review_model.expected(percentile, expected_demand);
                u32::try_from(rng.poisson(lambda).min(u64::from(u32::MAX))).expect("clamped")
            })
            .collect();

        let user_sampler = Zipf::new(config.n_users, config.user_alpha);
        let (demand_search, tail_stats_search) = simulate_channel(
            config,
            seed.derive("search"),
            config.search_events,
            config.search_alpha,
            &user_sampler,
            DedupWindow::Monthly,
        );
        let (demand_browse, tail_stats_browse) = simulate_channel(
            config,
            seed.derive("browse"),
            config.browse_events,
            config.browse_alpha,
            &user_sampler,
            DedupWindow::Yearly,
        );
        TrafficStudy {
            site: config.site,
            reviews,
            demand_search,
            demand_browse,
            tail_stats_search,
            tail_stats_browse,
        }
    }

    /// Total search demand.
    #[must_use]
    pub fn total_search(&self) -> u64 {
        self.demand_search.iter().map(|&d| u64::from(d)).sum()
    }

    /// Total browse demand.
    #[must_use]
    pub fn total_browse(&self) -> u64 {
        self.demand_browse.iter().map(|&d| u64::from(d)).sum()
    }
}

/// Cookie-dedup window, per the paper's footnote 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DedupWindow {
    /// Unique (cookie, month) pairs, summed over the year (search data).
    Monthly,
    /// Unique cookies over the whole year (browse data).
    Yearly,
}

/// Per-rank interest weights: power law with the optional exponential
/// tail cutoff.
fn interest_weights(config: &TrafficConfig, alpha: f64) -> Vec<f64> {
    interest_weights_over(config.n_entities, alpha, config.demand_tail_cutoff)
}

/// [`interest_weights`] over an explicit inventory size — the traffic
/// replay adapter re-derives the interest distribution over the *serving*
/// catalog, which need not match the study preset's `n_entities`.
pub(crate) fn interest_weights_over(
    n: usize,
    alpha: f64,
    demand_tail_cutoff: Option<f64>,
) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n)
        .map(|rank| (rank as f64 + 1.0).powf(-alpha))
        .collect();
    if let Some(cutoff_frac) = demand_tail_cutoff {
        let scale = (cutoff_frac * n as f64).max(1.0);
        for (rank, w) in weights.iter_mut().enumerate() {
            *w *= (-(rank as f64) / scale).exp();
        }
    }
    weights
}

fn simulate_channel(
    config: &TrafficConfig,
    seed: Seed,
    n_events: usize,
    alpha: f64,
    user_sampler: &Zipf,
    window: DedupWindow,
) -> (Vec<u32>, UserTailStats) {
    let n = config.n_entities;
    let tail_threshold = (n / 5) as u32; // top 20% are "head"
    let mut user_visits = vec![0u32; config.n_users];
    let mut user_tail_visits = vec![0u32; config.n_users];
    let interest = AliasTable::new(&interest_weights(config, alpha));

    let mut rng = Xoshiro256::from_seed(seed);
    let mut seen: FxHashSet<(u32, u32, u8)> =
        webstruct_util::hash::fx_set_with_capacity(n_events);
    let mut demand = vec![0u32; n];
    for _ in 0..n_events {
        let user = user_sampler.sample(&mut rng) as u32;
        let entity = if rng.bool_with(config.niche_frac) {
            // Personal niche interests: a fixed per-user set of entities,
            // derived (not stored) so memory stays O(1) in users.
            let slot = rng.u64_below(config.niche_size.max(1) as u64);
            let h = Seed(u64::from(user))
                .derive("niche")
                .derive_u64(slot)
                .0;
            (h % n as u64) as u32
        } else {
            interest.sample(&mut rng) as u32
        };
        let month = match window {
            DedupWindow::Monthly => rng.u64_below(12) as u8,
            DedupWindow::Yearly => 0u8,
        };
        if seen.insert((user, entity, month)) {
            demand[entity as usize] += 1;
            user_visits[user as usize] += 1;
            if entity >= tail_threshold {
                user_tail_visits[user as usize] += 1;
            }
        }
    }
    let active_users = user_visits.iter().filter(|&&v| v > 0).count();
    let users_touching_tail = user_tail_visits.iter().filter(|&&v| v > 0).count();
    let regular_tail_users = user_visits
        .iter()
        .zip(&user_tail_visits)
        .filter(|&(&v, &t)| v > 0 && f64::from(t) >= 0.2 * f64::from(v))
        .count();
    let total_visits: u64 = user_visits.iter().map(|&v| u64::from(v)).sum();
    let tail_visits: u64 = user_tail_visits.iter().map(|&v| u64::from(v)).sum();
    let stats = UserTailStats {
        active_users,
        users_touching_tail,
        regular_tail_users,
        tail_demand_share: if total_visits == 0 {
            0.0
        } else {
            tail_visits as f64 / total_visits as f64
        },
    };
    (demand, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::stats::gini;

    fn quick(site: StudySite) -> TrafficStudy {
        TrafficStudy::simulate(&TrafficConfig::preset(site).scaled(0.05), Seed(5))
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = quick(StudySite::Yelp);
        let b = quick(StudySite::Yelp);
        assert_eq!(a.reviews, b.reviews);
        assert_eq!(a.demand_search, b.demand_search);
        assert_eq!(a.demand_browse, b.demand_browse);
    }

    #[test]
    fn demand_is_positive_and_head_skewed() {
        let s = quick(StudySite::Amazon);
        assert!(s.total_search() > 0);
        assert!(s.total_browse() > 0);
        let n = s.demand_search.len();
        let head: u64 = s.demand_search[..n / 10]
            .iter()
            .map(|&d| u64::from(d))
            .sum();
        assert!(
            head as f64 > 0.3 * s.total_search() as f64,
            "top decile should hold a large demand share"
        );
    }

    #[test]
    fn imdb_is_most_concentrated_yelp_least() {
        let imdb = quick(StudySite::Imdb);
        let amazon = quick(StudySite::Amazon);
        let yelp = quick(StudySite::Yelp);
        let g = |s: &TrafficStudy| {
            gini(&s.demand_search.iter().map(|&d| f64::from(d)).collect::<Vec<_>>())
        };
        let (gi, ga, gy) = (g(&imdb), g(&amazon), g(&yelp));
        assert!(gi > ga, "imdb {gi} vs amazon {ga}");
        assert!(ga > gy, "amazon {ga} vs yelp {gy}");
    }

    #[test]
    fn reviews_decay_with_rank() {
        let s = quick(StudySite::Amazon);
        let n = s.reviews.len();
        let head: u64 = s.reviews[..n / 10].iter().map(|&r| u64::from(r)).sum();
        let tail: u64 = s.reviews[9 * n / 10..].iter().map(|&r| u64::from(r)).sum();
        assert!(head > 50 * tail.max(1), "head {head} tail {tail}");
        // Head entities actually have many reviews.
        assert!(s.reviews[0] > 100);
    }

    #[test]
    fn availability_decays_faster_than_demand() {
        // The paper's central §4 claim, checked mechanistically: the ratio
        // demand/review-count grows toward the tail for amazon/yelp.
        for site in [StudySite::Amazon, StudySite::Yelp] {
            let s = quick(site);
            let n = s.reviews.len();
            let band = |lo: usize, hi: usize| {
                let d: f64 = s.demand_search[lo..hi].iter().map(|&x| f64::from(x)).sum();
                let r: f64 = s.reviews[lo..hi].iter().map(|&x| f64::from(x) + 1.0).sum();
                d / r
            };
            let head_ratio = band(0, n / 10);
            let tail_ratio = band(n / 2, n);
            assert!(
                tail_ratio > head_ratio,
                "{site}: tail demand/review {tail_ratio} should exceed head {head_ratio}"
            );
        }
    }

    #[test]
    fn monthly_dedup_yields_more_countable_visits_than_yearly() {
        // Same event volume: splitting the year into months can only
        // increase the number of unique (cookie, month) pairs.
        let cfg = TrafficConfig::preset(StudySite::Yelp).scaled(0.05);
        let s = TrafficStudy::simulate(&cfg, Seed(6));
        // Not an exact invariant across channels (different alphas), but
        // with near-equal alphas search uniques should not be wildly lower.
        assert!(s.total_search() as f64 > 0.5 * s.total_browse() as f64);
    }

    #[test]
    fn scaled_preserves_minimums() {
        let tiny = TrafficConfig::preset(StudySite::Imdb).scaled(1e-9);
        assert!(tiny.n_entities >= 16);
        assert!(tiny.n_users >= 16);
    }

    #[test]
    fn nearly_every_user_touches_the_tail() {
        // The Goel et al. structure §4.2 cites: tail entities account for
        // a minority of demand, yet the vast majority of users touch the
        // tail at least once.
        for site in [StudySite::Amazon, StudySite::Yelp] {
            let s = quick(site);
            for stats in [s.tail_stats_search, s.tail_stats_browse] {
                assert!(stats.active_users > 0);
                assert!(
                    stats.touching_fraction() > 0.7,
                    "{site}: only {:.2} of users touch the tail",
                    stats.touching_fraction()
                );
                assert!(
                    stats.tail_demand_share < stats.touching_fraction(),
                    "{site}: tail share {:.2} vs touching {:.2}",
                    stats.tail_demand_share,
                    stats.touching_fraction()
                );
                assert!(stats.regular_tail_users <= stats.users_touching_tail);
                assert!(stats.users_touching_tail <= stats.active_users);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inventory must be non-empty")]
    fn rejects_empty_inventory() {
        let mut cfg = TrafficConfig::preset(StudySite::Imdb);
        cfg.n_entities = 0;
        let _ = TrafficStudy::simulate(&cfg, Seed(1));
    }
}
