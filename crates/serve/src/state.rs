//! Warm serving state: everything the endpoints answer from, built once
//! at startup from the epoch store and held immutable for the server's
//! lifetime.
//!
//! [`ServeState::build`] runs the incremental pipeline
//! ([`Epoch::run_extracted`]) against the given store directory — a warm
//! store replays its cached extraction snapshots, a cold one renders from
//! scratch — and then derives the read-side indexes the endpoints need:
//! per-site entity lists, the inverse entity→sites map, the simulated
//! demand studies and the figure set. Because every input is seed-pure
//! and the epoch digest covers the merged extraction, two servers built
//! from the same `(domain, config)` serve byte-identical bodies at any
//! thread count — the property `tests/serve.rs` locks down.

use std::path::Path;
use webstruct_core::epoch::{identifying_attribute, Epoch, EpochError, EpochReport};
use webstruct_core::study::StudyConfig;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::EntityCatalog;
use webstruct_demand::curves::{cdf_figure, pdf_figure, Channel};
use webstruct_demand::model::{StudySite, TrafficConfig, TrafficStudy};
use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series};

/// The immutable state one server instance answers from.
pub struct ServeState {
    /// The served domain.
    pub domain: Domain,
    /// The study configuration the state was built at.
    pub config: StudyConfig,
    /// The entity catalog (id doubles as popularity rank, 0 = head).
    pub catalog: EntityCatalog,
    /// The identifying attribute coverage/demand are keyed by.
    pub attr: Attribute,
    /// The epoch report of the run that produced this state.
    pub report: EpochReport,
    /// Per-site extracted entity lists (sorted by id).
    pub site_lists: Vec<Vec<EntityId>>,
    /// Inverse map: for each entity, the sites that carry it (ascending).
    pub entity_sites: Vec<Vec<u32>>,
    /// The simulated demand studies, one per study site, in
    /// [`StudySite::ALL`] order.
    pub traffic: Vec<TrafficStudy>,
    /// The figure set served under `/figure/{id}.csv`.
    pub figures: Vec<Figure>,
}

impl ServeState {
    /// Build serving state for `domain` at `config` from the store under
    /// `dir`, extracting with `threads` workers. Re-running against a
    /// warm store replays cached snapshots instead of re-extracting.
    ///
    /// # Errors
    /// Propagates pipeline failures ([`EpochError`]).
    pub fn build(
        domain: Domain,
        config: StudyConfig,
        dir: &Path,
        threads: usize,
    ) -> Result<Self, EpochError> {
        let epoch = Epoch::new(domain, config);
        Self::from_epoch(&epoch, dir, threads)
    }

    /// Build serving state from an existing [`Epoch`] — the hot-swap
    /// path: the epoch manager mutates its long-lived `Epoch` and
    /// rebuilds state from it (the dirty-slice recompute makes the re-run
    /// proportional to the mutation), leaving the old state serving until
    /// the new one is published.
    ///
    /// # Errors
    /// Propagates pipeline failures ([`EpochError`]).
    pub fn from_epoch(epoch: &Epoch, dir: &Path, threads: usize) -> Result<Self, EpochError> {
        let _span = webstruct_util::span!("serve.build", threads);
        let domain = epoch.domain();
        let config = epoch.config().clone();
        let (report, web) = epoch.run_extracted(dir, threads)?;
        let attr = identifying_attribute(domain);
        let catalog = epoch.catalog().clone();

        let site_lists = web.occurrence_lists(attr);
        let mut entity_sites: Vec<Vec<u32>> = vec![Vec::new(); catalog.len()];
        for (site, entities) in site_lists.iter().enumerate() {
            for e in entities {
                entity_sites[e.index()].push(site as u32);
            }
        }

        // The demand studies ride the same scale knob as the corpus so a
        // quick-scale server carries a quick-scale population.
        let traffic: Vec<TrafficStudy> = StudySite::ALL
            .iter()
            .map(|&site| {
                TrafficStudy::simulate(
                    &TrafficConfig::preset(site).scaled(config.scale),
                    config.seed,
                )
            })
            .collect();
        let refs: Vec<&TrafficStudy> = traffic.iter().collect();
        let mut figures = vec![
            cdf_figure(&refs, Channel::Search),
            cdf_figure(&refs, Channel::Browse),
            pdf_figure(&refs, Channel::Search),
            pdf_figure(&refs, Channel::Browse),
        ];
        figures.push(coverage_figure(&report));

        Ok(ServeState {
            domain,
            config,
            catalog,
            attr,
            report,
            site_lists,
            entity_sites,
            traffic,
            figures,
        })
    }

    /// The traffic study for `site`, if simulated.
    #[must_use]
    pub fn study(&self, site: StudySite) -> Option<&TrafficStudy> {
        self.traffic.iter().find(|s| s.site == site)
    }

    /// The figure with the given id.
    #[must_use]
    pub fn figure(&self, id: &str) -> Option<&Figure> {
        self.figures.iter().find(|f| f.id == id)
    }

    /// Number of sites in the served corpus.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.site_lists.len()
    }
}

/// The k-coverage curve of the served epoch as a figure, so the serving
/// layer exposes the paper's redundancy sweep next to the demand curves.
fn coverage_figure(report: &EpochReport) -> Figure {
    let points = report
        .coverages
        .iter()
        .enumerate()
        .map(|(i, &c)| ((i + 1) as f64, c))
        .collect();
    let mut fig = Figure::new(
        "serve-coverage",
        format!("k-coverage at epoch {}", report.epoch),
    )
    .with_axes("k (minimum sites)", "coverage");
    fig.push(Series::new("coverage", points));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::Seed;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("webstruct-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn build_produces_consistent_indexes() {
        let dir = tmpdir("build");
        let config = StudyConfig::quick().with_scale(0.02).with_seed(Seed(3));
        let state = ServeState::build(Domain::Restaurants, config, &dir, 2).unwrap();
        // The inverse map agrees with the forward lists.
        let forward: usize = state.site_lists.iter().map(Vec::len).sum();
        let inverse: usize = state.entity_sites.iter().map(Vec::len).sum();
        assert_eq!(forward, inverse);
        assert_eq!(forward, state.report.occurrences);
        for sites in &state.entity_sites {
            assert!(sites.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        }
        assert_eq!(state.traffic.len(), 3);
        assert_eq!(state.figures.len(), 5);
        assert!(state.figure("serve-coverage").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
