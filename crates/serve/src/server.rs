//! The connection layer: a thread-per-connection HTTP/1.1 server over a
//! bounded worker pool, std-only.
//!
//! ## Request lifecycle
//!
//! One acceptor thread polls a non-blocking listener and pushes accepted
//! sockets onto a bounded queue (backpressure: the acceptor blocks when
//! all workers are busy and the queue is full). Each worker pops a
//! connection and owns it end to end: read with a deadline, incrementally
//! parse ([`parse_request`]) — torn reads and pipelined requests both
//! fall out of re-parsing the growing buffer — route against the warm
//! [`ServeState`], write the deterministic response, repeat while
//! keep-alive holds. Graceful shutdown closes the queue; workers drain
//! every already-accepted connection before exiting, which is why the
//! accounting invariant below can be exact.
//!
//! ## Accounting invariant
//!
//! Every accepted connection ends in exactly one of `closed_clean`
//! (EOF/keep-alive end), `closed_timeout` (deadline with a stalled
//! request — the slow-loris case) or `closed_error` (mid-stream I/O
//! failure or truncated request), and every response sent answers either
//! a parsed request or a parse error. [`ServeStats::is_consistent`]
//! checks both equations; the fault-injection tests drive chaotic
//! clients at the server and then assert them.

use crate::cache::CacheOutcome;
use crate::http::{
    if_none_match_matches, parse_head, write_response_head, HeadParse, Method, Request, Response,
};
use crate::router::{route, Control};
use crate::state::ServeState;
use crate::swap::{EpochManager, ServeEpoch, SharedServing};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use webstruct_util::obs::{self, LocalHistogram};
use webstruct_util::par;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (connections served concurrently). Defaults to
    /// [`par::num_threads`], i.e. the `WEBSTRUCT_THREADS` contract.
    pub threads: usize,
    /// Per-read deadline; a connection that stalls mid-request past this
    /// is closed as `closed_timeout` (the slow-loris defence).
    pub read_timeout: Duration,
    /// Keep-alive cap: a connection is closed (cleanly) after serving
    /// this many requests, bounding per-connection state lifetime.
    pub max_requests_per_conn: usize,
    /// Bounded accept-queue depth.
    pub queue_depth: usize,
    /// Whether the hot-path response cache answers GET/HEAD requests.
    /// Off, every request takes the full router — the configuration the
    /// bench uses to prove cached and uncached bytes are identical.
    pub cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = par::num_threads();
        ServeConfig {
            threads,
            read_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1024,
            queue_depth: 2 * threads.max(1),
            cache: true,
        }
    }
}

/// A snapshot of the server's connection/response accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections that ended cleanly (EOF, keep-alive end, post-error
    /// close, idle timeout with nothing buffered).
    pub closed_clean: u64,
    /// Connections cut off with a stalled partial request buffered.
    pub closed_timeout: u64,
    /// Connections that died mid-stream (I/O error or truncated head).
    pub closed_error: u64,
    /// Requests successfully parsed.
    pub requests: u64,
    /// Heads rejected by the parser (each still gets one response).
    pub parse_errors: u64,
    /// Responses by status class.
    pub resp_2xx: u64,
    /// 3xx responses (`304 Not Modified` revalidations).
    pub resp_3xx: u64,
    /// 4xx responses.
    pub resp_4xx: u64,
    /// 5xx responses.
    pub resp_5xx: u64,
    /// Cache lookups served from already-pinned bytes.
    pub cache_hits: u64,
    /// Cache lookups that rendered and filled an entity slot.
    pub cache_misses: u64,
    /// Conditional requests answered `304` (the cheapest hit of all).
    pub cache_revalidations: u64,
    /// Epoch hot-swaps published since boot.
    pub cache_swaps: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Request latency in microseconds (parse start → response written).
    pub latency: LocalHistogram,
}

impl ServeStats {
    /// The accounting invariant: after the server has fully drained,
    /// every accepted connection is in exactly one `closed_*` bucket and
    /// every response answered a parsed request or a parse error.
    /// Only meaningful on the final stats from [`Server::join`] — a
    /// mid-flight snapshot legitimately has open connections.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.accepted == self.closed_clean + self.closed_timeout + self.closed_error
            && self.resp_2xx + self.resp_3xx + self.resp_4xx + self.resp_5xx
                == self.requests + self.parse_errors
    }

    /// Latency percentile in microseconds (histogram-bucket resolution).
    #[must_use]
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let count = self.latency.count();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (floor, c) in self.latency.nonzero_buckets() {
            cum += c;
            if cum >= target {
                return floor;
            }
        }
        0
    }
}

/// Live counters shared by the workers. Plain relaxed atomics: the exact
/// cross-thread ordering of increments is irrelevant, only totals are
/// ever read.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    closed_clean: AtomicU64,
    closed_timeout: AtomicU64,
    closed_error: AtomicU64,
    requests: AtomicU64,
    parse_errors: AtomicU64,
    resp_2xx: AtomicU64,
    resp_3xx: AtomicU64,
    resp_4xx: AtomicU64,
    resp_5xx: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_revalidations: AtomicU64,
    bytes_out: AtomicU64,
    latency: Mutex<LocalHistogram>,
    /// Totals already pushed to the global registry, so republishing is
    /// a delta and the `serve.*` counters stay monotone.
    published: Mutex<[u64; 14]>,
}

impl Counters {
    /// Snapshot the counters. `swaps` comes from [`SharedServing`] — the
    /// background swap thread publishes there, not here.
    fn snapshot(&self, swaps: u64) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed_clean: self.closed_clean.load(Ordering::Relaxed),
            closed_timeout: self.closed_timeout.load(Ordering::Relaxed),
            closed_error: self.closed_error.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            resp_2xx: self.resp_2xx.load(Ordering::Relaxed),
            resp_3xx: self.resp_3xx.load(Ordering::Relaxed),
            resp_4xx: self.resp_4xx.load(Ordering::Relaxed),
            resp_5xx: self.resp_5xx.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_revalidations: self.cache_revalidations.load(Ordering::Relaxed),
            cache_swaps: swaps,
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            latency: self.latency.lock().expect("latency lock").clone(),
        }
    }

    /// Push deltas into the global `obs` registry under `serve.*`. The
    /// counters land in the deterministic metrics tail (they are a pure
    /// function of the request stream); latency, which is wall-clock, is
    /// published as gauges — gauges are excluded from the deterministic
    /// snapshot by design, which is also where the derived
    /// `serve.cache.hit_rate_bp` lives (a ratio, not a monotone count).
    fn publish(&self, swaps: u64) {
        let s = self.snapshot(swaps);
        let live = [
            s.accepted,
            s.closed_clean,
            s.closed_timeout,
            s.closed_error,
            s.requests,
            s.parse_errors,
            s.resp_2xx,
            s.resp_3xx,
            s.resp_4xx,
            s.resp_5xx,
            s.cache_hits,
            s.cache_misses,
            s.cache_revalidations,
            s.cache_swaps,
        ];
        const NAMES: [&str; 14] = [
            "serve.accepted",
            "serve.closed_clean",
            "serve.closed_timeout",
            "serve.closed_error",
            "serve.requests",
            "serve.parse_errors",
            "serve.resp_2xx",
            "serve.resp_3xx",
            "serve.resp_4xx",
            "serve.resp_5xx",
            "serve.cache.hits",
            "serve.cache.misses",
            "serve.cache.revalidations",
            "serve.cache.swaps",
        ];
        let m = obs::metrics();
        let mut published = self.published.lock().expect("publish lock");
        for ((name, &now), prev) in NAMES.iter().zip(live.iter()).zip(published.iter_mut()) {
            m.add(name, now.saturating_sub(*prev));
            *prev = now;
        }
        drop(published);
        // Derived hit rate in basis points, mirroring the extraction
        // cache's `cache.hit_rate_bp`: a revalidation is the cheapest hit
        // (no bytes moved at all), a fill is the only miss.
        let lookups = s.cache_hits + s.cache_misses + s.cache_revalidations;
        let rate_bp = ((lookups - s.cache_misses) * 10_000)
            .checked_div(lookups)
            .unwrap_or(0);
        m.set_gauge("serve.cache.hit_rate_bp", rate_bp as f64);
        m.set_gauge("serve.latency_p50_us", s.latency_percentile_us(0.50) as f64);
        m.set_gauge("serve.latency_p99_us", s.latency_percentile_us(0.99) as f64);
        m.set_gauge("serve.latency_count", s.latency.count() as f64);
        m.set_gauge("serve.bytes_out", s.bytes_out as f64);
    }
}

/// The bounded handoff between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct QueueInner {
    deque: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                deque: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocking push; returns `false` if the queue is closed (the
    /// connection is dropped unaccounted, so the acceptor must only
    /// count connections it successfully enqueues).
    fn push(&self, conn: TcpStream) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.deque.len() >= self.cap && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return false;
        }
        inner.deque.push_back(conn);
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    /// Blocking pop; `None` once the queue is closed **and** drained, so
    /// every accepted connection is served even during shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(conn) = inner.deque.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A running server: acceptor + worker pool bound to a local address.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    shared: Arc<SharedServing>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    command: String,
    threads: usize,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `state` with `config`. The state is pinned for the server's
    /// lifetime — no hot swap; `POST /admin/epoch` answers 404. Use
    /// [`Server::start_with`] to serve a swappable epoch.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(
        state: Arc<ServeState>,
        config: &ServeConfig,
        addr: &str,
    ) -> std::io::Result<Server> {
        let shared = Arc::new(SharedServing::new(ServeEpoch::new(state)));
        Server::start_with(shared, None, config, addr)
    }

    /// Bind `addr` and serve whatever epoch `shared` currently holds,
    /// with `manager` (if any) answering `POST /admin/epoch` hot-swaps.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start_with(
        shared: Arc<SharedServing>,
        manager: Option<Arc<EpochManager>>,
        config: &ServeConfig,
        addr: &str,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let queue = Arc::new(ConnQueue::new(config.queue_depth));
        let command = format!("serve {}", shared.load().state.domain.slug());
        let threads = config.threads.max(1);

        let acceptor = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                loop {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((conn, _)) => {
                            if queue.push(conn) {
                                counters.accepted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
                queue.close();
            })
        };

        let workers = (0..threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                let manager = manager.clone();
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                let command = command.clone();
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        serve_connection(
                            conn,
                            &shared,
                            manager.as_ref(),
                            &config,
                            &counters,
                            &shutdown,
                            &command,
                        );
                    }
                })
            })
            .collect();

        Ok(Server {
            addr: local,
            shutdown,
            counters,
            shared,
            acceptor: Some(acceptor),
            workers,
            command,
            threads,
        })
    }

    /// The bound address (query this for the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Trigger graceful shutdown: stop accepting; already-accepted
    /// connections are still served.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// A live stats snapshot (connections may still be open; see
    /// [`ServeStats::is_consistent`]).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot(self.shared.swaps())
    }

    /// Wait for the acceptor and every worker to drain, publish the
    /// final `serve.*` counters, and return the final stats.
    ///
    /// Blocks until shutdown is triggered — either via
    /// [`shutdown`](Server::shutdown) or a client's `POST /shutdown`.
    ///
    /// # Panics
    /// Panics if a server thread itself panicked (a bug: connection
    /// handlers catch handler panics and answer 500).
    #[must_use]
    pub fn join(mut self) -> ServeStats {
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        let swaps = self.shared.swaps();
        self.counters.publish(swaps);
        self.counters.snapshot(swaps)
    }

    /// The `RUN_REPORT.json`-shaped metrics body `/metrics` serves.
    #[must_use]
    pub fn metrics_report(&self) -> String {
        self.counters.publish(self.shared.swaps());
        obs::run_report_json(&self.command, self.threads, obs::global())
    }
}

/// How one connection ended — maps 1:1 onto the `closed_*` counters.
enum ConnEnd {
    Clean,
    Timeout,
    Error,
}

/// A fast-path resolution: status, content type, and the pinned body
/// bytes (`None` for a 304, whose body is empty by definition).
type FastResponse = (u16, &'static str, Option<Arc<[u8]>>);

/// Serve one connection to completion. Every return path records exactly
/// one [`ConnEnd`].
fn serve_connection(
    mut conn: TcpStream,
    shared: &Arc<SharedServing>,
    manager: Option<&Arc<EpochManager>>,
    config: &ServeConfig,
    counters: &Counters,
    shutdown: &AtomicBool,
    command: &str,
) {
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let _ = conn.set_nodelay(true);
    let end = drive_connection(&mut conn, shared, manager, config, counters, shutdown, command);
    let bucket = match end {
        ConnEnd::Clean => &counters.closed_clean,
        ConnEnd::Timeout => &counters.closed_timeout,
        ConnEnd::Error => &counters.closed_error,
    };
    bucket.fetch_add(1, Ordering::Relaxed);
}

#[allow(clippy::too_many_lines)]
fn drive_connection(
    conn: &mut TcpStream,
    shared: &Arc<SharedServing>,
    manager: Option<&Arc<EpochManager>>,
    config: &ServeConfig,
    counters: &Counters,
    shutdown: &AtomicBool,
    command: &str,
) -> ConnEnd {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // The reusable wire buffer: every response on this connection is
    // assembled here, so a steady-state cache hit allocates nothing.
    let mut out_buf: Vec<u8> = Vec::with_capacity(4096);
    let mut served = 0usize;
    loop {
        // Drain every complete request already buffered (pipelining)
        // before touching the socket again.
        match parse_head(&buf) {
            HeadParse::Complete(head, consumed) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                served += 1;
                let start = Instant::now();
                let _span = webstruct_util::span!("serve.request");
                // One epoch snapshot per request: the whole response is
                // served from it, so a concurrent hot-swap is invisible
                // until the next request.
                let epoch = shared.load();
                let head_only = head.method == Method::Head;
                let keep_alive = head.keep_alive;

                // ── Fast path: GET/HEAD on a cacheable route ──────────
                // Serves pinned bytes (or a 304) without building an
                // owned Request, touching the router, or allocating.
                let mut fast: Option<FastResponse> = None;
                if config.cache && matches!(head.method, Method::Get | Method::Head) {
                    if let Some(content_type) = epoch.cache.probe(head.path) {
                        let revalidated = head
                            .if_none_match
                            .is_some_and(|inm| if_none_match_matches(inm, &epoch.etag));
                        if revalidated {
                            counters.cache_revalidations.fetch_add(1, Ordering::Relaxed);
                            fast = Some((304, content_type, None));
                        } else if let Some((cached, outcome)) =
                            epoch.cache.lookup(&epoch.state, head.path)
                        {
                            match outcome {
                                CacheOutcome::Hit => {
                                    counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                CacheOutcome::Filled => {
                                    counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            fast = Some((cached.status, cached.content_type, Some(Arc::clone(&cached.body))));
                        }
                    }
                }
                if let Some((status, content_type, body)) = fast {
                    buf.drain(..consumed);
                    let closing = !keep_alive
                        || served >= config.max_requests_per_conn
                        || shutdown.load(Ordering::Relaxed);
                    match status / 100 {
                        2 => counters.resp_2xx.fetch_add(1, Ordering::Relaxed),
                        _ => counters.resp_3xx.fetch_add(1, Ordering::Relaxed),
                    };
                    out_buf.clear();
                    let body_len = body.as_ref().map_or(0, |b| b.len());
                    write_response_head(
                        &mut out_buf,
                        status,
                        content_type,
                        body_len,
                        Some(&epoch.etag),
                        !closing,
                    );
                    if !head_only {
                        if let Some(b) = &body {
                            out_buf.extend_from_slice(b);
                        }
                    }
                    let written = conn.write_all(&out_buf).and_then(|()| conn.flush());
                    let micros =
                        u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    counters
                        .latency
                        .lock()
                        .expect("latency lock")
                        .record(micros);
                    match written {
                        Ok(()) => {
                            counters
                                .bytes_out
                                .fetch_add(out_buf.len() as u64, Ordering::Relaxed);
                        }
                        Err(_) => return ConnEnd::Error,
                    }
                    if closing {
                        return ConnEnd::Clean;
                    }
                    continue;
                }

                // ── Slow path: the full router ────────────────────────
                let req = Request::from_head(&head);
                buf.drain(..consumed);
                // A handler panic must not take the worker down: catch it
                // and answer with the 500 arm of the taxonomy.
                let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(&epoch.state, &req)
                }));
                let (response, control) = match routed {
                    Ok(r) => (r.response, r.control),
                    Err(_) => (
                        Response::error(500, "internal", "handler panicked"),
                        Control::None,
                    ),
                };
                let response = match control {
                    Control::Metrics => {
                        counters.publish(shared.swaps());
                        Response::ok_json(obs::run_report_json(
                            command,
                            config.threads,
                            obs::global(),
                        ))
                    }
                    Control::EpochSwap { fraction_bp, seed } => match manager {
                        None => Response::error(
                            404,
                            "not_found",
                            "hot-swap disabled; start the server with --watch",
                        ),
                        Some(mgr) => {
                            if mgr.begin_swap(shared, fraction_bp, seed) {
                                Response::ok_json(format!(
                                    "{{\"swap_started\": true, \"from_epoch\": {}, \
                                     \"fraction_bp\": {fraction_bp}, \"seed\": {seed}}}\n",
                                    epoch.version,
                                ))
                            } else {
                                Response::error(
                                    409,
                                    "swap_in_progress",
                                    "an epoch swap is already running",
                                )
                            }
                        }
                    },
                    _ => response,
                };
                // The conditional layer: every plain-resource 200 carries
                // the epoch ETag, and a matching If-None-Match collapses
                // it to a 304. Deliberately independent of `config.cache`
                // so cached and uncached servers answer conditional
                // requests identically (the digest-equality guarantee).
                let response = if control == Control::None
                    && response.status == 200
                    && matches!(req.method, Method::Get | Method::Head)
                {
                    match req.if_none_match.as_deref() {
                        Some(inm) if if_none_match_matches(inm, &epoch.etag) => {
                            counters.cache_revalidations.fetch_add(1, Ordering::Relaxed);
                            Response::not_modified(
                                response.content_type,
                                Arc::clone(&epoch.etag),
                            )
                        }
                        _ => response.with_etag(Arc::clone(&epoch.etag)),
                    }
                } else {
                    response
                };
                let closing = !req.keep_alive
                    || served >= config.max_requests_per_conn
                    || control == Control::Shutdown
                    || shutdown.load(Ordering::Relaxed);
                match response.class() {
                    2 => counters.resp_2xx.fetch_add(1, Ordering::Relaxed),
                    3 => counters.resp_3xx.fetch_add(1, Ordering::Relaxed),
                    4 => counters.resp_4xx.fetch_add(1, Ordering::Relaxed),
                    _ => counters.resp_5xx.fetch_add(1, Ordering::Relaxed),
                };
                out_buf.clear();
                response.write_into(&mut out_buf, !closing, head_only);
                let written = conn.write_all(&out_buf).and_then(|()| conn.flush());
                let micros =
                    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                counters
                    .latency
                    .lock()
                    .expect("latency lock")
                    .record(micros);
                if control == Control::Shutdown {
                    shutdown.store(true, Ordering::Relaxed);
                }
                match written {
                    Ok(()) => {
                        counters
                            .bytes_out
                            .fetch_add(out_buf.len() as u64, Ordering::Relaxed);
                    }
                    // The mid-response disconnect: the client vanished
                    // while we were writing.
                    Err(_) => return ConnEnd::Error,
                }
                if closing {
                    return ConnEnd::Clean;
                }
                continue;
            }
            HeadParse::Error(e) => {
                // One response per parse error, then close: after a
                // malformed head there is no reliable way to resync the
                // stream.
                counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let response = Response::from_http_error(e);
                match response.class() {
                    4 => counters.resp_4xx.fetch_add(1, Ordering::Relaxed),
                    _ => counters.resp_5xx.fetch_add(1, Ordering::Relaxed),
                };
                out_buf.clear();
                response.write_into(&mut out_buf, false, false);
                match conn.write_all(&out_buf).and_then(|()| conn.flush()) {
                    Ok(()) => {
                        counters
                            .bytes_out
                            .fetch_add(out_buf.len() as u64, Ordering::Relaxed);
                        return ConnEnd::Clean;
                    }
                    Err(_) => return ConnEnd::Error,
                }
            }
            HeadParse::Partial => {}
        }
        match conn.read(&mut chunk) {
            // EOF with nothing buffered is the normal keep-alive end;
            // EOF mid-head is a truncated request.
            Ok(0) => {
                return if buf.is_empty() {
                    ConnEnd::Clean
                } else {
                    ConnEnd::Error
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Deadline hit. An idle keep-alive connection is a clean
                // close; a stalled partial head is the slow-loris case.
                return if buf.is_empty() {
                    ConnEnd::Clean
                } else {
                    ConnEnd::Timeout
                };
            }
            Err(_) => return ConnEnd::Error,
        }
    }
}
