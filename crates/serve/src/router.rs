//! Resource routing: map parsed requests onto the warm [`ServeState`]
//! with an exact, minimal error taxonomy.
//!
//! The routing model is FTL-flavoured: the path space is a fixed tree of
//! read-only resources, every leaf renders deterministically from state
//! built at startup, and every failure maps to one of a *small* set of
//! outcomes — `404 not_found` (the resource genuinely does not exist),
//! `400 bad_param` (the resource exists but the request's parameters do
//! not parse), `405 method_not_allowed` (the resource exists but not
//! under that verb) and `500 internal` (reserved for handler panics,
//! caught at the connection layer). No handler writes, so there is no
//! 2xx-with-side-effects ambiguity anywhere except the explicit
//! `POST /shutdown` control endpoint.

use crate::http::{escape_json, Method, Request, Response};
use crate::state::ServeState;
use webstruct_demand::curves::{cdf_series, Channel};
use webstruct_demand::model::StudySite;
use webstruct_util::ids::EntityId;

/// What the connection layer should do after sending the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Nothing — a plain resource response.
    None,
    /// The body must be the live metrics report (rendered by the server
    /// layer, which owns the counters).
    Metrics,
    /// Begin graceful shutdown after the response is written.
    Shutdown,
    /// Kick off a background epoch mutation + hot swap (the server layer
    /// owns the epoch manager). Fraction is carried in basis points so
    /// the variant stays `Copy + Eq` and exactly deterministic.
    EpochSwap {
        /// Mutation fraction in basis points (100 = 1% of sites).
        fraction_bp: u64,
        /// Seed for the mutation's site selection.
        seed: u64,
    },
}

/// A routed request: the response plus the follow-up action.
pub struct Routed {
    /// The response to send.
    pub response: Response,
    /// What to do after sending it.
    pub control: Control,
}

impl Routed {
    fn plain(response: Response) -> Self {
        Routed {
            response,
            control: Control::None,
        }
    }
}

fn not_found(detail: &str) -> Routed {
    Routed::plain(Response::error(404, "not_found", detail))
}

fn bad_param(detail: &str) -> Routed {
    Routed::plain(Response::error(400, "bad_param", detail))
}

fn method_not_allowed(detail: &str) -> Routed {
    Routed::plain(Response::error(405, "method_not_allowed", detail))
}

/// Route one parsed request against the state tree.
#[must_use]
pub fn route(state: &ServeState, req: &Request) -> Routed {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();

    // The one mutating control endpoint, POST-only by design: a GET to
    // it exercises the 405 arm of the taxonomy.
    if segments == ["shutdown"] {
        return match req.method {
            Method::Post => Routed {
                response: Response::ok_json("{\"shutting_down\": true}\n".to_string()),
                control: Control::Shutdown,
            },
            _ => method_not_allowed("/shutdown is POST-only"),
        };
    }
    // The hot-swap control endpoint: parameters parse here so taxonomy
    // errors stay in the router, but the swap itself runs in the server
    // layer (which owns the epoch manager and may not have one).
    if segments == ["admin", "epoch"] {
        return match req.method {
            Method::Post => {
                let fraction_bp = match req.query_param("fraction_bp") {
                    None => 100,
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(bp) if bp <= 10_000 => bp,
                        _ => return bad_param("fraction_bp must be an integer in 0..=10000"),
                    },
                };
                let seed = match req.query_param("seed") {
                    None => 1,
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(s) => s,
                        Err(_) => return bad_param("seed must be a non-negative integer"),
                    },
                };
                Routed {
                    // Body is a placeholder; the server layer substitutes
                    // the actual swap verdict (started / in-flight / off).
                    response: Response::ok_json(String::new()),
                    control: Control::EpochSwap { fraction_bp, seed },
                }
            }
            _ => method_not_allowed("/admin/epoch is POST-only"),
        };
    }
    if req.method == Method::Post {
        return method_not_allowed("resource endpoints are read-only");
    }

    match segments.as_slice() {
        [] => Routed::plain(index(state)),
        ["entity"] => entity_lookup(state, req),
        ["entity", id] => entity_card(state, id),
        ["sites"] => Routed::plain(sites_summary(state)),
        ["site", idx] => site_card(state, idx),
        ["coverage"] => Routed::plain(coverage_json(state)),
        ["coverage.csv"] => Routed::plain(coverage_csv(state)),
        ["demand", site, file] => demand_csv(state, site, file),
        ["figures"] => Routed::plain(figures_index(state)),
        ["figure", file] => figure_csv(state, file),
        ["metrics"] => Routed {
            // Body is a placeholder; the server layer substitutes the
            // live report (it owns the counters this endpoint publishes).
            response: Response::ok_json(String::new()),
            control: Control::Metrics,
        },
        _ => not_found("no such resource"),
    }
}

/// `GET /` — the resource tree, so the server is self-describing.
fn index(state: &ServeState) -> Response {
    let body = format!(
        "{{\n  \"service\": \"webstruct-serve\",\n  \"domain\": \"{}\",\n  \"scale\": {},\n  \
         \"epoch\": {},\n  \"entities\": {},\n  \"sites\": {},\n  \"endpoints\": [\"/\", \
         \"/entity/{{id}}\", \"/entity?phone=|isbn=|homepage=\", \"/sites\", \"/site/{{idx}}\", \
         \"/coverage\", \"/coverage.csv\", \"/demand/{{site}}/{{channel}}.csv\", \"/figures\", \
         \"/figure/{{id}}.csv\", \"/metrics\", \"POST /admin/epoch\", \"POST /shutdown\"]\n}}\n",
        state.domain.slug(),
        state.config.scale,
        state.report.epoch,
        state.catalog.len(),
        state.n_sites(),
    );
    Response::ok_json(body)
}

/// `GET /entity?phone=…|isbn=…|homepage=…` — the catalog's identifier
/// indexes, i.e. the entity-resolution read path.
fn entity_lookup(state: &ServeState, req: &Request) -> Routed {
    let found = if let Some(phone) = req.query_param("phone") {
        let digits: String = phone.chars().filter(char::is_ascii_digit).collect();
        let Ok(digits) = digits.parse::<u64>() else {
            return bad_param("phone must contain digits");
        };
        state.catalog.by_phone(digits)
    } else if let Some(isbn) = req.query_param("isbn") {
        match webstruct_corpus::isbn::Isbn::parse(isbn) {
            Ok(parsed) => state.catalog.by_isbn(parsed.core()),
            Err(_) => return bad_param("isbn must be a valid ISBN-10/13"),
        }
    } else if let Some(host) = req.query_param("homepage") {
        if host.is_empty() {
            return bad_param("homepage must be a hostname");
        }
        state.catalog.by_homepage(host)
    } else {
        return bad_param("expected one of phone=, isbn=, homepage=");
    };
    match found {
        Some(id) => Routed::plain(render_entity(state, id)),
        None => not_found("no entity matches that identifier"),
    }
}

/// `GET /entity/{id}` — one entity card.
fn entity_card(state: &ServeState, id: &str) -> Routed {
    let Ok(raw) = id.parse::<u32>() else {
        return bad_param("entity id must be a non-negative integer");
    };
    if raw as usize >= state.catalog.len() {
        return not_found("entity id out of range");
    }
    Routed::plain(render_entity(state, EntityId::new(raw)))
}

fn render_entity(state: &ServeState, id: EntityId) -> Response {
    let entity = state.catalog.entity(id);
    let sites = &state.entity_sites[id.index()];
    let rank = id.index();
    let mut demand = String::new();
    for study in &state.traffic {
        let (s, b) = (
            study.demand_search.get(rank).copied().unwrap_or(0),
            study.demand_browse.get(rank).copied().unwrap_or(0),
        );
        demand.push_str(&format!(
            "    {{\"site\": \"{}\", \"search\": {s}, \"browse\": {b}}},\n",
            study.site.slug()
        ));
    }
    let demand = demand.trim_end_matches(",\n").to_string();
    let body = format!(
        "{{\n  \"id\": {},\n  \"name\": \"{}\",\n  \"rank\": {rank},\n  \"region\": {},\n  \
         \"phone\": {},\n  \"homepage\": {},\n  \"isbn\": {},\n  \"site_count\": {},\n  \
         \"sites_head\": {:?},\n  \"demand\": [\n{demand}\n  ]\n}}\n",
        id.raw(),
        escape_json(&entity.name),
        entity.region.raw(),
        entity
            .phone
            .map_or_else(|| "null".into(), |p| format!("\"{p}\"")),
        entity
            .homepage
            .as_ref()
            .map_or_else(|| "null".into(), |h| format!("\"{}\"", escape_json(h))),
        entity
            .isbn
            .map_or_else(|| "null".into(), |i| format!("\"{i}\"")),
        sites.len(),
        &sites[..sites.len().min(16)],
    );
    Response::ok_json(body)
}

/// `GET /sites` — corpus-wide site summary.
fn sites_summary(state: &ServeState) -> Response {
    let n = state.n_sites();
    let occupied = state.site_lists.iter().filter(|l| !l.is_empty()).count();
    let max_entities = state.site_lists.iter().map(Vec::len).max().unwrap_or(0);
    let body = format!(
        "{{\n  \"sites\": {n},\n  \"sites_with_extractions\": {occupied},\n  \
         \"occurrences\": {},\n  \"max_entities_on_one_site\": {max_entities},\n  \
         \"attribute\": \"{}\"\n}}\n",
        state.report.occurrences,
        state.attr.slug(),
    );
    Response::ok_json(body)
}

/// `GET /site/{idx}` — one site's extracted entities (per-site coverage).
fn site_card(state: &ServeState, idx: &str) -> Routed {
    let Ok(site) = idx.parse::<usize>() else {
        return bad_param("site index must be a non-negative integer");
    };
    let Some(entities) = state.site_lists.get(site) else {
        return not_found("site index out of range");
    };
    let coverage = entities.len() as f64 / state.catalog.len().max(1) as f64;
    let ids: Vec<u32> = entities.iter().take(64).map(|e| e.raw()).collect();
    let body = format!(
        "{{\n  \"site\": {site},\n  \"entities\": {},\n  \"coverage\": {coverage},\n  \
         \"entities_head\": {ids:?}\n}}\n",
        entities.len(),
    );
    Routed::plain(Response::ok_json(body))
}

/// `GET /coverage` — the epoch's k-coverage curve and pipeline stats.
fn coverage_json(state: &ServeState) -> Response {
    let r = &state.report;
    let body = format!(
        "{{\n  \"epoch\": {},\n  \"k_coverage\": {:?},\n  \"occurrences\": {},\n  \
         \"graph_edges\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"output_digest\": \"{}\"\n}}\n",
        r.epoch,
        r.coverages,
        r.occurrences,
        r.graph_edges,
        r.cache_hits,
        r.cache_misses,
        r.digest_hex(),
    );
    Response::ok_json(body)
}

/// `GET /coverage.csv` — the same curve as rows.
fn coverage_csv(state: &ServeState) -> Response {
    let mut body = String::from("k,coverage\n");
    for (i, c) in state.report.coverages.iter().enumerate() {
        body.push_str(&format!("{},{c}\n", i + 1));
    }
    Response::ok_csv(body)
}

/// `GET /demand/{site}/{channel}.csv` — one site's demand CDF.
fn demand_csv(state: &ServeState, site: &str, file: &str) -> Routed {
    let Some(site) = StudySite::ALL.iter().copied().find(|s| s.slug() == site) else {
        return not_found("unknown study site");
    };
    let channel = match file {
        "search.csv" => Channel::Search,
        "browse.csv" => Channel::Browse,
        _ => return not_found("channel must be search.csv or browse.csv"),
    };
    let study = state
        .study(site)
        .expect("every study site is simulated at startup");
    let series = cdf_series(study, channel, 101);
    let mut body = String::from("inventory_fraction,cumulative_demand\n");
    for (x, y) in &series.points {
        body.push_str(&format!("{x},{y}\n"));
    }
    Routed::plain(Response::ok_csv(body))
}

/// `GET /figures` — the figure catalog.
fn figures_index(state: &ServeState) -> Response {
    let mut body = String::from("{\n  \"figures\": [\n");
    for (i, f) in state.figures.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"series\": {}}}{}\n",
            escape_json(&f.id),
            escape_json(&f.title),
            f.series.len(),
            if i + 1 < state.figures.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    Response::ok_json(body)
}

/// `GET /figure/{id}.csv` — a figure in `.dat` form.
fn figure_csv(state: &ServeState, file: &str) -> Routed {
    let Some(id) = file.strip_suffix(".csv") else {
        return not_found("figure exports are .csv");
    };
    match state.figure(id) {
        Some(fig) => Routed::plain(Response::ok_csv(fig.to_dat())),
        None => not_found("unknown figure id"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, Parse};
    use webstruct_core::study::StudyConfig;
    use webstruct_corpus::domain::Domain;
    use webstruct_util::Seed;

    fn state() -> ServeState {
        let dir = std::env::temp_dir()
            .join(format!("webstruct-serve-router-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig::quick().with_scale(0.02).with_seed(Seed(4));
        ServeState::build(Domain::Restaurants, config, &dir, 2).unwrap()
    }

    fn get(state: &ServeState, target: &str) -> Routed {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let Parse::Complete(req, _) = parse_request(raw.as_bytes()) else {
            panic!("test request must parse");
        };
        route(state, &req)
    }

    #[test]
    fn taxonomy_covers_the_path_space() {
        let s = state();
        assert_eq!(get(&s, "/").response.status, 200);
        assert_eq!(get(&s, "/entity/0").response.status, 200);
        assert_eq!(get(&s, "/entity/banana").response.status, 400);
        assert_eq!(get(&s, "/entity/999999999").response.status, 404);
        assert_eq!(get(&s, "/entity").response.status, 400);
        assert_eq!(get(&s, "/sites").response.status, 200);
        assert_eq!(get(&s, "/site/0").response.status, 200);
        assert_eq!(get(&s, "/site/999999999").response.status, 404);
        assert_eq!(get(&s, "/coverage").response.status, 200);
        assert_eq!(get(&s, "/coverage.csv").response.status, 200);
        assert_eq!(get(&s, "/demand/yelp/search.csv").response.status, 200);
        assert_eq!(get(&s, "/demand/nosuch/search.csv").response.status, 404);
        assert_eq!(get(&s, "/demand/yelp/frobnicate.csv").response.status, 404);
        assert_eq!(get(&s, "/figures").response.status, 200);
        assert_eq!(get(&s, "/figure/fig6-cdf-search.csv").response.status, 200);
        assert_eq!(get(&s, "/figure/nope.csv").response.status, 404);
        assert_eq!(get(&s, "/nothing/here").response.status, 404);
        // The 405 arms.
        assert_eq!(get(&s, "/shutdown").response.status, 405);
        let raw = b"POST /coverage HTTP/1.1\r\n\r\n";
        let Parse::Complete(req, _) = parse_request(raw) else {
            panic!()
        };
        assert_eq!(route(&s, &req).response.status, 405);
        // Shutdown control flows through.
        let raw = b"POST /shutdown HTTP/1.1\r\n\r\n";
        let Parse::Complete(req, _) = parse_request(raw) else {
            panic!()
        };
        let routed = route(&s, &req);
        assert_eq!(routed.response.status, 200);
        assert_eq!(routed.control, Control::Shutdown);
    }

    #[test]
    fn admin_epoch_parses_params_and_rejects_garbage() {
        let s = state();
        // GET → 405, like /shutdown.
        assert_eq!(get(&s, "/admin/epoch").response.status, 405);
        // POST with defaults.
        let post = |target: &str| {
            let raw = format!("POST {target} HTTP/1.1\r\n\r\n");
            let Parse::Complete(req, _) = parse_request(raw.as_bytes()) else {
                panic!("test request must parse");
            };
            route(&s, &req)
        };
        let routed = post("/admin/epoch");
        assert_eq!(
            routed.control,
            Control::EpochSwap {
                fraction_bp: 100,
                seed: 1
            }
        );
        let routed = post("/admin/epoch?fraction_bp=250&seed=9");
        assert_eq!(
            routed.control,
            Control::EpochSwap {
                fraction_bp: 250,
                seed: 9
            }
        );
        assert_eq!(post("/admin/epoch?fraction_bp=10001").response.status, 400);
        assert_eq!(post("/admin/epoch?fraction_bp=banana").response.status, 400);
        assert_eq!(post("/admin/epoch?seed=-3").response.status, 400);
    }

    #[test]
    fn identifier_lookup_roundtrips() {
        let s = state();
        // Find an entity with a phone and look it up through the index.
        let with_phone = (0..s.catalog.len())
            .map(|i| s.catalog.entity(EntityId::new(i as u32)))
            .find(|e| e.phone.is_some())
            .expect("restaurants have phones");
        let digits = with_phone.phone.unwrap().digits();
        let routed = get(&s, &format!("/entity?phone={digits}"));
        assert_eq!(routed.response.status, 200);
        let body = String::from_utf8(routed.response.body).unwrap();
        assert!(body.contains(&format!("\"id\": {}", with_phone.id.raw())));
        // Unknown phone → 404, garbage phone → 400.
        assert_eq!(get(&s, "/entity?phone=000000000").response.status, 404);
        assert_eq!(get(&s, "/entity?phone=xyz").response.status, 400);
    }

    #[test]
    fn routing_is_deterministic() {
        let s = state();
        for target in ["/", "/entity/3", "/coverage", "/demand/imdb/browse.csv"] {
            let a = get(&s, target).response;
            let b = get(&s, target).response;
            assert_eq!(a, b, "{target} must render identically");
        }
    }
}
