//! Live epoch hot-swap: the serving state behind an atomically
//! swappable handle, plus the background manager that rebuilds it.
//!
//! The protocol is publish-subscribe over an [`Arc`] (std-only — an
//! `RwLock<Arc<_>>` whose write critical section is a single pointer
//! store): every request loads the current [`ServeEpoch`] once and
//! serves entirely from that snapshot, so a swap mid-connection is
//! invisible — in-flight requests finish against the old epoch's bytes,
//! the next request on the same connection picks up the new one. Nothing
//! is ever invalidated in place; the old epoch's cache stays byte-exact
//! until its last reader drops it.
//!
//! The [`EpochManager`] owns the long-lived [`Epoch`] and the store
//! directory. `POST /admin/epoch` (or `webstruct serve --watch`) calls
//! [`EpochManager::begin_swap`], which runs `Epoch::mutate` + the
//! dirty-slice recompute on a detached thread and publishes the rebuilt
//! state without dropping connections. At most one swap runs at a time
//! (`409 swap_in_progress` otherwise); a failed rebuild publishes
//! nothing, so the server keeps answering from the last good epoch.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::cache::ResponseCache;
use crate::state::ServeState;
use webstruct_core::epoch::Epoch;
use webstruct_util::Seed;

/// One published epoch: the immutable state, its pre-rendered response
/// cache, and the validator every 200 in this epoch is stamped with.
pub struct ServeEpoch {
    /// The warm serving state.
    pub state: Arc<ServeState>,
    /// The per-epoch response cache.
    pub cache: ResponseCache,
    /// The entity validator: `"{epoch}-{digest16}"`, quoted. Derived
    /// from the epoch output digest, so two epochs serving different
    /// bytes can never share a tag.
    pub etag: Arc<str>,
    /// The epoch counter (mirrors `report.epoch`).
    pub version: u64,
}

impl ServeEpoch {
    /// Wrap freshly built state: derive the ETag and pre-render the
    /// cache.
    #[must_use]
    pub fn new(state: Arc<ServeState>) -> Self {
        let version = u64::from(state.report.epoch);
        let etag: Arc<str> =
            Arc::from(format!("\"{}-{}\"", version, &state.report.digest_hex()[..16]));
        let cache = ResponseCache::build(&state);
        ServeEpoch {
            state,
            cache,
            etag,
            version,
        }
    }
}

/// The swappable handle the server and every worker share.
pub struct SharedServing {
    current: RwLock<Arc<ServeEpoch>>,
    swaps: AtomicU64,
}

impl SharedServing {
    /// Wrap the boot epoch.
    #[must_use]
    pub fn new(epoch: ServeEpoch) -> Self {
        SharedServing {
            current: RwLock::new(Arc::new(epoch)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Snapshot the current epoch. One load per request; the returned
    /// `Arc` keeps that epoch's bytes alive for the response even if a
    /// swap lands mid-flight.
    #[must_use]
    pub fn load(&self) -> Arc<ServeEpoch> {
        self.current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Publish a new epoch (the swap point) and bump the swap counter.
    pub fn publish(&self, epoch: ServeEpoch) {
        let next = Arc::new(epoch);
        *self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// How many swaps have been published since boot.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// Owns the long-lived [`Epoch`] and rebuilds serving state from it in
/// the background.
pub struct EpochManager {
    epoch: Mutex<Epoch>,
    dir: PathBuf,
    threads: usize,
    in_flight: AtomicBool,
}

impl EpochManager {
    /// Take ownership of the epoch the server booted from.
    #[must_use]
    pub fn new(epoch: Epoch, dir: PathBuf, threads: usize) -> Self {
        EpochManager {
            epoch: Mutex::new(epoch),
            dir,
            threads,
            in_flight: AtomicBool::new(false),
        }
    }

    /// Start a background mutate-and-rebuild, publishing into `shared`
    /// on success. Returns `false` (and does nothing) if a swap is
    /// already in flight — the caller answers `409`.
    pub fn begin_swap(
        self: &Arc<Self>,
        shared: &Arc<SharedServing>,
        fraction_bp: u64,
        seed: u64,
    ) -> bool {
        if self.in_flight.swap(true, Ordering::AcqRel) {
            return false;
        }
        let mgr = Arc::clone(self);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("epoch-swap".into())
            .spawn(move || {
                let _span = webstruct_util::span!("serve.swap", fraction_bp);
                let mut epoch = mgr
                    .epoch
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                #[allow(clippy::cast_precision_loss)]
                let fraction = fraction_bp as f64 / 10_000.0;
                epoch.mutate(fraction, Seed(seed));
                // The dirty-slice recompute: only mutated sites re-run.
                match ServeState::from_epoch(&epoch, &mgr.dir, mgr.threads) {
                    Ok(state) => shared.publish(ServeEpoch::new(Arc::new(state))),
                    Err(_) => {
                        // Keep serving the last good epoch. The mutated
                        // Epoch stays; a retry will re-run its dirty
                        // slice.
                    }
                }
                drop(epoch);
                mgr.in_flight.store(false, Ordering::Release);
            })
            .expect("spawn epoch-swap thread");
        true
    }

    /// Whether a swap is currently running.
    #[must_use]
    pub fn swap_in_flight(&self) -> bool {
        self.in_flight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_core::study::StudyConfig;
    use webstruct_corpus::domain::Domain;

    fn boot(tag: &str) -> (Arc<SharedServing>, Arc<EpochManager>) {
        let dir =
            std::env::temp_dir().join(format!("webstruct-serve-swap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig::quick().with_scale(0.02).with_seed(Seed(4));
        let epoch = Epoch::new(Domain::Restaurants, config);
        let state = ServeState::from_epoch(&epoch, &dir, 2).unwrap();
        let shared = Arc::new(SharedServing::new(ServeEpoch::new(Arc::new(state))));
        let mgr = Arc::new(EpochManager::new(epoch, dir, 2));
        (shared, mgr)
    }

    #[test]
    fn swap_publishes_a_new_versioned_epoch() {
        let (shared, mgr) = boot("publish");
        let before = shared.load();
        assert_eq!(shared.swaps(), 0);
        assert!(mgr.begin_swap(&shared, 100, 7));
        // A second swap while one is in flight is refused...
        // (the rebuild takes long enough that this races reliably; if it
        // already finished, begin_swap legitimately returns true, so only
        // assert the final state).
        while mgr.swap_in_flight() {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let after = shared.load();
        assert_eq!(shared.swaps(), 1);
        assert_eq!(after.version, before.version + 1);
        assert_ne!(after.etag, before.etag);
        // The old snapshot is still fully usable.
        assert!(before.cache.lookup(&before.state, "/coverage").is_some());
    }
}
