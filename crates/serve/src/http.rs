//! An incremental HTTP/1.1 request parser and response writer, std-only.
//!
//! The parser is a pure function over a byte prefix: `parse_request`
//! inspects whatever bytes have arrived so far and returns either a
//! complete request (plus how many bytes it consumed — the pipelining
//! contract), a "keep reading" verdict, or an [`HttpError`] naming the
//! exact taxonomy variant. Purity over prefixes is what makes torn reads
//! trivially correct: a socket may deliver the head one byte at a time
//! and the caller just re-parses the growing buffer. It also makes the
//! parser directly property-testable — every split point of a valid
//! request must parse `Partial` before the head terminator and
//! `Complete` with identical fields after it.
//!
//! ## Error taxonomy
//!
//! Every malformed input maps to exactly one [`HttpError`] variant and
//! one status code; nothing panics on arbitrary bytes (the adversarial
//! tests feed seeded garbage to prove it):
//!
//! | variant              | status | trigger                                    |
//! |----------------------|--------|--------------------------------------------|
//! | `BadRequestLine`     | 400    | malformed method/target/version syntax     |
//! | `BadHeader`          | 400    | header line without `: ` or bad name chars |
//! | `MethodUnsupported`  | 405    | well-formed token other than GET/HEAD/POST |
//! | `VersionUnsupported` | 505    | well-formed `HTTP/x.y` other than 1.0/1.1  |
//! | `HeadTooLarge`       | 431    | head > [`MAX_HEAD_BYTES`] or > [`MAX_HEADERS`] lines |
//! | `BodyUnsupported`    | 413    | nonzero `Content-Length` / any `Transfer-Encoding` |

use std::io::Write;
use std::sync::Arc;

/// Hard ceiling on the request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard ceiling on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Hard ceiling on the method token length (longest real method is 7).
pub const MAX_METHOD_LEN: usize = 16;

/// The request-parse error taxonomy. Each variant carries its HTTP
/// status and a stable machine-readable slug used in error bodies and
/// asserted exactly by the adversarial tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD SP target SP HTTP/x.y`.
    BadRequestLine,
    /// A header line is not `name: value` with a valid token name.
    BadHeader,
    /// A syntactically valid method we do not serve.
    MethodUnsupported,
    /// A syntactically valid HTTP version other than 1.0/1.1.
    VersionUnsupported,
    /// The head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`].
    HeadTooLarge,
    /// The request announced a body; every resource here is read-only.
    BodyUnsupported,
}

impl HttpError {
    /// The status code this error maps to.
    #[must_use]
    pub fn status(self) -> u16 {
        match self {
            HttpError::BadRequestLine | HttpError::BadHeader => 400,
            HttpError::MethodUnsupported => 405,
            HttpError::VersionUnsupported => 505,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyUnsupported => 413,
        }
    }

    /// Stable slug used in JSON error bodies.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::BadHeader => "bad_header",
            HttpError::MethodUnsupported => "method_unsupported",
            HttpError::VersionUnsupported => "version_unsupported",
            HttpError::HeadTooLarge => "head_too_large",
            HttpError::BodyUnsupported => "body_unsupported",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.slug())
    }
}

/// The methods the serving layer answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Like GET, but the response carries headers only.
    Head,
    /// Mutating control endpoints (`/shutdown`).
    Post,
}

impl Method {
    /// The wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        }
    }
}

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query parameters in request order (`k=v` pairs; bare keys get
    /// empty values).
    pub query: Vec<(String, String)>,
    /// The `If-None-Match` header value, verbatim, if the client sent
    /// one (conditional-GET revalidation against the epoch ETag).
    pub if_none_match: Option<String>,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Whether the connection should stay open after the response
    /// (version default adjusted by any `Connection` header).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Materialise an owned request from a borrowed head — the slow
    /// path's single allocation point.
    #[must_use]
    pub fn from_head(head: &RequestHead<'_>) -> Self {
        Request {
            method: head.method,
            path: head.path.to_string(),
            query: parse_query(head.query_raw),
            if_none_match: head.if_none_match.map(str::to_string),
            http11: head.http11,
            keep_alive: head.keep_alive,
        }
    }
}

/// A parsed request head borrowing straight from the connection buffer —
/// the zero-allocation view the cached fast path routes on. The owned
/// [`Request`] is derived from this via [`Request::from_head`] only when
/// a request actually needs the full router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHead<'a> {
    /// The method.
    pub method: Method,
    /// Path component of the target, without the query string.
    pub path: &'a str,
    /// The raw query string after `?` (empty if none) — parsed into
    /// pairs only on the slow path.
    pub query_raw: &'a str,
    /// The `If-None-Match` header value, verbatim, if present.
    pub if_none_match: Option<&'a str>,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Outcome of parsing the bytes received so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A full head was parsed; `usize` is the bytes consumed (the next
    /// pipelined request, if any, starts there).
    Complete(Request, usize),
    /// No head terminator yet — read more bytes and re-parse.
    Partial,
    /// The prefix is already irrecoverably malformed.
    Error(HttpError),
}

/// Borrowed-head variant of [`Parse`], returned by [`parse_head`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadParse<'a> {
    /// A full head was parsed; `usize` is the bytes consumed.
    Complete(RequestHead<'a>, usize),
    /// No head terminator yet — read more bytes and re-parse.
    Partial,
    /// The prefix is already irrecoverably malformed.
    Error(HttpError),
}

/// RFC 7230 token characters, the legal alphabet for header names.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Case-insensitive substring search over ASCII bytes (the `Connection`
/// header tokens), allocation-free.
fn contains_ignore_case(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

/// Parse the request head at the front of `buf`.
///
/// Pure over prefixes: for a fixed well-formed request, every proper
/// prefix of its head parses `Partial` and every extension past the head
/// parses `Complete` with identical fields and the same consumed count.
/// Owned-allocation convenience wrapper around [`parse_head`].
#[must_use]
pub fn parse_request(buf: &[u8]) -> Parse {
    match parse_head(buf) {
        HeadParse::Complete(head, consumed) => {
            Parse::Complete(Request::from_head(&head), consumed)
        }
        HeadParse::Partial => Parse::Partial,
        HeadParse::Error(e) => Parse::Error(e),
    }
}

/// Parse the request head at the front of `buf` without allocating: every
/// field of the returned [`RequestHead`] borrows from `buf`. This is the
/// hot-path entry point — a cache hit is served without ever building an
/// owned [`Request`].
#[must_use]
pub fn parse_head(buf: &[u8]) -> HeadParse<'_> {
    // Locate the head terminator within the size budget first, so an
    // attacker streaming an unbounded head is cut off at the limit no
    // matter how the bytes are framed.
    let search_limit = buf.len().min(MAX_HEAD_BYTES + 4);
    let head_end = find_crlfcrlf(&buf[..search_limit]);
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD_BYTES {
            return HeadParse::Error(HttpError::HeadTooLarge);
        }
        return HeadParse::Partial;
    };
    if head_end > MAX_HEAD_BYTES {
        return HeadParse::Error(HttpError::HeadTooLarge);
    }
    let head = &buf[..head_end];
    let consumed = head_end + 4;

    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        // Lines are CRLF-delimited; `split('\n')` leaves the CR.
        l.strip_suffix(b"\r").unwrap_or(l)
    });
    let request_line = lines.next().unwrap_or(b"");

    // Request line: METHOD SP target SP HTTP/x.y — single spaces, no
    // leading whitespace, exactly three fields.
    let mut fields = request_line.split(|&b| b == b' ');
    let (Some(method_b), Some(target_b), Some(version_b), None) =
        (fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return HeadParse::Error(HttpError::BadRequestLine);
    };
    if method_b.is_empty()
        || method_b.len() > MAX_METHOD_LEN
        || !method_b.iter().all(|&b| b.is_ascii_uppercase())
    {
        return HeadParse::Error(HttpError::BadRequestLine);
    }
    let method = match method_b {
        b"GET" => Some(Method::Get),
        b"HEAD" => Some(Method::Head),
        b"POST" => Some(Method::Post),
        _ => None,
    };
    if target_b.is_empty() || target_b[0] != b'/' || !target_b.is_ascii() {
        return HeadParse::Error(HttpError::BadRequestLine);
    }
    let http11 = match version_b {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        v if v.len() == 8 && v.starts_with(b"HTTP/") => {
            return HeadParse::Error(HttpError::VersionUnsupported)
        }
        _ => return HeadParse::Error(HttpError::BadRequestLine),
    };
    // Method dispatch happens after version syntax, so "FROB / HTTP/1.1"
    // reports the method problem, not a phantom syntax error.
    let Some(method) = method else {
        return HeadParse::Error(HttpError::MethodUnsupported);
    };

    // Headers. The last `Connection` header wins (matching the previous
    // owned parser, which overwrote on repeats); values are inspected
    // in place, case-insensitively, so nothing is copied.
    let mut n_headers = 0usize;
    let mut connection: Option<&[u8]> = None;
    let mut if_none_match: Option<&[u8]> = None;
    let mut content_length = 0u64;
    let mut has_transfer_encoding = false;
    for line in lines {
        if line.is_empty() {
            // Head split produced a trailing empty slice only if the head
            // ended with a bare CRLF pair, which find_crlfcrlf excludes.
            return HeadParse::Error(HttpError::BadHeader);
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return HeadParse::Error(HttpError::HeadTooLarge);
        }
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            return HeadParse::Error(HttpError::BadHeader);
        };
        let name = &line[..colon];
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return HeadParse::Error(HttpError::BadHeader);
        }
        let value = trim_ascii(&line[colon + 1..]);
        if !value.is_ascii() {
            return HeadParse::Error(HttpError::BadHeader);
        }
        if name.eq_ignore_ascii_case(b"connection") {
            connection = Some(value);
        } else if name.eq_ignore_ascii_case(b"content-length") {
            let Ok(n) = std::str::from_utf8(value)
                .ok()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or(())
            else {
                return HeadParse::Error(HttpError::BadHeader);
            };
            content_length = n;
        } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
            has_transfer_encoding = true;
        } else if name.eq_ignore_ascii_case(b"if-none-match") {
            if_none_match = Some(value);
        }
    }
    if content_length > 0 || has_transfer_encoding {
        return HeadParse::Error(HttpError::BodyUnsupported);
    }

    let keep_alive = match connection {
        Some(c) if contains_ignore_case(c, b"close") => false,
        Some(c) if contains_ignore_case(c, b"keep-alive") => true,
        _ => http11,
    };

    // Target and header values were ASCII-checked above, so the UTF-8
    // views are infallible.
    let target = std::str::from_utf8(target_b).expect("target is ASCII");
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    HeadParse::Complete(
        RequestHead {
            method,
            path,
            query_raw,
            if_none_match: if_none_match
                .map(|v| std::str::from_utf8(v).expect("header value is ASCII")),
            http11,
            keep_alive,
        },
        consumed,
    )
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = b {
        b = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = b {
        b = rest;
    }
    b
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// The response side: status, content type, body — rendered with a
/// fixed, deterministic header set (no `Date`, no `Server` nonce), so a
/// byte digest of the wire form is comparable across runs and thread
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Optional `ETag` header (the epoch validator); `None` on error and
    /// control responses. Shared, because every response in one epoch
    /// carries the same tag.
    pub etag: Option<Arc<str>>,
}

impl Response {
    /// 200 with a JSON body.
    #[must_use]
    pub fn ok_json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            etag: None,
        }
    }

    /// 200 with a CSV body (figure `.dat` exports).
    #[must_use]
    pub fn ok_csv(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            body: body.into_bytes(),
            etag: None,
        }
    }

    /// 200 with a plain-text body.
    #[must_use]
    pub fn ok_text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            etag: None,
        }
    }

    /// A 304 with no body: the client's cached representation (matched
    /// via `If-None-Match`) is still current. `content_type` mirrors what
    /// the 200 would have carried so the wire head stays deterministic.
    #[must_use]
    pub fn not_modified(content_type: &'static str, etag: Arc<str>) -> Self {
        Response {
            status: 304,
            content_type,
            body: Vec::new(),
            etag: Some(etag),
        }
    }

    /// A taxonomy error response: `{"error": <slug>, "detail": ...}`.
    #[must_use]
    pub fn error(status: u16, slug: &str, detail: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!(
                "{{\"error\": \"{}\", \"detail\": \"{}\"}}\n",
                escape_json(slug),
                escape_json(detail)
            )
            .into_bytes(),
            etag: None,
        }
    }

    /// The response for a request-parse failure.
    #[must_use]
    pub fn from_http_error(e: HttpError) -> Self {
        Response::error(e.status(), e.slug(), "request rejected by the parser")
    }

    /// Attach the epoch ETag (builder style).
    #[must_use]
    pub fn with_etag(mut self, etag: Arc<str>) -> Self {
        self.etag = Some(etag);
        self
    }

    /// Serialize head + body (body omitted for HEAD requests, per spec —
    /// `Content-Length` still reports the entity size).
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool, head_only: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 160);
        self.write_into(&mut out, keep_alive, head_only);
        out
    }

    /// Append the wire form to `out` without intermediate allocation —
    /// the per-connection reusable-buffer path. `out` is not cleared;
    /// callers own its lifecycle.
    pub fn write_into(&self, out: &mut Vec<u8>, keep_alive: bool, head_only: bool) {
        write_response_head(
            out,
            self.status,
            self.content_type,
            self.body.len(),
            self.etag.as_deref(),
            keep_alive,
        );
        if !head_only {
            out.extend_from_slice(&self.body);
        }
    }

    /// Write the response to `w`; returns bytes written.
    ///
    /// # Errors
    /// Propagates I/O errors (a mid-response client disconnect lands
    /// here).
    pub fn write_to(
        &self,
        w: &mut impl Write,
        keep_alive: bool,
        head_only: bool,
    ) -> std::io::Result<usize> {
        let bytes = self.to_bytes(keep_alive, head_only);
        w.write_all(&bytes)?;
        w.flush()?;
        Ok(bytes.len())
    }

    /// Which counter class (2/4/5) this status belongs to.
    #[must_use]
    pub fn class(&self) -> u16 {
        self.status / 100
    }
}

/// Append a deterministic response head to `out`: status line,
/// `Content-Type`, `Content-Length`, optional `ETag`, `Connection`,
/// blank line. `write!` into a `Vec<u8>` formats integers in place, so a
/// head whose buffer already has capacity costs zero heap allocations —
/// the property the cached fast path is built on.
pub fn write_response_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body_len: usize,
    etag: Option<&str>,
    keep_alive: bool,
) {
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason_phrase(status),
        content_type,
        body_len,
    );
    if let Some(tag) = etag {
        let _ = write!(out, "ETag: {tag}\r\n");
    }
    let _ = write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    );
}

/// Whether an `If-None-Match` header matches `etag`. Accepts a
/// comma-separated list and the `*` wildcard; anything else (including
/// malformed or unquoted tags) simply fails to match — a conditional
/// request with a garbage validator degrades to an unconditional GET.
#[must_use]
pub fn if_none_match_matches(header: &str, etag: &str) -> bool {
    header
        .split(',')
        .map(str::trim)
        .any(|tag| tag == "*" || tag == etag)
}

/// The standard reason phrase for the statuses this server emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Minimal JSON string escaping for bodies assembled by hand.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::rng::{Seed, Xoshiro256};

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parse::Complete(r, n) => (r, n),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    fn error(buf: &[u8]) -> HttpError {
        match parse_request(buf) {
            Parse::Error(e) => e,
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_plain_get() {
        let raw: &[u8] = b"GET /entity/7?channel=search HTTP/1.1\r\nHost: x\r\n\r\n";
        let (r, n) = complete(raw);
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/entity/7");
        assert_eq!(r.query_param("channel"), Some("search"));
        assert!(r.http11);
        assert!(r.keep_alive);
        assert_eq!(n, raw.len());
    }

    #[test]
    fn http10_defaults_to_close_and_connection_header_overrides() {
        let (r, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive);
        let (r, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
        let (r, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
    }

    #[test]
    fn torn_reads_at_every_byte_boundary() {
        // The incremental contract, exhaustively: every proper prefix of
        // the head is Partial, every completion point parses identically.
        let raw: &[u8] = b"GET /coverage.csv?k=3 HTTP/1.1\r\nHost: a.example\r\nAccept: text/csv\r\n\r\nGET";
        let (full, consumed) = complete(raw);
        for cut in 0..consumed {
            assert_eq!(
                parse_request(&raw[..cut]),
                Parse::Partial,
                "prefix of {cut} bytes should be Partial"
            );
        }
        for cut in consumed..=raw.len() {
            let (r, n) = complete(&raw[..cut]);
            assert_eq!(r, full, "request changed at cut {cut}");
            assert_eq!(n, consumed, "consumed changed at cut {cut}");
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_head() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r1, n1) = complete(raw);
        assert_eq!(r1.path, "/a");
        let (r2, n2) = complete(&raw[n1..]);
        assert_eq!(r2.path, "/b");
        assert_eq!(n1 + n2, raw.len());
    }

    #[test]
    fn taxonomy_is_exact() {
        assert_eq!(error(b"GET/ HTTP/1.1\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"get / HTTP/1.1\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"GET  / HTTP/1.1\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"GET x HTTP/1.1\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"GET / HTTP/1.1 extra\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"GET / POTATO/9\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(error(b"DELETE / HTTP/1.1\r\n\r\n"), HttpError::MethodUnsupported);
        assert_eq!(error(b"BREW / HTTP/1.1\r\n\r\n"), HttpError::MethodUnsupported);
        assert_eq!(error(b"GET / HTTP/2.0\r\n\r\n"), HttpError::VersionUnsupported);
        assert_eq!(error(b"GET / HTTP/0.9\r\n\r\n"), HttpError::VersionUnsupported);
        assert_eq!(error(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"), HttpError::BadHeader);
        assert_eq!(error(b"GET / HTTP/1.1\r\n: empty\r\n\r\n"), HttpError::BadHeader);
        assert_eq!(
            error(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n"),
            HttpError::BadHeader
        );
        assert_eq!(
            error(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n"),
            HttpError::BodyUnsupported
        );
        assert_eq!(
            error(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpError::BodyUnsupported
        );
    }

    #[test]
    fn version_problem_outranks_method_problem() {
        // Both wrong: the version error wins (we could not serve any
        // method at that version).
        assert_eq!(error(b"BREW / HTTP/3.0\r\n\r\n"), HttpError::VersionUnsupported);
    }

    #[test]
    fn oversized_heads_are_cut_off() {
        // A huge single header with no terminator: rejected as soon as
        // the prefix passes the budget, even though more bytes may come.
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES));
        assert_eq!(error(&raw), HttpError::HeadTooLarge);
        // Too many small headers, properly terminated.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend(format!("X-H{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert_eq!(error(&raw), HttpError::HeadTooLarge);
    }

    #[test]
    fn zero_content_length_is_fine() {
        let (r, _) = complete(b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(r.method, Method::Post);
    }

    #[test]
    fn seeded_garbage_never_panics() {
        // Adversarial fuzz, seeded-loop style: random bytes, random
        // mutations of a valid request, random truncations. The parser
        // must always return one of the three verdicts — no panics, no
        // hangs. 2000 iterations keeps this test under a second.
        let valid = b"GET /entity/3?x=1 HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n";
        let mut rng = Xoshiro256::from_seed(Seed::DEFAULT.derive("http-fuzz"));
        for _ in 0..2000 {
            let mut buf: Vec<u8> = match rng.u64_below(3) {
                0 => (0..rng.u64_below(200)).map(|_| rng.next_u64() as u8).collect(),
                1 => valid[..rng.usize_below(valid.len() + 1)].to_vec(),
                _ => valid.to_vec(),
            };
            // Flip up to 4 bytes.
            for _ in 0..rng.u64_below(5) {
                if !buf.is_empty() {
                    let i = rng.usize_below(buf.len());
                    buf[i] = rng.next_u64() as u8;
                }
            }
            let _ = parse_request(&buf); // must not panic
        }
    }

    #[test]
    fn seeded_valid_requests_roundtrip_under_torn_reads() {
        // Generate structurally valid requests with random paths/headers
        // and check the torn-read invariant on each.
        let mut rng = Xoshiro256::from_seed(Seed::DEFAULT.derive("http-torn"));
        for _ in 0..200 {
            let path_len = 1 + rng.usize_below(30);
            let path: String = (0..path_len)
                .map(|_| (b'a' + (rng.u64_below(26) as u8)) as char)
                .collect();
            let n_headers = rng.usize_below(5);
            let mut raw = format!("GET /{path} HTTP/1.1\r\n");
            for h in 0..n_headers {
                raw.push_str(&format!("X-H{h}: value{h}\r\n"));
            }
            raw.push_str("\r\n");
            let raw = raw.as_bytes();
            let (full, consumed) = complete(raw);
            assert_eq!(consumed, raw.len());
            assert_eq!(full.path, format!("/{path}"));
            // Torn reads at a random sample of boundaries.
            for _ in 0..8 {
                let cut = rng.usize_below(consumed);
                assert_eq!(parse_request(&raw[..cut]), Parse::Partial);
            }
        }
    }

    #[test]
    fn response_wire_form_is_deterministic() {
        let r = Response::ok_json("{\"a\": 1}\n".to_string());
        assert_eq!(r.to_bytes(true, false), r.to_bytes(true, false));
        let head = r.to_bytes(true, true);
        let full = r.to_bytes(true, false);
        assert!(full.starts_with(&head), "HEAD form must be a prefix");
        assert!(!String::from_utf8(head).unwrap().contains("Date:"));
    }

    #[test]
    fn if_none_match_header_is_captured_verbatim() {
        let (r, _) = complete(
            b"GET /coverage HTTP/1.1\r\nIf-None-Match: \"3-abc123\"\r\n\r\n",
        );
        assert_eq!(r.if_none_match.as_deref(), Some("\"3-abc123\""));
        let (r, _) = complete(b"GET /coverage HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.if_none_match, None);
        // Header name matching is case-insensitive; value kept verbatim.
        let (r, _) = complete(b"GET / HTTP/1.1\r\nif-none-match: W/\"weak\"\r\n\r\n");
        assert_eq!(r.if_none_match.as_deref(), Some("W/\"weak\""));
    }

    #[test]
    fn head_and_owned_parsers_agree() {
        let raw: &[u8] =
            b"GET /entity/9?channel=browse HTTP/1.1\r\nIf-None-Match: \"1-ff\"\r\nConnection: close\r\n\r\n";
        let HeadParse::Complete(head, n1) = parse_head(raw) else {
            panic!("head parse failed");
        };
        let (owned, n2) = complete(raw);
        assert_eq!(n1, n2);
        assert_eq!(Request::from_head(&head), owned);
        assert_eq!(head.path, "/entity/9");
        assert_eq!(head.query_raw, "channel=browse");
        assert!(!head.keep_alive);
    }

    #[test]
    fn if_none_match_list_and_wildcard_semantics() {
        assert!(if_none_match_matches("\"1-ab\"", "\"1-ab\""));
        assert!(if_none_match_matches("\"0-x\", \"1-ab\"", "\"1-ab\""));
        assert!(if_none_match_matches("*", "\"1-ab\""));
        assert!(!if_none_match_matches("\"1-ab", "\"1-ab\"")); // malformed → miss
        assert!(!if_none_match_matches("1-ab", "\"1-ab\"")); // unquoted → miss
        assert!(!if_none_match_matches("\"2-cd\"", "\"1-ab\""));
    }

    #[test]
    fn not_modified_wire_form() {
        let etag: Arc<str> = Arc::from("\"2-0123456789abcdef\"");
        let r = Response::not_modified("application/json", etag.clone());
        let wire = String::from_utf8(r.to_bytes(true, false)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 304 Not Modified\r\n"), "{wire}");
        assert!(wire.contains("Content-Length: 0\r\n"));
        assert!(wire.contains("ETag: \"2-0123456789abcdef\"\r\n"));
        assert!(wire.ends_with("\r\n\r\n"), "304 must carry no body");
        // A 200 with the same tag carries it too, after Content-Length.
        let ok = Response::ok_json("{}\n".into()).with_etag(etag);
        let wire = String::from_utf8(ok.to_bytes(true, false)).unwrap();
        let cl = wire.find("Content-Length:").unwrap();
        let et = wire.find("ETag:").unwrap();
        assert!(cl < et, "header order must be deterministic: {wire}");
    }

    #[test]
    fn write_into_matches_to_bytes_and_appends() {
        let r = Response::ok_csv("a,b\n1,2\n".into())
            .with_etag(Arc::from("\"7-deadbeefdeadbeef\""));
        let mut buf = b"PREFIX".to_vec();
        r.write_into(&mut buf, false, false);
        assert_eq!(&buf[..6], b"PREFIX");
        assert_eq!(&buf[6..], r.to_bytes(false, false).as_slice());
    }

    #[test]
    fn error_bodies_carry_the_slug() {
        for e in [
            HttpError::BadRequestLine,
            HttpError::BadHeader,
            HttpError::MethodUnsupported,
            HttpError::VersionUnsupported,
            HttpError::HeadTooLarge,
            HttpError::BodyUnsupported,
        ] {
            let resp = Response::from_http_error(e);
            assert_eq!(resp.status, e.status());
            let body = String::from_utf8(resp.body).unwrap();
            assert!(body.contains(e.slug()), "{body} missing {}", e.slug());
        }
    }
}
