//! The load generator: replay a [`RequestPlan`]'s population against a
//! running server over real sockets, measuring latency and throughput
//! and digesting every response.
//!
//! Client `c` of `clients` owns the plan indices `i ≡ c (mod clients)`,
//! so the request *multiset* is independent of the client count — and
//! because each response is digested individually and folded with a
//! commutative combine (word-wise wrapping addition of the per-response
//! SHA-256), [`ReplayReport::digest`] is independent of client
//! scheduling too. Replaying the same plan against servers running at
//! different thread counts must therefore produce the same digest —
//! that equality is the serving layer's end-to-end determinism check,
//! asserted by `tests/serve.rs` and recorded as `byte_identical` in
//! `BENCH_serve.json`.

use crate::client::{fetch, Connection};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Instant;
use webstruct_demand::traffic::RequestPlan;
use webstruct_util::par;
use webstruct_util::sha::Sha256;

/// Replay tuning.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests to send.
    pub requests: u64,
}

/// One epoch's slice of a replay: every response carrying the same ETag,
/// digested separately so a replay that straddles a hot-swap can be
/// audited epoch by epoch (each slice must match a cold server pinned at
/// that epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSlice {
    /// The ETag the responses carried (empty for untagged responses —
    /// errors and control endpoints).
    pub etag: String,
    /// How many responses landed in this slice.
    pub responses: u64,
    /// Order-independent hex digest over the slice's
    /// `(path, status, body)` triples.
    pub digest: String,
}

/// What a replay run measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests attempted.
    pub requests: u64,
    /// Responses with 2xx status or a 304 revalidation.
    pub ok: u64,
    /// Responses with 4xx/5xx status.
    pub rejected: u64,
    /// Transport failures (no response).
    pub errors: u64,
    /// Wall-clock seconds for the whole replay.
    pub wall_secs: f64,
    /// Requests per second.
    pub rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Order-independent hex digest over every `(path, status, body)`.
    pub digest: String,
    /// The same digest partitioned by response ETag, ascending by tag.
    /// Single-epoch replays have exactly one tagged slice; a replay
    /// through a hot-swap window has one per epoch served.
    pub epochs: Vec<EpochSlice>,
}

/// One client's partial result.
struct ClientFold {
    ok: u64,
    rejected: u64,
    errors: u64,
    digest: [u64; 4],
    by_etag: BTreeMap<String, ([u64; 4], u64)>,
    latencies_us: Vec<u64>,
}

/// Fold one response digest into the order-independent accumulator.
fn fold_digest(acc: &mut [u64; 4], path: &str, status: u16, body: &[u8]) {
    let mut h = Sha256::new();
    h.update(path.as_bytes());
    h.update(&[0]);
    h.update(&status.to_le_bytes());
    h.update(&[0]);
    h.update(body);
    let d = h.finalize();
    for (i, word) in acc.iter_mut().enumerate() {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&d[i * 8..i * 8 + 8]);
        *word = word.wrapping_add(u64::from_le_bytes(bytes));
    }
}

/// Replay `opts.requests` requests of `plan` against `addr` using
/// `opts.clients` concurrent connections.
///
/// # Panics
/// Panics if `opts.clients == 0` or `opts.requests == 0`.
#[must_use]
pub fn replay(addr: SocketAddr, plan: &RequestPlan, opts: &ReplayOptions) -> ReplayReport {
    assert!(opts.clients > 0, "need at least one client");
    assert!(opts.requests > 0, "need at least one request");
    let clients = usize::try_from(opts.requests).map_or(opts.clients, |r| opts.clients.min(r));
    // The validator conditional requests replay: fetched once up front
    // (outside the measured window, not folded into any digest) so every
    // client sends the same `If-None-Match` regardless of sharding. An
    // unreachable server or a tagless response degrades conditionals to
    // plain GETs.
    let validator: Option<String> = fetch(addr, "GET", "/coverage")
        .ok()
        .map(|r| r.etag)
        .filter(|t| !t.is_empty());
    let start = Instant::now();
    let folds: Vec<ClientFold> = par::par_map_threads(
        clients,
        (0..clients as u64).collect(),
        |client| {
            let mut fold = ClientFold {
                ok: 0,
                rejected: 0,
                errors: 0,
                digest: [0; 4],
                by_etag: BTreeMap::new(),
                latencies_us: Vec::new(),
            };
            let mut conn = Connection::new(addr);
            let mut i = client;
            while i < opts.requests {
                let req = plan.request(i);
                let inm = if req.conditional {
                    validator.as_deref()
                } else {
                    None
                };
                let t0 = Instant::now();
                match conn.get_with(&req.path, inm) {
                    Ok(resp) => {
                        let us =
                            u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                        fold.latencies_us.push(us);
                        if resp.status / 100 == 2 || resp.status == 304 {
                            fold.ok += 1;
                        } else {
                            fold.rejected += 1;
                        }
                        fold_digest(&mut fold.digest, &req.path, resp.status, &resp.body);
                        let (slice, count) = fold
                            .by_etag
                            .entry(resp.etag.clone())
                            .or_insert(([0u64; 4], 0));
                        fold_digest(slice, &req.path, resp.status, &resp.body);
                        *count += 1;
                    }
                    Err(_) => fold.errors += 1,
                }
                i += clients as u64;
            }
            fold
        },
    );

    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    let mut ok = 0;
    let mut rejected = 0;
    let mut errors = 0;
    let mut digest = [0u64; 4];
    let mut by_etag: BTreeMap<String, ([u64; 4], u64)> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    for f in folds {
        ok += f.ok;
        rejected += f.rejected;
        errors += f.errors;
        for (a, b) in digest.iter_mut().zip(f.digest.iter()) {
            *a = a.wrapping_add(*b);
        }
        for (tag, (slice, count)) in f.by_etag {
            let (acc, n) = by_etag.entry(tag).or_insert(([0u64; 4], 0));
            for (a, b) in acc.iter_mut().zip(slice.iter()) {
                *a = a.wrapping_add(*b);
            }
            *n += count;
        }
        latencies.extend(f.latencies_us);
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx] as f64 / 1000.0
    };
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(|&u| u as f64).sum::<f64>() / latencies.len() as f64 / 1000.0
    };
    let to_hex = |words: [u64; 4]| {
        let mut hex = String::with_capacity(64);
        for word in words {
            hex.push_str(&format!("{word:016x}"));
        }
        hex
    };
    let hex = to_hex(digest);
    let epochs = by_etag
        .into_iter()
        .map(|(etag, (slice, responses))| EpochSlice {
            etag,
            responses,
            digest: to_hex(slice),
        })
        .collect();
    ReplayReport {
        requests: opts.requests,
        ok,
        rejected,
        errors,
        wall_secs,
        rps: (ok + rejected) as f64 / wall_secs,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        mean_ms,
        digest: hex,
        epochs,
    }
}
