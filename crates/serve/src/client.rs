//! A minimal std-only HTTP/1.1 client — enough to drive the replay
//! harness, the CLI smoke command and the test suite against real
//! sockets without external tooling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One received response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value (empty if absent).
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `ETag` header value (empty if absent).
    pub etag: String,
    /// Whether the server announced it will keep the connection open.
    pub keep_alive: bool,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn invalid(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Read one response off `stream` (head, then exactly `Content-Length`
/// body bytes).
///
/// # Errors
/// I/O failures and malformed response heads.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut content_type = String::new();
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut etag = String::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-type" => content_type = value.to_string(),
            "content-length" => {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
            }
            "etag" => etag = value.to_string(),
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpResponse {
        status,
        content_type,
        body,
        etag,
        keep_alive,
    })
}

/// One-shot request on a fresh connection.
///
/// # Errors
/// Connect/read/write failures and malformed responses.
pub fn fetch(addr: SocketAddr, method: &str, target: &str) -> std::io::Result<HttpResponse> {
    fetch_with(addr, method, target, None)
}

/// One-shot request with an optional `If-None-Match` validator.
///
/// # Errors
/// Connect/read/write failures and malformed responses.
pub fn fetch_with(
    addr: SocketAddr,
    method: &str,
    target: &str,
    if_none_match: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let request = match if_none_match {
        Some(inm) => format!(
            "{method} {target} HTTP/1.1\r\nIf-None-Match: {inm}\r\nConnection: close\r\n\r\n"
        ),
        None => format!("{method} {target} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    };
    stream.write_all(request.as_bytes())?;
    read_response(&mut stream)
}

/// A keep-alive connection that transparently reconnects when the server
/// closes it (e.g. at the per-connection request cap).
pub struct Connection {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Connection {
    /// A lazily-connected client for `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Connection { addr, stream: None }
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr)?;
            s.set_read_timeout(Some(Duration::from_secs(30)))?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Issue one GET over the kept-alive connection.
    ///
    /// # Errors
    /// Connect/read/write failures and malformed responses.
    pub fn get(&mut self, target: &str) -> std::io::Result<HttpResponse> {
        self.get_with(target, None)
    }

    /// Issue one GET with an optional `If-None-Match` validator.
    ///
    /// # Errors
    /// Connect/read/write failures and malformed responses.
    pub fn get_with(
        &mut self,
        target: &str,
        if_none_match: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let request = match if_none_match {
            Some(inm) => format!("GET {target} HTTP/1.1\r\nIf-None-Match: {inm}\r\n\r\n"),
            None => format!("GET {target} HTTP/1.1\r\n\r\n"),
        };
        // One transparent retry: the server may have closed the cached
        // connection (request cap) between our requests.
        for attempt in 0..2 {
            let stream = self.stream()?;
            let outcome = stream
                .write_all(request.as_bytes())
                .and_then(|()| read_response(stream));
            match outcome {
                Ok(resp) => {
                    if !resp.keep_alive {
                        self.stream = None;
                    }
                    return Ok(resp);
                }
                Err(e) if attempt == 0 => {
                    let _ = e;
                    self.stream = None;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the second attempt")
    }
}
