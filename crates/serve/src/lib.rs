//! # webstruct-serve
//!
//! The serving layer: expose the extracted web back as a query surface,
//! closing the loop the paper's production context implies (the corpus
//! was analyzed *because* it was served). Std-only — a hand-rolled
//! HTTP/1.1 stack over `std::net`, no async runtime:
//!
//! * [`http`] — incremental request parser with an exact error taxonomy
//!   (400/405/413/431/505), plus the deterministic response writer;
//! * [`state`] — warm serving state built from the epoch store
//!   (entities, per-site coverage, demand studies, figures);
//! * [`router`] — the FTL-style resource tree mapping paths onto state;
//! * [`server`] — acceptor + bounded worker pool, keep-alive and
//!   pipelining, graceful shutdown, `serve.*` counters with an exact
//!   connection-accounting invariant;
//! * [`client`] — a minimal client for smoke tests and the replayer;
//! * [`replay`] — the load generator: drive a seed-pure
//!   [`RequestPlan`](webstruct_demand::traffic::RequestPlan) stream over
//!   real sockets and digest every response order-independently.
//!
//! ## Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use webstruct_core::study::StudyConfig;
//! use webstruct_corpus::domain::Domain;
//! use webstruct_serve::{ServeConfig, ServeState, Server};
//!
//! let state = ServeState::build(
//!     Domain::Restaurants,
//!     StudyConfig::quick(),
//!     std::path::Path::new("artifacts/serve-store"),
//!     4,
//! )
//! .unwrap();
//! let server = Server::start(Arc::new(state), &ServeConfig::default(), "127.0.0.1:0").unwrap();
//! println!("serving on http://{}", server.local_addr());
//! let stats = server.join(); // blocks until POST /shutdown
//! assert!(stats.is_consistent());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod http;
pub mod replay;
pub mod router;
pub mod server;
pub mod state;

pub use client::{fetch, Connection, HttpResponse};
pub use http::{parse_request, HttpError, Method, Parse, Request, Response};
pub use replay::{replay, ReplayOptions, ReplayReport};
pub use router::{route, Control, Routed};
pub use server::{ServeConfig, ServeStats, Server};
pub use state::ServeState;
