//! # webstruct-serve
//!
//! The serving layer: expose the extracted web back as a query surface,
//! closing the loop the paper's production context implies (the corpus
//! was analyzed *because* it was served). Std-only — a hand-rolled
//! HTTP/1.1 stack over `std::net`, no async runtime:
//!
//! * [`http`] — incremental request parser with an exact error taxonomy
//!   (400/405/413/431/505), plus the deterministic response writer;
//! * [`state`] — warm serving state built from the epoch store
//!   (entities, per-site coverage, demand studies, figures);
//! * [`router`] — the FTL-style resource tree mapping paths onto state;
//! * [`cache`] — the hot-path response cache: fixed routes pre-rendered
//!   once per epoch, entity cards lazily pinned in a direct-indexed
//!   slab, every hit serving the router's exact bytes;
//! * [`swap`] — live epoch hot-swap: the serving state behind an
//!   atomically swappable `Arc`, rebuilt (mutate + dirty-slice
//!   recompute) on a background thread and published without dropping
//!   connections;
//! * [`server`] — acceptor + bounded worker pool, keep-alive and
//!   pipelining, graceful shutdown, `serve.*` counters with an exact
//!   connection-accounting invariant, ETag/`If-None-Match` → 304
//!   revalidation against the epoch digest;
//! * [`client`] — a minimal client for smoke tests and the replayer;
//! * [`replay`] — the load generator: drive a seed-pure
//!   [`RequestPlan`](webstruct_demand::traffic::RequestPlan) stream over
//!   real sockets and digest every response order-independently,
//!   partitioned per epoch ETag so hot-swap windows stay auditable.
//!
//! ## Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use webstruct_core::study::StudyConfig;
//! use webstruct_corpus::domain::Domain;
//! use webstruct_serve::{ServeConfig, ServeState, Server};
//!
//! let state = ServeState::build(
//!     Domain::Restaurants,
//!     StudyConfig::quick(),
//!     std::path::Path::new("artifacts/serve-store"),
//!     4,
//! )
//! .unwrap();
//! let server = Server::start(Arc::new(state), &ServeConfig::default(), "127.0.0.1:0").unwrap();
//! println!("serving on http://{}", server.local_addr());
//! let stats = server.join(); // blocks until POST /shutdown
//! assert!(stats.is_consistent());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod client;
pub mod http;
pub mod replay;
pub mod router;
pub mod server;
pub mod state;
pub mod swap;

pub use cache::{CacheOutcome, CachedResponse, ResponseCache};
pub use client::{fetch, fetch_with, Connection, HttpResponse};
pub use http::{
    if_none_match_matches, parse_head, parse_request, HeadParse, HttpError, Method, Parse, Request,
    RequestHead, Response,
};
pub use replay::{replay, EpochSlice, ReplayOptions, ReplayReport};
pub use router::{route, Control, Routed};
pub use server::{ServeConfig, ServeStats, Server};
pub use state::ServeState;
pub use swap::{EpochManager, ServeEpoch, SharedServing};
