//! The content-addressed response cache: hot endpoints pre-serialized
//! once per epoch into shared buffers.
//!
//! Every cacheable response is a pure function of the epoch state, so
//! the cache is built by running the *real* router once per hot route at
//! epoch-publish time and pinning the rendered bytes in `Arc<[u8]>`
//! buffers — a cache hit serves exactly the bytes the slow path would
//! have produced, by construction, which is what lets `bench_gate.sh`
//! hard-fail on any cached-vs-uncached digest divergence. Fixed routes
//! (`/`, `/sites`, `/coverage{,.csv}`, `/figures`, the demand and figure
//! CSVs) are rendered eagerly; entity cards fill a direct-indexed
//! [`OnceLock`] slab lazily on first touch, so a Zipfian workload pays
//! one render per *distinct* entity instead of one per request.
//!
//! The cache never invalidates in place: a hot swap builds a whole new
//! [`ResponseCache`](crate::cache::ResponseCache) inside the next
//! [`ServeEpoch`](crate::swap::ServeEpoch) and publishes it atomically,
//! so readers of the old epoch keep byte-exact old responses until the
//! swap point.

use std::sync::{Arc, OnceLock};

use crate::http::{Method, Request, Response};
use crate::router::{route, Control};
use crate::state::ServeState;
use webstruct_demand::model::StudySite;

/// Above this catalog size the entity slab is skipped (a slab of empty
/// `OnceLock`s per entity would dominate memory on out-of-core corpora);
/// entity cards then always take the slow path.
const MAX_ENTITY_SLAB: usize = 1 << 22;

/// One pre-serialized response: everything needed to write the wire form
/// besides the connection's keep-alive flag.
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// HTTP status (always 200 for cached resources).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes, shared across connections and epochs' readers.
    pub body: Arc<[u8]>,
}

impl CachedResponse {
    fn from_response(r: &Response) -> Self {
        CachedResponse {
            status: r.status,
            content_type: r.content_type,
            body: Arc::from(r.body.as_slice()),
        }
    }
}

/// How a cache lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The bytes were already pinned (pre-rendered route or warm slab
    /// slot).
    Hit,
    /// An entity slot was rendered and filled by this lookup.
    Filled,
}

/// The per-epoch response cache. Immutable after build except for the
/// monotone lazy fills of the entity slab.
pub struct ResponseCache {
    /// Pre-rendered fixed routes, sorted by path for binary search.
    routes: Vec<(String, CachedResponse)>,
    /// Direct-indexed entity-card slab (`/entity/{id}` by raw id); empty
    /// when the catalog exceeds [`MAX_ENTITY_SLAB`].
    entities: Vec<OnceLock<CachedResponse>>,
}

impl ResponseCache {
    /// Render every fixed hot route through the real router and pin the
    /// results. Cost is one route-render pass per epoch publish.
    #[must_use]
    pub fn build(state: &ServeState) -> Self {
        let _span = webstruct_util::span!("serve.cache.build");
        let mut targets: Vec<String> = vec![
            "/".into(),
            "/sites".into(),
            "/coverage".into(),
            "/coverage.csv".into(),
            "/figures".into(),
        ];
        for site in StudySite::ALL {
            targets.push(format!("/demand/{}/search.csv", site.slug()));
            targets.push(format!("/demand/{}/browse.csv", site.slug()));
        }
        for fig in &state.figures {
            targets.push(format!("/figure/{}.csv", fig.id));
        }

        let mut routes: Vec<(String, CachedResponse)> = targets
            .into_iter()
            .map(|path| {
                let routed = render(state, &path);
                debug_assert_eq!(routed.control, Control::None);
                debug_assert_eq!(routed.response.status, 200);
                (path, CachedResponse::from_response(&routed.response))
            })
            .collect();
        routes.sort_by(|a, b| a.0.cmp(&b.0));

        let slab_len = if state.catalog.len() <= MAX_ENTITY_SLAB {
            state.catalog.len()
        } else {
            0
        };
        let entities = (0..slab_len).map(|_| OnceLock::new()).collect();
        ResponseCache { routes, entities }
    }

    /// Whether `path` is cacheable under this epoch, without rendering or
    /// filling anything. Returns the `Content-Type` the 200 would carry —
    /// exactly what a `304 Not Modified` needs, so revalidations never
    /// populate the slab.
    #[must_use]
    pub fn probe(&self, path: &str) -> Option<&'static str> {
        if let Ok(i) = self
            .routes
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
        {
            return Some(self.routes[i].1.content_type);
        }
        if self.entity_slot(path).is_some() {
            return Some("application/json");
        }
        None
    }

    /// Look up `path`, filling an entity slot on first touch. `None`
    /// means the path is not cacheable and must take the slow path.
    #[must_use]
    pub fn lookup(&self, state: &ServeState, path: &str) -> Option<(&CachedResponse, CacheOutcome)> {
        if let Ok(i) = self
            .routes
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
        {
            return Some((&self.routes[i].1, CacheOutcome::Hit));
        }
        let idx = self.entity_slot(path)?;
        let cell = &self.entities[idx];
        if let Some(hit) = cell.get() {
            return Some((hit, CacheOutcome::Hit));
        }
        let filled = cell.get_or_init(|| {
            let routed = render(state, path);
            debug_assert_eq!(routed.response.status, 200);
            CachedResponse::from_response(&routed.response)
        });
        Some((filled, CacheOutcome::Filled))
    }

    /// Number of pre-rendered fixed routes (introspection for tests).
    #[must_use]
    pub fn n_routes(&self) -> usize {
        self.routes.len()
    }

    /// The slab index for `path` if it is an in-range `/entity/{id}`.
    fn entity_slot(&self, path: &str) -> Option<usize> {
        let rest = path.strip_prefix("/entity/")?;
        let id = rest.parse::<u32>().ok()?;
        let idx = id as usize;
        (idx < self.entities.len()).then_some(idx)
    }
}

/// Route a synthetic GET for `path` — cached entries are rendered by the
/// same code as the slow path, which is the byte-equality guarantee.
fn render(state: &ServeState, path: &str) -> crate::router::Routed {
    let req = Request {
        method: Method::Get,
        path: path.to_string(),
        query: Vec::new(),
        if_none_match: None,
        http11: true,
        keep_alive: true,
    };
    route(state, &req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_core::study::StudyConfig;
    use webstruct_corpus::domain::Domain;
    use webstruct_util::Seed;

    fn state() -> ServeState {
        let dir =
            std::env::temp_dir().join(format!("webstruct-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig::quick().with_scale(0.02).with_seed(Seed(4));
        ServeState::build(Domain::Restaurants, config, &dir, 2).unwrap()
    }

    #[test]
    fn cached_bytes_match_the_router_exactly() {
        let s = state();
        let cache = ResponseCache::build(&s);
        for path in [
            "/",
            "/sites",
            "/coverage",
            "/coverage.csv",
            "/figures",
            "/demand/yelp/search.csv",
            "/figure/serve-coverage.csv",
            "/entity/0",
            "/entity/3",
        ] {
            let (cached, _) = cache.lookup(&s, path).expect("cacheable");
            let fresh = render(&s, path).response;
            assert_eq!(cached.status, fresh.status, "{path}");
            assert_eq!(cached.content_type, fresh.content_type, "{path}");
            assert_eq!(&cached.body[..], fresh.body.as_slice(), "{path}");
        }
    }

    #[test]
    fn entity_slab_fills_once_then_hits() {
        let s = state();
        let cache = ResponseCache::build(&s);
        let (_, first) = cache.lookup(&s, "/entity/5").unwrap();
        assert_eq!(first, CacheOutcome::Filled);
        let (_, second) = cache.lookup(&s, "/entity/5").unwrap();
        assert_eq!(second, CacheOutcome::Hit);
        // Probe never fills.
        assert!(cache.probe("/entity/6").is_some());
        let (_, outcome) = cache.lookup(&s, "/entity/6").unwrap();
        assert_eq!(outcome, CacheOutcome::Filled, "probe must not fill");
    }

    #[test]
    fn uncacheable_paths_fall_through() {
        let s = state();
        let cache = ResponseCache::build(&s);
        for path in [
            "/entity",         // query-driven lookup
            "/entity/banana",  // bad param → slow path renders the 400
            "/entity/999999999",
            "/metrics",
            "/shutdown",
            "/admin/epoch",
            "/site/0",         // long tail, intentionally uncached
            "/nothing",
        ] {
            assert!(cache.probe(path).is_none(), "{path}");
            assert!(cache.lookup(&s, path).is_none(), "{path}");
        }
    }
}
