//! Fusion strategies: resolving conflicting claims into one value per
//! entity.

use crate::claims::{Claim, ClaimSet};
use webstruct_util::hash::FxHashMap;

/// A conflict-resolution strategy over a claim corpus.
pub trait FusionStrategy {
    /// Human-readable name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Fuse: return the chosen value per entity (`None` when the entity
    /// has no claims).
    fn fuse(&self, claims: &ClaimSet) -> Vec<Option<u64>>;
}

/// Plain majority vote; ties broken toward the smallest value for
/// determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl FusionStrategy for MajorityVote {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn fuse(&self, claims: &ClaimSet) -> Vec<Option<u64>> {
        claims
            .by_entity
            .iter()
            .map(|entity_claims| vote(entity_claims, |_| 1.0))
            .collect()
    }
}

/// The first claim wins — the "trust a single source" baseline the paper's
/// redundancy discussion argues against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstClaim;

impl FusionStrategy for FirstClaim {
    fn name(&self) -> &'static str {
        "first-claim"
    }

    fn fuse(&self, claims: &ClaimSet) -> Vec<Option<u64>> {
        claims
            .by_entity
            .iter()
            .map(|c| c.first().map(|cl| cl.value))
            .collect()
    }
}

/// Iterative source-trust estimation (a simplified TruthFinder):
/// alternate between (a) scoring each value by the summed trust of its
/// asserters and (b) re-estimating each source's trust as the fraction of
/// its claims that match the current consensus. Converges in a handful of
/// rounds on realistic error rates.
#[derive(Debug, Clone, Copy)]
pub struct IterativeTrust {
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Damping when updating source trust (0 = frozen, 1 = full update).
    pub damping: f64,
}

impl Default for IterativeTrust {
    fn default() -> Self {
        IterativeTrust {
            max_rounds: 10,
            damping: 0.8,
        }
    }
}

impl FusionStrategy for IterativeTrust {
    fn name(&self) -> &'static str {
        "iterative-trust"
    }

    fn fuse(&self, claims: &ClaimSet) -> Vec<Option<u64>> {
        let mut trust = vec![0.8f64; claims.n_sites];
        let mut consensus: Vec<Option<u64>> = vec![None; claims.n_entities];
        for _ in 0..self.max_rounds.max(1) {
            // (a) consensus under current trust.
            let mut changed = false;
            for (e, entity_claims) in claims.by_entity.iter().enumerate() {
                let new = vote(entity_claims, |c| trust[c.source.index()].max(1e-6));
                if new != consensus[e] {
                    consensus[e] = new;
                    changed = true;
                }
            }
            // (b) trust from agreement with consensus.
            let mut agree = vec![0u32; claims.n_sites];
            let mut total = vec![0u32; claims.n_sites];
            for (e, entity_claims) in claims.by_entity.iter().enumerate() {
                let Some(winner) = consensus[e] else { continue };
                for c in entity_claims {
                    total[c.source.index()] += 1;
                    if c.value == winner {
                        agree[c.source.index()] += 1;
                    }
                }
            }
            for s in 0..claims.n_sites {
                if total[s] > 0 {
                    // Laplace-smoothed agreement rate.
                    let observed =
                        (f64::from(agree[s]) + 1.0) / (f64::from(total[s]) + 2.0);
                    trust[s] = trust[s] * (1.0 - self.damping) + observed * self.damping;
                }
            }
            if !changed {
                break;
            }
        }
        consensus
    }
}

/// Weighted vote over one entity's claims; `None` when empty.
fn vote<W>(entity_claims: &[Claim], weight: W) -> Option<u64>
where
    W: Fn(&Claim) -> f64,
{
    if entity_claims.is_empty() {
        return None;
    }
    let mut scores: FxHashMap<u64, f64> = FxHashMap::default();
    for c in entity_claims {
        *scores.entry(c.value).or_insert(0.0) += weight(c);
    }
    scores
        .into_iter()
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("weights are finite")
                // Ties: prefer the smaller value for determinism.
                .then(b.0.cmp(&a.0))
        })
        .map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::ids::{EntityId, SiteId};

    fn claim(source: u32, entity: u32, value: u64) -> Claim {
        Claim {
            source: SiteId::new(source),
            entity: EntityId::new(entity),
            value,
        }
    }

    fn set(by_entity: Vec<Vec<Claim>>, truth: Vec<u64>, n_sites: usize) -> ClaimSet {
        ClaimSet {
            n_entities: by_entity.len(),
            n_sites,
            by_entity,
            truth,
            true_error_rates: vec![0.0; n_sites],
        }
    }

    #[test]
    fn majority_picks_the_mode() {
        let claims = set(
            vec![vec![claim(0, 0, 7), claim(1, 0, 7), claim(2, 0, 9)], vec![]],
            vec![7, 0],
            3,
        );
        let fused = MajorityVote.fuse(&claims);
        assert_eq!(fused, vec![Some(7), None]);
    }

    #[test]
    fn majority_tie_breaks_deterministically() {
        let claims = set(
            vec![vec![claim(0, 0, 9), claim(1, 0, 7)]],
            vec![7],
            2,
        );
        assert_eq!(MajorityVote.fuse(&claims), vec![Some(7)]);
    }

    #[test]
    fn first_claim_trusts_one_source() {
        let claims = set(
            vec![vec![claim(2, 0, 9), claim(0, 0, 7)]],
            vec![7],
            3,
        );
        assert_eq!(FirstClaim.fuse(&claims), vec![Some(9)]);
    }

    #[test]
    fn iterative_trust_downweights_bad_sources() {
        // Source 9 is always wrong; sources 0..3 always right. Entity 0 has
        // 2 wrong (from the liar asserting twice... one claim per source,
        // so use: liar + one truth-teller vs entity 1..n where truth-tellers
        // dominate, teaching the model the liar is wrong).
        let mut by_entity = Vec::new();
        let mut truth = Vec::new();
        // 10 entities where 3 good sources agree and the liar disagrees.
        for e in 0..10u32 {
            by_entity.push(vec![
                claim(0, e, 100 + u64::from(e)),
                claim(1, e, 100 + u64::from(e)),
                claim(2, e, 100 + u64::from(e)),
                claim(9, e, 555),
            ]);
            truth.push(100 + u64::from(e));
        }
        // Target entity: liar + one good source disagree 1–1. Majority
        // would tie-break arbitrarily (smaller value = liar's 55 wins!);
        // iterative trust must side with the good source.
        by_entity.push(vec![claim(9, 10, 55), claim(0, 10, 210)]);
        truth.push(210);
        let claims = set(by_entity, truth.clone(), 10);
        let fused = IterativeTrust::default().fuse(&claims);
        assert_eq!(fused[10], Some(210), "trust must override the tie");
        for e in 0..10 {
            assert_eq!(fused[e], Some(truth[e]));
        }
        // Majority gets the tie wrong (smaller value wins ties).
        let maj = MajorityVote.fuse(&claims);
        assert_eq!(maj[10], Some(55));
    }

    #[test]
    fn iterative_trust_handles_empty_and_no_rounds() {
        let claims = set(vec![vec![]], vec![1], 1);
        let fused = IterativeTrust {
            max_rounds: 0,
            damping: 0.5,
        }
        .fuse(&claims);
        assert_eq!(fused, vec![None]);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(MajorityVote.name(), "majority");
        assert_eq!(FirstClaim.name(), "first-claim");
        assert_eq!(IterativeTrust::default().name(), "iterative-trust");
    }
}
