//! # webstruct-fuse
//!
//! Truth fusion for corroborated extraction — the quantitative companion
//! to the paper's k-coverage motivation (§2/§3.3): redundancy across
//! sources is what lets a web-scale extractor "place a high confidence in
//! the extraction" despite per-source errors.
//!
//! * [`claims`] — generate per-source attribute claims from a corpus web
//!   under a per-site-kind error model;
//! * [`strategies`] — majority vote, first-claim baseline, and iterative
//!   source-trust estimation;
//! * [`eval`] — fused-database accuracy overall and by redundancy level.

//!
//! ## Example
//!
//! ```
//! use webstruct_fuse::{ClaimSet, FusionStrategy, MajorityVote};
//! use webstruct_util::ids::{EntityId, SiteId};
//!
//! let claims = ClaimSet {
//!     n_entities: 1,
//!     n_sites: 3,
//!     by_entity: vec![vec![
//!         webstruct_fuse::Claim { source: SiteId::new(0), entity: EntityId::new(0), value: 7 },
//!         webstruct_fuse::Claim { source: SiteId::new(1), entity: EntityId::new(0), value: 7 },
//!         webstruct_fuse::Claim { source: SiteId::new(2), entity: EntityId::new(0), value: 9 },
//!     ]],
//!     truth: vec![7],
//!     true_error_rates: vec![0.0; 3],
//! };
//! assert_eq!(MajorityVote.fuse(&claims), vec![Some(7)]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod claims;
pub mod eval;
pub mod strategies;

pub use claims::{Claim, ClaimSet, ErrorModel};
pub use eval::{evaluate, redundancy_figure, FusionReport};
pub use strategies::{FirstClaim, FusionStrategy, IterativeTrust, MajorityVote};
