//! Claims: per-source assertions about a closed attribute's value.
//!
//! §2 of the paper motivates redundancy: *"What if we want some redundancy
//! in the data sources to overcome errors introduced by a single source
//! (e.g., mistakes in the underlying database or noise in the
//! extraction)?"* and §3.3 analyses k-coverage precisely because *"one may
//! be looking for a piece of information from k different sources to place
//! a high confidence in the extraction."*
//!
//! This module turns a generated web into a claim corpus: each (site,
//! entity) mention asserts a value for the identifying attribute, correct
//! with a per-site reliability, corrupted otherwise.

use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::EntityCatalog;
use webstruct_corpus::phone::PhoneNumber;
use webstruct_corpus::site::SiteKind;
use webstruct_corpus::web::Web;
use webstruct_util::ids::{EntityId, SiteId};
use webstruct_util::rng::{Seed, Xoshiro256};

/// One source's assertion of an entity's attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// The asserting site.
    pub source: SiteId,
    /// The entity the claim is about.
    pub entity: EntityId,
    /// The claimed value (canonical phone digits / ISBN core).
    pub value: u64,
}

/// Per-site-kind error rates for claim generation.
#[derive(Debug, Clone, Copy)]
pub struct ErrorModel {
    /// P(wrong value) on aggregator sites (clean, curated feeds).
    pub aggregator: f64,
    /// P(wrong value) on regional directories.
    pub regional: f64,
    /// P(wrong value) on niche sites (stale listings, typos).
    pub niche: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel {
            aggregator: 0.02,
            regional: 0.08,
            niche: 0.20,
        }
    }
}

impl ErrorModel {
    /// Error rate for a site kind.
    #[must_use]
    pub fn rate(&self, kind: SiteKind) -> f64 {
        match kind {
            SiteKind::Aggregator => self.aggregator,
            SiteKind::Regional => self.regional,
            SiteKind::Niche => self.niche,
        }
    }
}

/// A claim corpus grouped by entity, with the ground truth retained for
/// evaluation.
#[derive(Debug, Clone)]
pub struct ClaimSet {
    /// Number of entities in the universe.
    pub n_entities: usize,
    /// Number of sites.
    pub n_sites: usize,
    /// Claims about each entity (indexed by `EntityId::index()`).
    pub by_entity: Vec<Vec<Claim>>,
    /// The true value of each entity's attribute.
    pub truth: Vec<u64>,
    /// Ground-truth per-site error rates (for diagnostics; fusion
    /// strategies must not read this).
    pub true_error_rates: Vec<f64>,
}

impl ClaimSet {
    /// Generate claims from a web: every mention exposing the identifying
    /// attribute asserts it, wrong with the site's error rate. Wrong
    /// values are *plausible* (another valid phone / ISBN core), and with
    /// probability `copy_error_prob` a wrong claim copies another random
    /// catalog entity's value — the hard confusion case for fusion.
    ///
    /// # Panics
    /// Panics if the error model rates are outside `[0, 1]`.
    #[must_use]
    pub fn generate(
        catalog: &EntityCatalog,
        web: &Web,
        errors: &ErrorModel,
        copy_error_prob: f64,
        seed: Seed,
    ) -> Self {
        for rate in [errors.aggregator, errors.regional, errors.niche] {
            assert!((0.0..=1.0).contains(&rate), "error rate out of range");
        }
        let id_attr = if catalog.domain == Domain::Books {
            Attribute::Isbn
        } else {
            Attribute::Phone
        };
        let truth: Vec<u64> = catalog
            .entities
            .iter()
            .map(|e| match id_attr {
                Attribute::Isbn => u64::from(e.isbn.expect("books have isbns").core()),
                _ => e.phone.expect("local businesses have phones").digits(),
            })
            .collect();
        let mut rng = Xoshiro256::from_seed(seed.derive("claims"));
        let mut by_entity: Vec<Vec<Claim>> = vec![Vec::new(); catalog.len()];
        let mut true_error_rates = Vec::with_capacity(web.n_sites());
        for site in &web.sites {
            // Per-site error rate: kind baseline with mild site-level noise.
            let base = errors.rate(site.kind);
            let rate = (base * rng.range_f64(0.5, 1.5)).clamp(0.0, 0.95);
            true_error_rates.push(rate);
            for m in web.mentions_of(site.id) {
                if !m.attrs.contains(id_attr) {
                    continue;
                }
                let true_value = truth[m.entity.index()];
                let value = if rng.bool_with(rate) {
                    if rng.bool_with(copy_error_prob) {
                        // Copy another entity's value (e.g. a franchise
                        // listing the wrong branch's phone).
                        truth[rng.usize_below(truth.len())]
                    } else {
                        corrupt(true_value, id_attr, &mut rng)
                    }
                } else {
                    true_value
                };
                by_entity[m.entity.index()].push(Claim {
                    source: site.id,
                    entity: m.entity,
                    value,
                });
            }
        }
        ClaimSet {
            n_entities: catalog.len(),
            n_sites: web.n_sites(),
            by_entity,
            truth,
            true_error_rates,
        }
    }

    /// Total number of claims.
    #[must_use]
    pub fn n_claims(&self) -> usize {
        self.by_entity.iter().map(Vec::len).sum()
    }

    /// Entities with at least `k` claims.
    #[must_use]
    pub fn entities_with_at_least(&self, k: usize) -> usize {
        self.by_entity.iter().filter(|c| c.len() >= k).count()
    }
}

/// Produce a *valid but different* value of the same attribute type.
fn corrupt(value: u64, attr: Attribute, rng: &mut Xoshiro256) -> u64 {
    match attr {
        Attribute::Isbn => loop {
            // Perturb a few digits of the core.
            let delta = 1 + rng.u64_below(9_999);
            let candidate = (value + delta) % 1_000_000_000;
            if candidate != value {
                break candidate;
            }
        },
        _ => loop {
            // A typo-like perturbation of the line number, or a fresh
            // random phone.
            let candidate = if rng.bool_with(0.7) {
                let line = value % 10_000;
                let new_line = (line + 1 + rng.u64_below(9_998)) % 10_000;
                value - line + new_line
            } else {
                PhoneNumber::random(rng).digits()
            };
            if candidate != value && PhoneNumber::from_digits(candidate).is_ok() {
                break candidate;
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_corpus::entity::CatalogConfig;
    use webstruct_corpus::web::WebConfig;

    fn fixture() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 500), Seed(61));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Banks).scaled(0.02),
            Seed(61),
        );
        (catalog, web)
    }

    #[test]
    fn generation_is_deterministic_and_grouped() {
        let (catalog, web) = fixture();
        let a = ClaimSet::generate(&catalog, &web, &ErrorModel::default(), 0.2, Seed(1));
        let b = ClaimSet::generate(&catalog, &web, &ErrorModel::default(), 0.2, Seed(1));
        assert_eq!(a.n_claims(), b.n_claims());
        assert!(a.n_claims() > 0);
        for (e, claims) in a.by_entity.iter().enumerate() {
            for c in claims {
                assert_eq!(c.entity.index(), e);
            }
        }
    }

    #[test]
    fn error_rates_shape_claim_accuracy() {
        let (catalog, web) = fixture();
        let clean = ClaimSet::generate(
            &catalog,
            &web,
            &ErrorModel {
                aggregator: 0.0,
                regional: 0.0,
                niche: 0.0,
            },
            0.0,
            Seed(2),
        );
        for (e, claims) in clean.by_entity.iter().enumerate() {
            for c in claims {
                assert_eq!(c.value, clean.truth[e], "no-error model must be exact");
            }
        }
        let noisy = ClaimSet::generate(
            &catalog,
            &web,
            &ErrorModel {
                aggregator: 0.5,
                regional: 0.5,
                niche: 0.5,
            },
            0.0,
            Seed(2),
        );
        let wrong: usize = noisy
            .by_entity
            .iter()
            .enumerate()
            .map(|(e, claims)| claims.iter().filter(|c| c.value != noisy.truth[e]).count())
            .sum();
        let frac = wrong as f64 / noisy.n_claims() as f64;
        assert!((0.35..0.65).contains(&frac), "wrong fraction {frac}");
    }

    #[test]
    fn corrupted_values_are_valid_but_different() {
        let mut rng = Xoshiro256::from_seed(Seed(3));
        let phone = PhoneNumber::new(415, 555, 134).unwrap().digits();
        for _ in 0..200 {
            let c = corrupt(phone, Attribute::Phone, &mut rng);
            assert_ne!(c, phone);
            assert!(PhoneNumber::from_digits(c).is_ok());
        }
        for _ in 0..200 {
            let c = corrupt(123_456_789, Attribute::Isbn, &mut rng);
            assert_ne!(c, 123_456_789);
            assert!(c < 1_000_000_000);
        }
    }

    #[test]
    fn redundancy_counts() {
        let (catalog, web) = fixture();
        let set = ClaimSet::generate(&catalog, &web, &ErrorModel::default(), 0.2, Seed(4));
        let k1 = set.entities_with_at_least(1);
        let k5 = set.entities_with_at_least(5);
        assert!(k1 > 0);
        assert!(k5 <= k1);
        assert_eq!(set.entities_with_at_least(0), set.n_entities);
    }

    #[test]
    fn books_claims_use_isbn_cores() {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Books, 300), Seed(62));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Books).scaled(0.02),
            Seed(62),
        );
        let set = ClaimSet::generate(&catalog, &web, &ErrorModel::default(), 0.1, Seed(5));
        assert!(set.n_claims() > 0);
        assert!(set.truth.iter().all(|&v| v < 1_000_000_000));
    }
}
