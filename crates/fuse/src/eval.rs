//! Evaluation: fused-database accuracy, overall and as a function of the
//! number of corroborating sources — the quantitative version of the
//! paper's "k different sources for high confidence" argument.

use crate::claims::ClaimSet;
use crate::strategies::FusionStrategy;
use webstruct_util::report::{Figure, Series};

/// Accuracy of a fused database against the ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Entities with at least one claim.
    pub entities_claimed: usize,
    /// Fraction of claimed entities fused to the correct value.
    pub accuracy: f64,
    /// Accuracy among entities bucketed by claim count: index `k` holds
    /// entities with exactly `k` claims for `k < max_k`, and the final
    /// bucket pools entities with `max_k` or more. Index 0 is unused
    /// (claim-less entities are never fused). `None` for empty buckets.
    pub accuracy_by_redundancy: Vec<Option<f64>>,
}

/// Evaluate one strategy over a claim corpus, bucketing by redundancy up
/// to `max_k` claims.
#[must_use]
pub fn evaluate<S: FusionStrategy>(
    strategy: &S,
    claims: &ClaimSet,
    max_k: usize,
) -> FusionReport {
    let fused = strategy.fuse(claims);
    let mut correct = 0usize;
    let mut claimed = 0usize;
    let mut per_k_correct = vec![0usize; max_k + 1];
    let mut per_k_total = vec![0usize; max_k + 1];
    for (e, value) in fused.iter().enumerate() {
        let Some(v) = value else { continue };
        claimed += 1;
        let k = claims.by_entity[e].len().min(max_k);
        per_k_total[k] += 1;
        if *v == claims.truth[e] {
            correct += 1;
            per_k_correct[k] += 1;
        }
    }
    let accuracy_by_redundancy = per_k_total
        .iter()
        .zip(&per_k_correct)
        .map(|(&t, &c)| {
            if t == 0 {
                None
            } else {
                Some(c as f64 / t as f64)
            }
        })
        .collect();
    FusionReport {
        strategy: strategy.name(),
        entities_claimed: claimed,
        accuracy: if claimed == 0 {
            0.0
        } else {
            correct as f64 / claimed as f64
        },
        accuracy_by_redundancy,
    }
}

/// Build a "value of redundancy" figure: accuracy vs. number of
/// corroborating sources, one series per strategy.
#[must_use]
pub fn redundancy_figure(reports: &[FusionReport]) -> Figure {
    let mut fig = Figure::new(
        "ext-redundancy",
        "Extraction accuracy vs. corroborating sources",
    )
    .with_axes("# of sources for the entity", "fused accuracy");
    for r in reports {
        let points: Vec<(f64, f64)> = r
            .accuracy_by_redundancy
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(k, acc)| acc.map(|a| (k as f64, a)))
            .collect();
        fig.push(Series::new(r.strategy, points));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::{ClaimSet, ErrorModel};
    use crate::strategies::{FirstClaim, IterativeTrust, MajorityVote};
    use webstruct_corpus::domain::Domain;
    use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
    use webstruct_corpus::web::{Web, WebConfig};
    use webstruct_util::rng::Seed;

    fn claims() -> ClaimSet {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 600), Seed(71));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Banks).scaled(0.03),
            Seed(71),
        );
        ClaimSet::generate(&catalog, &web, &ErrorModel::default(), 0.2, Seed(72))
    }

    #[test]
    fn redundancy_improves_accuracy() {
        // Use a deliberately noisy error model so the low-redundancy
        // buckets show real errors.
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 600), Seed(71));
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Banks).scaled(0.03),
            Seed(71),
        );
        let noisy = ErrorModel {
            aggregator: 0.15,
            regional: 0.3,
            niche: 0.4,
        };
        let claims = ClaimSet::generate(&catalog, &web, &noisy, 0.2, Seed(73));
        let report = evaluate(&MajorityVote, &claims, 10);
        let lo = report.accuracy_by_redundancy[1]
            .or(report.accuracy_by_redundancy[2])
            .expect("low-redundancy bucket populated");
        let hi = report.accuracy_by_redundancy[10].expect("high-redundancy bucket populated");
        assert!(
            hi > lo,
            "10-source accuracy {hi} should beat 1-source {lo}"
        );
        assert!(hi > 0.95, "high redundancy should be near-perfect: {hi}");
        assert!(lo < 0.9, "single-source accuracy should show the noise: {lo}");
    }

    #[test]
    fn majority_beats_first_claim_beats_nothing() {
        let claims = claims();
        let majority = evaluate(&MajorityVote, &claims, 10);
        let first = evaluate(&FirstClaim, &claims, 10);
        assert!(majority.accuracy > first.accuracy);
        assert!(majority.accuracy > 0.9);
        assert_eq!(majority.entities_claimed, first.entities_claimed);
    }

    #[test]
    fn iterative_trust_at_least_matches_majority() {
        let claims = claims();
        let majority = evaluate(&MajorityVote, &claims, 10);
        let trust = evaluate(&IterativeTrust::default(), &claims, 10);
        assert!(
            trust.accuracy >= majority.accuracy - 0.005,
            "trust {} vs majority {}",
            trust.accuracy,
            majority.accuracy
        );
    }

    #[test]
    fn figure_has_one_series_per_strategy() {
        let claims = claims();
        let reports = vec![
            evaluate(&FirstClaim, &claims, 10),
            evaluate(&MajorityVote, &claims, 10),
            evaluate(&IterativeTrust::default(), &claims, 10),
        ];
        let fig = redundancy_figure(&reports);
        assert_eq!(fig.series.len(), 3);
        assert!(fig.series_named("majority").is_some());
        for s in &fig.series {
            assert!(!s.points.is_empty());
            for &(_, acc) in &s.points {
                assert!((0.0..=1.0).contains(&acc));
            }
        }
    }

    #[test]
    fn empty_claimset_yields_zero_accuracy() {
        let empty = ClaimSet {
            n_entities: 3,
            n_sites: 0,
            by_entity: vec![vec![]; 3],
            truth: vec![1, 2, 3],
            true_error_rates: vec![],
        };
        let report = evaluate(&MajorityVote, &empty, 5);
        assert_eq!(report.entities_claimed, 0);
        assert_eq!(report.accuracy, 0.0);
        assert!(report.accuracy_by_redundancy.iter().all(Option::is_none));
    }
}
