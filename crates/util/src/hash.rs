//! Fast, non-cryptographic hashing for integer-keyed maps.
//!
//! The mention-aggregation and graph-construction hot paths hash billions of
//! small integer keys across a full parameter sweep. The standard library's
//! SipHash is collision-resistant but slow for this workload; following the
//! Rust Performance Book we use the Fx algorithm (the multiply-xor hash used
//! inside rustc). Implemented locally so the workspace has no dependency on
//! an unvetted crate and the hash is stable across builds.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash algorithm.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash algorithm.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: `hash = (hash.rotate_left(5) ^ word) * SEED` per word.
///
/// Low quality by cryptographic standards, but empirically excellent for the
/// dense small-integer key distributions this workspace produces (sequential
/// entity/site ids), and several times faster than SipHash.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(word ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Convenience constructor: an empty [`FxHashMap`].
#[must_use]
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor: an [`FxHashMap`] with reserved capacity.
#[must_use]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty [`FxHashSet`].
#[must_use]
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Convenience constructor: an [`FxHashSet`] with reserved capacity.
#[must_use]
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinct_small_ints_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 100_000, "no collisions expected on 100k seq ints");
    }

    #[test]
    fn byte_strings_with_length_tails_differ() {
        assert_ne!(hash_of(&b"a".as_slice()), hash_of(&b"a\0".as_slice()));
        assert_ne!(hash_of(&b"abcdefgh".as_slice()), hash_of(&b"abcdefg".as_slice()));
    }

    #[test]
    fn map_and_set_work_as_containers() {
        let mut m = fx_map_with_capacity::<u32, &str>(8);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s = fx_set_with_capacity::<u32>(8);
        assert!(s.insert(9));
        assert!(!s.insert(9));
        assert!(s.contains(&9));
        let _empty_m: FxHashMap<u8, u8> = fx_map();
        let _empty_s: FxHashSet<u8> = fx_set();
    }

    #[test]
    fn string_hash_spreads_buckets() {
        // Crude avalanche check: hashes of similar strings should differ in
        // many bit positions on average.
        let a = hash_of(&"site-000001.example.com");
        let b = hash_of(&"site-000002.example.com");
        let differing = (a ^ b).count_ones();
        assert!(differing > 10, "only {differing} differing bits");
    }
}
