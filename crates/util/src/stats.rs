//! Descriptive statistics used by the demand and coverage analyses.

/// Arithmetic mean; 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices of length < 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Z-normalise in place: subtract the mean, divide by the standard
/// deviation. Matches the paper's Figure 7 ("normalized within each dataset
/// to have a mean of zero and standard deviation of one"). If the standard
/// deviation is zero only the mean is removed.
pub fn z_normalize(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    for x in xs.iter_mut() {
        *x -= m;
        if s > 0.0 {
            *x /= s;
        }
    }
}

/// Linear-interpolated quantile (`q` in `[0,1]`) of a sorted slice.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Pearson correlation coefficient; 0.0 when either side is constant or the
/// slices are shorter than 2 elements.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Gini coefficient of non-negative values: 0 = perfectly even, →1 =
/// maximally concentrated. Used to summarise demand concentration (the
/// paper's "IMDb demand is sharpest" observation).
#[must_use]
pub fn gini(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("gini: NaN value"));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// The paper's Figure 8 review-count binning: group 0 = {0 reviews},
/// group 1 = {1, 2}, group 2 = {3..6}, ..., capped so that 1023+ reviews
/// land in the final group (10).
///
/// Formally: `min(floor(log2(n + 1)), 10)`.
#[must_use]
pub fn log2_review_bin(n_reviews: u64) -> u32 {
    let bin = (64 - (n_reviews + 1).leading_zeros() - 1).min(10);
    debug_assert!(bin <= 10);
    bin
}

/// Representative review count for a bin produced by [`log2_review_bin`]:
/// the geometric-ish midpoint of the bin's range, used as the x coordinate
/// when plotting Figure 8.
#[must_use]
pub fn log2_bin_midpoint(bin: u32) -> f64 {
    if bin == 0 {
        return 0.0;
    }
    let lo = (1u64 << bin) - 1; // first n with floor(log2(n+1)) == bin
    let hi = (1u64 << (bin + 1)) - 2; // last such n
    (lo + hi) as f64 / 2.0
}

/// Log-spaced sweep points `1, 2, ..., 9, 10, 20, ..., 90, 100, ...` up to
/// and including a final point `>= max` (clamped to `max`). These are the x
/// coordinates for every coverage plot (paper figures use log-x axes).
#[must_use]
pub fn log_ticks(max: usize) -> Vec<usize> {
    assert!(max > 0, "log_ticks: max must be positive");
    let mut ticks = Vec::new();
    let mut decade = 1usize;
    loop {
        for mult in 1..=9 {
            let Some(t) = decade.checked_mul(mult) else {
                ticks.push(max);
                return ticks;
            };
            if t >= max {
                ticks.push(max);
                return ticks;
            }
            ticks.push(t);
        }
        let Some(next) = decade.checked_mul(10) else {
            ticks.push(max);
            return ticks;
        };
        decade = next;
    }
}

/// Empirical CDF over item weights sorted descending: returns, for each
/// prefix fraction of the inventory, the cumulative fraction of total
/// weight. Output is `points` pairs `(inventory_fraction, demand_fraction)`.
///
/// This is exactly Figure 6(a)/(c): "cumulative demand vs. normalized
/// inventory".
#[must_use]
pub fn cumulative_share_curve(weights_desc: &[f64], points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "cumulative_share_curve: need >= 2 points");
    if weights_desc.is_empty() {
        return vec![(0.0, 0.0), (1.0, 0.0)];
    }
    debug_assert!(
        weights_desc.windows(2).all(|w| w[0] >= w[1]),
        "weights must be sorted descending"
    );
    let total: f64 = weights_desc.iter().sum();
    let n = weights_desc.len();
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &w in weights_desc {
        acc += w;
        prefix.push(acc);
    }
    (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            let idx = (frac * n as f64).round() as usize;
            let share = if total > 0.0 { prefix[idx] / total } else { 0.0 };
            (frac, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_standardizes() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        z_normalize(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
        // Constant input: mean removed, no division by zero.
        let mut c = vec![3.0, 3.0, 3.0];
        z_normalize(&mut c);
        assert!(c.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert!((quantile_sorted(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn pearson_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        // One item holds everything among many: approaches 1 - 1/n.
        let mut v = vec![0.0; 99];
        v.push(100.0);
        assert!(gini(&v) > 0.97);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn review_bins_match_paper_grouping() {
        assert_eq!(log2_review_bin(0), 0);
        assert_eq!(log2_review_bin(1), 1);
        assert_eq!(log2_review_bin(2), 1);
        assert_eq!(log2_review_bin(3), 2);
        assert_eq!(log2_review_bin(6), 2);
        assert_eq!(log2_review_bin(7), 3);
        assert_eq!(log2_review_bin(1022), 9);
        assert_eq!(log2_review_bin(1023), 10);
        assert_eq!(log2_review_bin(1_000_000), 10);
    }

    #[test]
    fn bin_midpoints_are_monotone() {
        assert_eq!(log2_bin_midpoint(0), 0.0);
        assert!((log2_bin_midpoint(1) - 1.5).abs() < 1e-12); // {1,2}
        assert!((log2_bin_midpoint(2) - 4.5).abs() < 1e-12); // {3..6}
        for b in 0..10 {
            assert!(log2_bin_midpoint(b) < log2_bin_midpoint(b + 1));
        }
    }

    #[test]
    fn log_ticks_shape() {
        assert_eq!(log_ticks(1), vec![1]);
        assert_eq!(log_ticks(10), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let t = log_ticks(250);
        assert_eq!(
            t,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 250]
        );
        // Always ends exactly at max and is strictly increasing.
        let t = log_ticks(123_456);
        assert_eq!(*t.last().unwrap(), 123_456);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cumulative_share_curve_endpoints_and_concavity() {
        let weights = [50.0, 30.0, 15.0, 5.0];
        let curve = cumulative_share_curve(&weights, 5);
        assert_eq!(curve[0], (0.0, 0.0));
        assert!((curve[4].0 - 1.0).abs() < 1e-12);
        assert!((curve[4].1 - 1.0).abs() < 1e-12);
        // Head-heavy: halfway through the inventory covers > 50% of weight.
        assert!(curve[2].1 > 0.5);
        // Monotone non-decreasing.
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn cumulative_share_curve_empty() {
        let curve = cumulative_share_curve(&[], 4);
        assert_eq!(curve, vec![(0.0, 0.0), (1.0, 0.0)]);
    }
}
