//! Discrete sampling: Zipf/power-law weights and O(1) alias-table sampling.
//!
//! Every heavy-tailed quantity in the study — entity popularity, site reach,
//! user activity — is modelled as rank-Zipf: weight of the item at rank `r`
//! (1-based) is `r^-alpha`. Sampling millions of mentions demands O(1) draws,
//! so we implement Vose's alias method.

use crate::rng::Xoshiro256;

/// Unnormalised rank-Zipf weights `1^-a, 2^-a, ..., n^-a`.
///
/// # Panics
/// Panics if `n == 0` or `alpha` is not finite.
#[must_use]
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights: n must be positive");
    assert!(alpha.is_finite(), "zipf_weights: alpha must be finite");
    (1..=n).map(|r| (r as f64).powf(-alpha)).collect()
}

/// Normalise weights in place to sum to 1.
///
/// # Panics
/// Panics if the weights sum to zero or contain negatives/NaNs.
pub fn normalize(weights: &mut [f64]) {
    let sum: f64 = weights.iter().sum();
    assert!(
        sum > 0.0 && sum.is_finite(),
        "normalize: weights must be positive and finite, sum = {sum}"
    );
    for w in weights.iter_mut() {
        assert!(*w >= 0.0, "normalize: negative weight {w}");
        *w /= sum;
    }
}

/// Walker/Vose alias table: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per bucket, scaled so comparison with a
    /// uniform in `[0,1)` works directly.
    prob: Vec<f64>,
    /// Alias index per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (possibly unnormalised) non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weights");
        assert!(
            weights.len() <= u32::MAX as usize,
            "AliasTable: too many buckets"
        );
        let sum: f64 = weights.iter().sum();
        assert!(
            sum > 0.0 && sum.is_finite(),
            "AliasTable: weights must sum to a positive finite value"
        );
        let n = weights.len();
        let scale = n as f64 / sum;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Partition buckets into under- and over-full worklists.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "AliasTable: bad weight {w}");
                w * scale
            })
            .collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = large.pop().expect("checked non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both lists drain to probability exactly 1.
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no buckets (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let i = rng.usize_below(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// A rank-Zipf distribution over `0..n` (index 0 is the most popular rank).
#[derive(Debug, Clone)]
pub struct Zipf {
    table: AliasTable,
    alpha: f64,
}

impl Zipf {
    /// Build a Zipf(alpha) sampler over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite.
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        let weights = zipf_weights(n, alpha);
        Zipf {
            table: AliasTable::new(&weights),
            alpha,
        }
    }

    /// The Zipf exponent.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when there are no ranks (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draw a rank in `0..n`; rank 0 is the heaviest.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        self.table.sample(rng)
    }
}

/// Continuous bounded Pareto sample in `[lo, hi]` with shape `alpha > 0`.
///
/// Used for site-size draws where we want a smooth heavy tail rather than
/// fixed ranks.
///
/// # Panics
/// Panics unless `0 < lo < hi` and `alpha > 0`.
pub fn bounded_pareto(rng: &mut Xoshiro256, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "bounded_pareto: need 0 < lo < hi");
    assert!(alpha > 0.0, "bounded_pareto: alpha must be positive");
    let u = rng.f64();
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the bounded Pareto.
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    #[test]
    fn zipf_weights_shape() {
        let w = zipf_weights(4, 1.0);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[3] - 0.25).abs() < 1e-12);
        // alpha = 0 gives uniform weights.
        let u = zipf_weights(3, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut w = vec![2.0, 6.0, 2.0];
        normalize(&mut w);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn normalize_rejects_zero_sum() {
        normalize(&mut [0.0, 0.0]);
    }

    #[test]
    fn alias_table_matches_weights_empirically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256::from_seed(Seed(100));
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.005,
                "bucket {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn alias_table_single_bucket() {
        let table = AliasTable::new(&[3.7]);
        let mut rng = Xoshiro256::from_seed(Seed(101));
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = Xoshiro256::from_seed(Seed(102));
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn alias_table_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn alias_table_rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let z = Zipf::new(1000, 1.0);
        assert_eq!(z.len(), 1000);
        assert!((z.alpha() - 1.0).abs() < 1e-12);
        let mut rng = Xoshiro256::from_seed(Seed(103));
        let n = 100_000;
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            if r < 10 {
                head += 1;
            }
            if r >= 500 {
                tail += 1;
            }
        }
        // With alpha=1, H(10)/H(1000) ~ 2.93/7.49 ~ 0.39 of the mass is in
        // the top 10 ranks.
        let head_frac = head as f64 / n as f64;
        assert!(
            (head_frac - 0.39).abs() < 0.02,
            "head fraction {head_frac}"
        );
        assert!(tail > 0, "tail ranks must still occur");
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut rng = Xoshiro256::from_seed(Seed(104));
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut rng, 1.2, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut rng = Xoshiro256::from_seed(Seed(105));
        let n = 50_000;
        let below_10 = (0..n)
            .filter(|_| bounded_pareto(&mut rng, 1.0, 1.0, 10_000.0) < 10.0)
            .count();
        // For alpha=1 bounded Pareto on [1, 1e4], P(X < 10) ~ 0.9.
        let frac = below_10 as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }
}
