//! Newtyped 32-bit identifiers.
//!
//! Entities, sites, pages, users and regions are all dense, sequentially
//! assigned ids. Newtypes prevent the classic bug of indexing an entity
//! table with a site id, and `u32` storage halves the memory of adjacency
//! lists relative to `usize` (per the type-size guidance in the Rust
//! Performance Book).

/// Declare a dense `u32` id newtype with the standard conversions.
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            #[must_use]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index value.
            #[inline]
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The id as a `usize`, for indexing dense tables.
            #[inline]
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id! {
    /// Identifier of a structured entity (restaurant, book, ...).
    EntityId
}
define_id! {
    /// Identifier of a website (host).
    SiteId
}
define_id! {
    /// Identifier of a single web page within the corpus.
    PageId
}
define_id! {
    /// Identifier of a simulated user (an anonymized cookie).
    UserId
}
define_id! {
    /// Identifier of a geographic region (metro area).
    RegionId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversions() {
        let e = EntityId::new(17);
        assert_eq!(e.raw(), 17);
        assert_eq!(e.index(), 17);
        assert_eq!(u32::from(e), 17);
        assert_eq!(usize::from(e), 17);
        assert_eq!(EntityId::from(17u32), e);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(SiteId::new(1) < SiteId::new(2));
        let mut v = vec![PageId::new(3), PageId::new(1), PageId::new(2)];
        v.sort();
        assert_eq!(v, vec![PageId::new(1), PageId::new(2), PageId::new(3)]);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(EntityId::new(5).to_string(), "EntityId(5)");
        assert_eq!(RegionId::new(0).to_string(), "RegionId(0)");
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<EntityId>(), 4);
        assert_eq!(std::mem::size_of::<Option<EntityId>>(), 8);
    }
}
