//! Structured observability: hierarchical spans, metric registries and a
//! per-run event log — std-only and deterministic where it counts.
//!
//! A measurement study lives or dies on being able to account for every
//! page rendered, entity extracted and fetch retried. This module is the
//! accounting layer the rest of the workspace reports into:
//!
//! * [`Metrics`] — named **counter / gauge / histogram** registries. The
//!   hot paths never touch the registry per item: each shard accumulates
//!   into scratch-local plain integers (or a [`LocalHistogram`]) and
//!   publishes one merged total when it finishes. Because every published
//!   value is a pure function of the workload — never of scheduling — the
//!   full registry [`Metrics::snapshot`] renders **byte-identically for
//!   any `WEBSTRUCT_THREADS`**, which the determinism suite asserts.
//! * [`Trace`] — hierarchical spans ([`span!`]) with wall-clock timing
//!   (plus optional [`SimClock`](crate::fault::SimClock) tick counts) and
//!   a sequenced event log. Wall-clock durations are inherently
//!   non-deterministic, so spans live *outside* the deterministic metric
//!   snapshot; they serialise to a chrome-trace `trace.json` and to the
//!   human-readable tree `WEBSTRUCT_TRACE=pretty` prints.
//! * [`run_report_json`] — the `artifacts/RUN_REPORT.json` artifact: the
//!   command, spans, events, and the metric snapshot as the final key so
//!   shell tooling can split the deterministic tail off with one `sed`.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! [`span!`] site when disabled; metric publication is always on (it is a
//! handful of map operations per *run*, not per page).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable selecting the trace sink: `json`, `pretty` or
/// `off` (default).
pub const TRACE_ENV: &str = "WEBSTRUCT_TRACE";

/// How the CLI should emit the run's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing; spans are no-ops.
    Off,
    /// Emit `artifacts/RUN_REPORT.json` plus a chrome-trace `trace.json`.
    Json,
    /// Emit `artifacts/RUN_REPORT.json` plus a span tree on stderr.
    Pretty,
}

impl TraceMode {
    /// Parse [`TRACE_ENV`]. Unset, empty, `off` and unrecognised values
    /// all mean [`TraceMode::Off`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV).as_deref() {
            Ok("json") => TraceMode::Json,
            Ok("pretty") => TraceMode::Pretty,
            _ => TraceMode::Off,
        }
    }

    /// Whether spans should be recorded under this mode.
    #[must_use]
    pub fn is_on(self) -> bool {
        self != TraceMode::Off
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bit pattern).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets a histogram tracks (`u64` value range).
pub const HIST_BUCKETS: usize = 65;

/// A scratch-local log₂-bucketed histogram of `u64` samples.
///
/// This is the shard-side half of the histogram story: each worker
/// records into its own `LocalHistogram` (one array increment per
/// sample, no atomics, no locks), and the owners merge shard histograms
/// in fixed order before publishing one total via
/// [`Metrics::merge_histogram`]. Bucket `i` counts samples whose value
/// has bit length `i` (bucket 0 is exactly the value 0), so merging is
/// plain element-wise addition and the result is independent of shard
/// boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index of a sample: 0 for the value 0, else its bit length
/// (`64 - leading_zeros`), so bucket `i ≥ 1` spans `[2^(i-1), 2^i)`.
#[must_use]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
#[must_use]
fn bucket_floor(i: usize) -> u64 {
    if i <= 1 {
        // Bucket 0 holds the value 0; bucket 1 holds exactly 1.
        i as u64
    } else {
        1u64 << (i - 1)
    }
}

impl LocalHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LocalHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (d, s) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *d += s;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }

    /// Serialized size of [`to_bytes`](LocalHistogram::to_bytes): all 65
    /// buckets plus count and sum, little-endian u64s.
    pub const WIRE_LEN: usize = (HIST_BUCKETS + 2) * 8;

    /// Canonical fixed-width encoding, for embedding in content-addressed
    /// snapshots: the same histogram always serializes to the same bytes.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        for (i, b) in self.buckets.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&b.to_le_bytes());
        }
        out[HIST_BUCKETS * 8..HIST_BUCKETS * 8 + 8].copy_from_slice(&self.count.to_le_bytes());
        out[(HIST_BUCKETS + 1) * 8..].copy_from_slice(&self.sum.to_le_bytes());
        out
    }

    /// Decode [`to_bytes`](LocalHistogram::to_bytes) output. Returns
    /// `None` when `bytes` is not exactly [`WIRE_LEN`]
    /// (LocalHistogram::WIRE_LEN) long.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<LocalHistogram> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let mut h = LocalHistogram::new();
        for i in 0..HIST_BUCKETS {
            h.buckets[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().ok()?);
        }
        h.count =
            u64::from_le_bytes(bytes[HIST_BUCKETS * 8..HIST_BUCKETS * 8 + 8].try_into().ok()?);
        h.sum = u64::from_le_bytes(bytes[(HIST_BUCKETS + 1) * 8..].try_into().ok()?);
        Some(h)
    }
}

/// The shared half of a histogram: the registry-resident accumulator
/// shard-local histograms merge into.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(HIST_BUCKETS)
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample directly (registry-side; shard loops should use
    /// [`LocalHistogram`] and merge instead).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Fold a scratch-local histogram in.
    pub fn merge(&self, local: &LocalHistogram) {
        for (dst, &src) in self.buckets.iter().zip(local.buckets.iter()) {
            if src > 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy as a [`LocalHistogram`].
    #[must_use]
    pub fn load(&self) -> LocalHistogram {
        let mut out = LocalHistogram::new();
        for (d, s) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *d = s.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
        out
    }
}

/// Named registries of counters, gauges and histograms.
///
/// Registration is name-keyed and idempotent; values are atomics, so
/// handles can be incremented from any thread. The snapshot iterates
/// names in sorted (`BTreeMap`) order, which makes its rendering a pure
/// function of the registered values.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// Empty registries.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The histogram named `name`, registering it empty on first use.
    ///
    /// # Panics
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Set the gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Record one histogram sample under `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Merge a scratch-local histogram into the histogram `name`.
    pub fn merge_histogram(&self, name: &str, local: &LocalHistogram) {
        if !local.is_empty() {
            self.histogram(name).merge(local);
        }
    }

    /// Forget every registered metric. Determinism tests call this before
    /// a measured run so the snapshot contains exactly that run's output.
    ///
    /// # Panics
    /// Panics if a registry lock was poisoned.
    pub fn reset(&self) {
        self.counters.lock().expect("counter registry poisoned").clear();
        self.gauges.lock().expect("gauge registry poisoned").clear();
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .clear();
    }

    /// A point-in-time copy of every registered metric.
    ///
    /// # Panics
    /// Panics if a registry lock was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen copy of the registries, renderable deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, LocalHistogram>,
}

impl MetricsSnapshot {
    /// Deterministic JSON rendering: keys sorted, values printed with
    /// Rust's shortest-round-trip float formatting, byte-identical for
    /// identical metric values.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n    \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("      \"{}\": {v}", escape_json(k)));
        }
        out.push_str(if first { "},\n" } else { "\n    },\n" });
        out.push_str("    \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("      \"{}\": {v}", escape_json(k)));
        }
        out.push_str(if first { "},\n" } else { "\n    },\n" });
        out.push_str("    \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let buckets = h
                .nonzero_buckets()
                .iter()
                .map(|(lo, c)| format!("\"{lo}\": {c}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "      \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{{buckets}}}}}",
                escape_json(k),
                h.count(),
                h.sum(),
            ));
        }
        out.push_str(if first { "}\n  }" } else { "\n    }\n  }" });
        out
    }

    /// The workload-deterministic half of [`MetricsSnapshot::to_json`]:
    /// counters and histograms only. Gauges are *declared*
    /// non-deterministic — they carry timing- and schedule-derived
    /// readings (throughput, per-worker byte totals, peak RSS) whose
    /// values legitimately vary with `WEBSTRUCT_THREADS` — so the
    /// determinism suite and the cross-thread-count byte comparisons use
    /// this rendering, while `RUN_REPORT.json` reports gauges under their
    /// own (non-compared) key.
    #[must_use]
    pub fn to_deterministic_json(&self) -> String {
        let mut out = String::from("{\n    \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("      \"{}\": {v}", escape_json(k)));
        }
        out.push_str(if first { "},\n" } else { "\n    },\n" });
        out.push_str("    \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let buckets = h
                .nonzero_buckets()
                .iter()
                .map(|(lo, c)| format!("\"{lo}\": {c}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "      \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{{buckets}}}}}",
                escape_json(k),
                h.count(),
                h.sum(),
            ));
        }
        out.push_str(if first { "}\n  }" } else { "\n    }\n  }" });
        out
    }

    /// Just the gauges, as one flat JSON object (the non-deterministic
    /// complement of [`MetricsSnapshot::to_deterministic_json`]).
    #[must_use]
    pub fn gauges_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    \"{}\": {v}", escape_json(k)));
        }
        out.push_str(if first { "}" } else { "\n  }" });
        out
    }

    /// Deterministic `name value` lines (counters and gauges only).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        out
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (creation order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Label, e.g. `"family:spread"` or `"extract_shard sites=0..40"`.
    pub name: String,
    /// Dense per-process thread ordinal the span ran on.
    pub thread: u64,
    /// Start, µs since the trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub dur_us: u64,
    /// Simulated-clock ticks attributed to the span (0 unless the caller
    /// stamped a [`SimClock`](crate::fault::SimClock) reading).
    pub sim_ticks: u64,
}

/// One log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Global sequence number (creation order).
    pub seq: u64,
    /// Event text.
    pub name: String,
    /// Dense per-process thread ordinal the event fired on.
    pub thread: u64,
    /// µs since the trace epoch.
    pub at_us: u64,
}

/// A span/event recorder. Disabled by default: [`Trace::span`] returns an
/// inert guard and records nothing until [`Trace::set_enabled`]`(true)`.
#[derive(Debug)]
pub struct Trace {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }
}

thread_local! {
    /// Per-thread stack of open span ids (parent attribution).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Dense per-process ordinal of the current thread (0, 1, 2, … in first-
/// use order) — a stable `tid` for trace output, unlike the opaque
/// [`std::thread::ThreadId`].
#[must_use]
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

impl Trace {
    /// A fresh, disabled trace with its epoch at "now".
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Turn span/event recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span. When tracing is disabled this is one atomic load and
    /// the guard is inert. Use the [`span!`](crate::span) macro to avoid
    /// even building the name string in that case.
    #[must_use]
    pub fn span(&self, name: String) -> Span<'_> {
        if !self.is_enabled() {
            return Span { data: None };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        Span {
            data: Some(SpanData {
                trace: self,
                id,
                parent,
                name,
                start: Instant::now(),
                sim_ticks: 0,
            }),
        }
    }

    /// Append an event to the log (no-op while disabled).
    pub fn event(&self, name: String) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros() as u64;
        self.events
            .lock()
            .expect("event log poisoned")
            .push(EventRecord {
                seq,
                name,
                thread: thread_ordinal(),
                at_us,
            });
    }

    /// Completed spans so far, sorted by `(start_us, id)`.
    ///
    /// # Panics
    /// Panics if the span log lock was poisoned.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.spans.lock().expect("span log poisoned").clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }

    /// Events so far, in sequence order.
    ///
    /// # Panics
    /// Panics if the event log lock was poisoned.
    #[must_use]
    pub fn events(&self) -> Vec<EventRecord> {
        let mut events = self.events.lock().expect("event log poisoned").clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Drop every recorded span and event (the enabled flag is kept).
    ///
    /// # Panics
    /// Panics if a log lock was poisoned.
    pub fn reset(&self) {
        self.spans.lock().expect("span log poisoned").clear();
        self.events.lock().expect("event log poisoned").clear();
    }

    /// Chrome-trace (`chrome://tracing`, Perfetto) JSON: one complete
    /// (`"ph": "X"`) event per span, one instant event per log entry.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let spans = self.spans();
        let events = self.events();
        for (i, s) in spans.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {}, \"dur\": {}, \"args\": {{\"sim_ticks\": {}}}}}{}\n",
                escape_json(&s.name),
                s.thread,
                s.start_us,
                s.dur_us,
                s.sim_ticks,
                if i + 1 < spans.len() || !events.is_empty() {
                    ","
                } else {
                    ""
                }
            ));
        }
        for (i, e) in events.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}}}{}\n",
                escape_json(&e.name),
                e.thread,
                e.at_us,
                if i + 1 < events.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        out
    }

    /// Human-readable span tree (children indented under parents, in
    /// start order), for `WEBSTRUCT_TRACE=pretty`.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let spans = self.spans();
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &spans {
            children.entry(s.parent).or_default().push(s);
        }
        let mut out = String::new();
        fn walk(
            out: &mut String,
            children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            parent: Option<u64>,
            depth: usize,
        ) {
            let Some(kids) = children.get(&parent) else {
                return;
            };
            for s in kids {
                let ms = s.dur_us as f64 / 1000.0;
                out.push_str(&format!("{}{} — {ms:.2} ms", "  ".repeat(depth), s.name));
                if s.sim_ticks > 0 {
                    out.push_str(&format!(" ({} sim ticks)", s.sim_ticks));
                }
                out.push('\n');
                walk(out, children, Some(s.id), depth + 1);
            }
        }
        walk(&mut out, &children, None, 0);
        for e in self.events() {
            out.push_str(&format!("! {} (t+{} µs)\n", e.name, e.at_us));
        }
        out
    }

    fn record(&self, record: SpanRecord) {
        self.spans.lock().expect("span log poisoned").push(record);
    }
}

/// RAII span guard: records the span on drop. Inert (free) when the
/// trace was disabled at creation.
#[derive(Debug)]
pub struct Span<'t> {
    data: Option<SpanData<'t>>,
}

#[derive(Debug)]
struct SpanData<'t> {
    trace: &'t Trace,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    sim_ticks: u64,
}

impl Span<'_> {
    /// Attribute simulated-clock ticks to this span (stamped into the
    /// record on drop).
    pub fn set_sim_ticks(&mut self, ticks: u64) {
        if let Some(d) = &mut self.data {
            d.sim_ticks = ticks;
        }
    }

    /// Whether this guard is actually recording.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Usually a balanced pop of our own id; a retain keeps the
            // stack sane even if guards are dropped out of order.
            if s.last() == Some(&d.id) {
                s.pop();
            } else {
                s.retain(|&id| id != d.id);
            }
        });
        let start_us = d
            .start
            .duration_since(d.trace.epoch)
            .as_micros() as u64;
        let dur_us = d.start.elapsed().as_micros() as u64;
        d.trace.record(SpanRecord {
            id: d.id,
            parent: d.parent,
            name: d.name,
            thread: thread_ordinal(),
            start_us,
            dur_us,
            sim_ticks: d.sim_ticks,
        });
    }
}

/// The process-wide observability instance: one metric registry and one
/// trace, shared by every layer.
#[derive(Debug, Default)]
pub struct Obs {
    /// Counter/gauge/histogram registries.
    pub metrics: Metrics,
    /// Span and event recorder.
    pub trace: Trace,
}

/// The global [`Obs`] instance.
#[must_use]
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::default)
}

/// The global metric registries.
#[must_use]
pub fn metrics() -> &'static Metrics {
    &global().metrics
}

/// The global trace.
#[must_use]
pub fn trace() -> &'static Trace {
    &global().trace
}

/// Open a span on the global trace, building the name lazily so a
/// disabled trace never even formats it. Prefer the [`span!`](crate::span)
/// macro at call sites.
#[must_use]
pub fn span_with(name: impl FnOnce() -> String) -> Span<'static> {
    let t = trace();
    if t.is_enabled() {
        t.span(name())
    } else {
        Span { data: None }
    }
}

/// Append an event to the global trace, building the text lazily.
pub fn event_with(name: impl FnOnce() -> String) {
    let t = trace();
    if t.is_enabled() {
        t.event(name());
    }
}

/// Read [`TRACE_ENV`] and enable the global trace accordingly. Returns
/// the parsed mode so the caller can pick a sink.
pub fn init_trace_from_env() -> TraceMode {
    let mode = TraceMode::from_env();
    trace().set_enabled(mode.is_on());
    mode
}

/// Open a hierarchical span on the global trace.
///
/// ```
/// use webstruct_util::span;
/// let site_id = 7usize;
/// let _span = span!("render_site", site_id); // "render_site site_id=7"
/// let _bare = span!("analyze");
/// ```
///
/// Costs one relaxed atomic load when tracing is off; the label is only
/// formatted when it is on. Extra identifiers are appended as
/// `name=value` pairs via their `Debug` rendering.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::obs::span_with(|| ::std::string::String::from($name))
    };
    ($name:expr, $($field:ident),+ $(,)?) => {
        $crate::obs::span_with(|| {
            let mut s = ::std::string::String::from($name);
            $(
                s.push(' ');
                s.push_str(::core::stringify!($field));
                s.push('=');
                s.push_str(&::std::format!("{:?}", $field));
            )+
            s
        })
    };
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Best-effort peak resident-set size of the current process, in bytes:
/// `VmHWM` from `/proc/self/status` on Linux, 0 anywhere that file does
/// not exist. The kernel's high-water mark is monotone for the process
/// lifetime, so per-stage peaks need a child process per stage.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Assemble `RUN_REPORT.json`: the command, every span and event of the
/// run, the gauge readings (timing/schedule-derived, so *outside* the
/// cross-thread-count comparison), and the deterministic metric snapshot
/// (counters + histograms) as the **final** key (so
/// `sed -n '/"metrics":/,$p'` splits the deterministic tail off for
/// byte-comparison across thread counts).
#[must_use]
pub fn run_report_json(command: &str, threads: usize, obs: &Obs) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"command\": \"{}\",\n", escape_json(command)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    let spans = obs.trace.spans();
    out.push_str("  \"spans\": [\n");
    for (i, s) in spans.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"thread\": {}, \
             \"start_us\": {}, \"dur_us\": {}, \"sim_ticks\": {}}}{}\n",
            s.id,
            s.parent.map_or_else(|| "null".into(), |p: u64| p.to_string()),
            escape_json(&s.name),
            s.thread,
            s.start_us,
            s.dur_us,
            s.sim_ticks,
            if i + 1 < spans.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let events = obs.trace.events();
    out.push_str("  \"events\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seq\": {}, \"name\": \"{}\", \"thread\": {}, \"at_us\": {}}}{}\n",
            e.seq,
            escape_json(&e.name),
            e.thread,
            e.at_us,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let snap = obs.metrics.snapshot();
    out.push_str(&format!("  \"gauges\": {},\n", snap.gauges_json()));
    out.push_str(&format!("  \"metrics\": {}\n}}\n", snap.to_deterministic_json()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_wire_roundtrip() {
        let mut h = LocalHistogram::new();
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            h.record(v);
        }
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), LocalHistogram::WIRE_LEN);
        assert_eq!(LocalHistogram::from_bytes(&bytes), Some(h));
        assert_eq!(LocalHistogram::from_bytes(&bytes[1..]), None);
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorts() {
        let m = Metrics::new();
        m.add("b.second", 2);
        m.add("a.first", 1);
        m.add("b.second", 3);
        let snap = m.snapshot();
        assert_eq!(snap.counters["a.first"], 1);
        assert_eq!(snap.counters["b.second"], 5);
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a.first", "b.second"]);
    }

    #[test]
    fn counter_handles_are_shared_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(4);
        b.inc();
        assert_eq!(m.counter("x").get(), 5);
    }

    #[test]
    fn gauges_store_floats() {
        let m = Metrics::new();
        m.set_gauge("allocs_per_page", 0.3);
        assert!((m.gauge("allocs_per_page").get() - 0.3).abs() < 1e-12);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"allocs_per_page\": 0.3"), "json: {json}");
    }

    #[test]
    fn histogram_buckets_by_log2_and_merges() {
        let mut a = LocalHistogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024] {
            a.record(v);
        }
        assert_eq!(a.count(), 9);
        assert_eq!(a.sum(), 1050);
        let buckets = a.nonzero_buckets();
        // value 0 → bucket floor 0; 1,1 → floor 1; 2,3 → floor 2; 4..7 →
        // floor 4; 8 → floor 8; 1024 → floor 1024.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]
        );
        let mut b = LocalHistogram::new();
        b.record(5);
        b.merge(&a);
        assert_eq!(b.count(), 10);
        assert_eq!(b.sum(), 1055);
    }

    #[test]
    fn histogram_extremes_do_not_panic() {
        let mut h = LocalHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.nonzero_buckets(), vec![(1u64 << 63, 2)]);
    }

    #[test]
    fn shared_histogram_merge_equals_local_merge() {
        let m = Metrics::new();
        let mut shard1 = LocalHistogram::new();
        let mut shard2 = LocalHistogram::new();
        for v in 0..100 {
            if v % 2 == 0 {
                shard1.record(v);
            } else {
                shard2.record(v);
            }
        }
        m.merge_histogram("h", &shard1);
        m.merge_histogram("h", &shard2);
        let mut whole = LocalHistogram::new();
        for v in 0..100 {
            whole.record(v);
        }
        assert_eq!(m.histogram("h").load(), whole);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_balanced() {
        let m = Metrics::new();
        m.add("pages", 10);
        m.set_gauge("rate", 1.5);
        m.record("bytes", 4096);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"pages\": 10"));
        assert!(a.contains("\"4096\": 1"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let m = Metrics::new();
        let json = m.snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn reset_clears_registrations() {
        let m = Metrics::new();
        m.add("x", 1);
        m.reset();
        assert!(m.snapshot().counters.is_empty());
        m.add("y", 2);
        assert_eq!(m.snapshot().counters.len(), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        {
            let _s = t.span("ignored".into());
            t.event("ignored".into());
        }
        assert!(t.spans().is_empty());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let t = Trace::new();
        t.set_enabled(true);
        {
            let _outer = t.span("outer".into());
            {
                let _inner = t.span("inner".into());
            }
            let _sibling = t.span("sibling".into());
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
    }

    #[test]
    fn spans_on_other_threads_are_roots() {
        let t = Trace::new();
        t.set_enabled(true);
        let _outer = t.span("outer".into());
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = t.span("worker".into());
            });
        });
        let worker = t
            .spans()
            .into_iter()
            .find(|s| s.name == "worker")
            .unwrap();
        assert_eq!(worker.parent, None, "parent stacks are per-thread");
    }

    #[test]
    fn sim_ticks_are_stamped() {
        let t = Trace::new();
        t.set_enabled(true);
        {
            let mut s = t.span("crawl".into());
            s.set_sim_ticks(420);
        }
        assert_eq!(t.spans()[0].sim_ticks, 420);
        assert!(t.to_pretty().contains("420 sim ticks"));
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let t = Trace::new();
        t.set_enabled(true);
        {
            let _a = t.span("alpha \"quoted\"".into());
        }
        t.event("beta".into());
        let json = t.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn pretty_tree_indents_children() {
        let t = Trace::new();
        t.set_enabled(true);
        {
            let _outer = t.span("outer".into());
            let _inner = t.span("inner".into());
        }
        let pretty = t.to_pretty();
        let inner_line = pretty.lines().find(|l| l.contains("inner")).unwrap();
        assert!(inner_line.starts_with("  "), "pretty: {pretty}");
    }

    #[test]
    fn span_macro_formats_fields_lazily() {
        // Global trace is disabled by default: the macro must be a no-op
        // that never formats.
        let site_id = 7usize;
        let s = span!("render_site", site_id);
        assert!(!s.is_recording());
        drop(s);
        // Enabled: names carry the field values.
        trace().set_enabled(true);
        {
            let _s = span!("render_site", site_id);
        }
        trace().set_enabled(false);
        let found = trace()
            .spans()
            .into_iter()
            .any(|s| s.name == "render_site site_id=7");
        assert!(found);
        trace().reset();
    }

    #[test]
    fn run_report_places_metrics_last() {
        let obs = Obs::default();
        obs.metrics.add("pages", 3);
        obs.trace.set_enabled(true);
        {
            let _s = obs.trace.span("family:spread".into());
        }
        let report = run_report_json("reproduce", 2, &obs);
        let metrics_at = report.find("\"metrics\":").unwrap();
        let spans_at = report.find("\"spans\":").unwrap();
        assert!(spans_at < metrics_at, "metrics must be the final key");
        assert!(report.contains("family:spread"));
        assert!(report.contains("\"pages\": 3"));
        assert_eq!(report.matches('{').count(), report.matches('}').count());
    }

    #[test]
    fn deterministic_json_excludes_gauges() {
        let m = Metrics::new();
        m.add("pages", 7);
        m.set_gauge("extract.worker_bytes.w0", 123.0);
        m.record("bytes", 64);
        let det = m.snapshot().to_deterministic_json();
        assert!(det.contains("\"pages\": 7"));
        assert!(det.contains("\"64\": 1"));
        assert!(!det.contains("worker_bytes"), "gauges leaked: {det}");
        assert_eq!(det.matches('{').count(), det.matches('}').count());
        // The gauges render under their own object instead.
        let gauges = m.snapshot().gauges_json();
        assert!(gauges.contains("\"extract.worker_bytes.w0\": 123"));
        assert_eq!(gauges.matches('{').count(), gauges.matches('}').count());
    }

    #[test]
    fn run_report_keeps_metrics_tail_gauge_free() {
        let obs = Obs::default();
        obs.metrics.add("pages", 3);
        obs.metrics.set_gauge("extract.shard_imbalance", 1.25);
        let report = run_report_json("reproduce", 2, &obs);
        let metrics_at = report.find("\"metrics\":").unwrap();
        let tail = &report[metrics_at..];
        assert!(!tail.contains("shard_imbalance"), "tail: {tail}");
        assert!(tail.contains("\"pages\": 3"));
        // The gauge is still reported, just before the deterministic tail.
        assert!(report[..metrics_at].contains("\"extract.shard_imbalance\": 1.25"));
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should parse on Linux");
            // A test process certainly peaks above 1 MiB and below 1 TiB.
            assert!(rss > 1 << 20 && rss < 1 << 40, "implausible rss {rss}");
        }
    }

    #[test]
    fn trace_mode_parses() {
        assert!(!TraceMode::Off.is_on());
        assert!(TraceMode::Json.is_on());
        assert!(TraceMode::Pretty.is_on());
    }

    #[test]
    fn thread_ordinals_are_dense_and_distinct() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "stable per thread");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other);
    }
}
