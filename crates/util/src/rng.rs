//! Deterministic pseudo-random number generation.
//!
//! Every experiment in this workspace must be reproducible bit-for-bit from a
//! single seed, across platforms and Rust releases. We therefore implement a
//! small, well-known generator stack ourselves instead of depending on an
//! external crate whose stream could change between versions:
//!
//! * [`SplitMix64`] — the seeding / stream-splitting generator recommended by
//!   Vigna for initialising xoshiro state.
//! * [`Xoshiro256`] — xoshiro256** 1.0, the general-purpose generator used by
//!   all corpus and traffic simulation code.
//!
//! Both pass BigCrush (per their authors) and are more than adequate for
//! driving a measurement-study simulation.

/// A 64-bit seed for the whole experiment universe.
///
/// `Seed` is deliberately a tiny wrapper so it can be threaded through every
/// config struct and printed in reports; two runs with equal seeds produce
/// identical corpora, traffic logs and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// The seed used by all documented experiments unless overridden.
    pub const DEFAULT: Seed = Seed(0x5EED_DA7A_2012_0707);

    /// Derive an independent child seed for a named sub-component.
    ///
    /// Mixing the label through SplitMix64 guarantees that e.g. the corpus
    /// generator and the traffic simulator see decorrelated streams even
    /// though both descend from the same experiment seed.
    #[must_use]
    pub fn derive(self, label: &str) -> Seed {
        let mut h = self.0 ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3); // FNV-ish spread
            h = splitmix64_next(&mut { h }).0;
        }
        Seed(splitmix64_mix(h))
    }

    /// Derive a child seed from an integer index (e.g. per-site streams).
    #[must_use]
    pub fn derive_u64(self, index: u64) -> Seed {
        Seed(splitmix64_mix(
            self.0 ^ index.wrapping_mul(0xA24B_AED4_963E_E407),
        ))
    }
}

impl Default for Seed {
    fn default() -> Self {
        Seed::DEFAULT
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn splitmix64_next(state: &mut u64) -> (u64, ()) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31), ())
}

/// SplitMix64: a tiny 64-bit generator used for seeding [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw 64-bit state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64_next(&mut self.state).0
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Construct from a [`Seed`], expanding it through SplitMix64 so that
    /// low-entropy seeds (0, 1, 2, ...) still yield well-mixed state.
    #[must_use]
    pub fn from_seed(seed: Seed) -> Self {
        let mut sm = SplitMix64::new(seed.0);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is a fixed point for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits, which are the strongest).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (unbiased via rejection).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below: bound must be positive");
        // Lemire 2019: rejection happens with probability < 2^-64 * bound.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool_with(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal variate via the Box–Muller transform.
    ///
    /// We intentionally regenerate both uniforms per call (rather than
    /// caching the second variate) to keep the generator state a pure
    /// function of the number of calls — simpler to reason about for
    /// reproducibility, and this is nowhere near a hot path.
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Sample from a Poisson distribution with rate `lambda`.
    ///
    /// Uses Knuth's product-of-uniforms algorithm for small rates and a
    /// normal approximation (rounded, clamped at zero) for `lambda > 30`,
    /// which is plenty accurate for corpus-size decisions.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal_with(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Sample a geometric count: number of failures before the first
    /// success with success probability `p` in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric: p must be in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose a uniform random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.usize_below(items.len())])
        }
    }

    /// Reservoir-sample `k` distinct indices from `0..n` (order unspecified).
    ///
    /// Returns all of `0..n` when `k >= n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.usize_below(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from Vigna's splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::from_seed(Seed(42));
        let mut b = Xoshiro256::from_seed(Seed(42));
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::from_seed(Seed(43));
        let same = (0..1000).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 5, "different seeds should diverge, got {same} collisions");
    }

    #[test]
    fn derive_decorrelates_labels() {
        let root = Seed(7);
        let a = root.derive("corpus");
        let b = root.derive("traffic");
        let c = root.derive("corpus");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(a, root);
    }

    #[test]
    fn derive_u64_is_stable_and_distinct() {
        let root = Seed(9);
        assert_eq!(root.derive_u64(3), root.derive_u64(3));
        assert_ne!(root.derive_u64(3), root.derive_u64(4));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::from_seed(Seed(1));
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256::from_seed(Seed(2));
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u64_below_respects_bound_and_covers() {
        let mut rng = Xoshiro256::from_seed(Seed(3));
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.u64_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn u64_below_zero_panics() {
        Xoshiro256::from_seed(Seed(4)).u64_below(0);
    }

    #[test]
    fn range_u64_half_open() {
        let mut rng = Xoshiro256::from_seed(Seed(5));
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn bool_with_extremes() {
        let mut rng = Xoshiro256::from_seed(Seed(6));
        assert!(!rng.bool_with(0.0));
        assert!(rng.bool_with(1.0));
        assert!(!rng.bool_with(-1.0));
        assert!(rng.bool_with(2.0));
    }

    #[test]
    fn bool_with_rate_is_calibrated() {
        let mut rng = Xoshiro256::from_seed(Seed(7));
        let hits = (0..100_000).filter(|_| rng.bool_with(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::from_seed(Seed(8));
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = Xoshiro256::from_seed(Seed(9));
        for &lambda in &[0.5, 4.0, 100.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-3.0), 0);
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Xoshiro256::from_seed(Seed(10));
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p; // failures before success
        assert!((mean - expect).abs() < 0.15, "mean {mean}, expect {expect}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::from_seed(Seed(11));
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be identity.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = Xoshiro256::from_seed(Seed(12));
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[7u8]), Some(&7));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Xoshiro256::from_seed(Seed(13));
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 1000));
        // k >= n returns everything.
        assert_eq!(rng.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }
}
