//! Deterministic, std-only data parallelism.
//!
//! The build environment is offline, so this module provides the small
//! slice of rayon the workspace actually needs — an order-preserving,
//! chunked parallel map over indexed work — on top of
//! [`std::thread::scope`] alone.
//!
//! Determinism is the contract: `par_map(items, f)` returns exactly
//! `items.into_iter().map(f).collect()` for any thread count, because
//! work is split into contiguous chunks and results are re-assembled in
//! chunk order. Callers are responsible for making `f` itself a pure
//! function of its input (every corpus/render path achieves this by
//! deriving per-item seeds, never by sharing a generator).
//!
//! Beyond the static chunked map, two schedulers handle heavy-tailed
//! workloads where equal-count chunks leave one worker holding most of
//! the bytes:
//!
//! * [`lpt_assign`] — deterministic longest-processing-time assignment
//!   when per-item cost estimates are *known*. Items go to the currently
//!   least-loaded worker in descending size order; ties break toward the
//!   lower worker index, so the assignment is a pure function of the
//!   size vector. LPT's makespan is within 4/3 of optimal.
//! * [`par_map_dynamic`] — an atomic-cursor work-stealing map when sizes
//!   are *unknown*. Workers race to claim the next index, but each
//!   result carries its item index and the output is reassembled in
//!   input order, so the returned `Vec` (and therefore every downstream
//!   byte) is identical at any thread count — only the wall-clock
//!   schedule varies.
//! * [`par_fold_dynamic_threads`] — the same work-stealing cursor with
//!   one accumulator per *worker* instead of one result per item, for
//!   commutative folds whose per-item results are too big to keep
//!   around (sharded extraction holds O(workers) accumulators, not
//!   O(shards)).
//!
//! Thread count resolution: the `WEBSTRUCT_THREADS` environment variable
//! when set to a positive integer, else
//! [`std::thread::available_parallelism`]. `WEBSTRUCT_THREADS=1` is the
//! documented way to force every parallel path in the workspace onto the
//! purely sequential code path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "WEBSTRUCT_THREADS";

/// The number of worker threads parallel paths should use.
///
/// Resolution order: `WEBSTRUCT_THREADS` (positive integer) if set and
/// parseable, otherwise [`std::thread::available_parallelism`], falling
/// back to 1 when even that is unavailable. Re-read on every call so
/// tests and harnesses can vary it at runtime.
#[must_use]
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Order-preserving parallel map using [`num_threads`] workers.
///
/// Equivalent to `items.into_iter().map(f).collect()` for every thread
/// count (the single-thread case literally is that expression).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// Order-preserving parallel map passing each item's original index.
///
/// Equivalent to `items.into_iter().enumerate().map(|(i, t)| f(i, t))`
/// in output order, for every thread count.
pub fn par_map_indexed<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_indexed_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (1 forces the sequential path).
pub fn par_map_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_indexed_threads(threads, items, |_, t| f(t))
}

/// [`par_map_indexed`] with an explicit worker count.
pub fn par_map_indexed_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let k = threads.min(n);
    // Contiguous, balanced chunks: the first `n % k` chunks get one extra
    // item, so indices stay dense and chunk boundaries are deterministic.
    let base = n / k;
    let extra = n % k;
    let mut rest = items;
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(k);
    let mut offset = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        let tail = rest.split_off(size);
        chunks.push((offset, rest));
        rest = tail;
        offset += size;
    }
    debug_assert!(rest.is_empty());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
        out
    })
}

/// Deterministic LPT (longest-processing-time) assignment of `sizes.len()`
/// items to `k` workers.
///
/// Items are considered in descending estimated size (ties broken by
/// ascending index) and each goes to the worker with the smallest load so
/// far (ties broken by ascending worker index) — a pure function of
/// `sizes`, independent of thread scheduling. Every returned per-worker
/// list is sorted ascending, so workers that process their items in list
/// order visit them in global input order.
///
/// Classic bound: the resulting makespan is at most `4/3 − 1/(3k)` times
/// optimal, which is what turns a Zipfian site-size distribution from a
/// one-worker convoy into a balanced schedule.
///
/// `k == 0` is treated as 1. Workers may receive empty lists when
/// `k > sizes.len()`.
#[must_use]
pub fn lpt_assign(sizes: &[u64], k: usize) -> Vec<Vec<usize>> {
    let k = k.max(1);
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    // Descending size, ascending index on ties: deterministic.
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut loads = vec![0u64; k];
    for i in order {
        let w = loads
            .iter()
            .enumerate()
            .min_by(|(wa, la), (wb, lb)| la.cmp(lb).then(wa.cmp(wb)))
            .map(|(w, _)| w)
            .expect("k >= 1");
        loads[w] += sizes[i];
        assignment[w].push(i);
    }
    for list in &mut assignment {
        list.sort_unstable();
    }
    assignment
}

/// Order-preserving work-stealing parallel map using [`num_threads`]
/// workers.
///
/// Unlike [`par_map`]'s static contiguous chunks, workers claim items one
/// at a time from a shared atomic cursor, so a heavy-tailed workload
/// whose per-item costs are unknown up front still balances: a worker
/// stuck on one huge item never strands the rest of the queue. Each
/// result carries its input index and the output is reassembled in input
/// order, so the returned `Vec` equals
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for every
/// thread count.
pub fn par_map_dynamic<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_dynamic_threads(num_threads(), items, f)
}

/// [`par_map_dynamic`] with an explicit worker count (1 forces the
/// sequential path).
pub fn par_map_dynamic_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let k = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut tagged: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|_| {
                scope.spawn(move || {
                    let mut out: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        for h in handles {
            all.extend(h.join().expect("par_map_dynamic worker panicked"));
        }
        all
    });
    // Reassemble in input order: scheduling raced, the output must not.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Work-stealing *fold*: like [`par_map_dynamic_threads`], but each
/// worker folds the items it claims into one private accumulator, and
/// the per-worker accumulators (at most `threads` of them, however many
/// items there are) come back for the caller to combine. This is the
/// memory-bounded shape for sharded pipelines: peak state is
/// O(workers × accumulator), never O(items × accumulator).
///
/// Which items land in which accumulator is scheduling-dependent, so the
/// combined result is deterministic **only when the fold is commutative**
/// — counter addition, disjoint-key map union, histogram bucket adds.
/// Callers owning non-commutative folds need [`par_map_dynamic_threads`]
/// and its index-ordered results instead.
///
/// `step` returns `false` to make *its own* worker stop claiming items
/// (e.g. after recording an error in the accumulator); other workers
/// drain the remaining items normally. Every item is processed at most
/// once, and exactly once when no worker stops early.
pub fn par_fold_dynamic_threads<A, I, F>(threads: usize, n_items: usize, init: I, step: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) -> bool + Sync,
{
    if n_items == 0 {
        return Vec::new();
    }
    let k = threads.max(1).min(n_items);
    if k == 1 {
        let mut acc = init();
        for i in 0..n_items {
            if !step(&mut acc, i) {
                break;
            }
        }
        return vec![acc];
    }
    let cursor = AtomicUsize::new(0);
    let (init, step, cursor) = (&init, &step, &cursor);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|_| {
                scope.spawn(move || {
                    let mut acc = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items || !step(&mut acc, i) {
                            break;
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_fold_dynamic worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let got = par_map_threads(threads, items.clone(), |x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_passes_original_indices() {
        let items: Vec<&str> = vec!["a", "b", "c", "d", "e"];
        for threads in [1, 2, 5, 9] {
            let got = par_map_indexed_threads(threads, items.clone(), |i, s| format!("{i}:{s}"));
            assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"], "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn chunking_is_balanced_and_exhaustive() {
        // 10 items over 4 threads: chunks of 3, 3, 2, 2 — every index once.
        let seen = par_map_indexed_threads(4, (0..10u32).collect(), |i, t| {
            assert_eq!(i as u32, t);
            i
        });
        assert_eq!(seen, (0..10).collect::<Vec<usize>>());
        // k > n: every item still visited exactly once, extra workers idle.
        let seen = par_map_indexed_threads(16, (0..3u32).collect(), |i, t| {
            assert_eq!(i as u32, t);
            i
        });
        assert_eq!(seen, (0..3).collect::<Vec<usize>>());
        // n == 0: no chunks, no workers, empty output.
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed_threads(4, empty, |_, t: u32| t).is_empty());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn lpt_assignment_is_exhaustive_and_deterministic() {
        let sizes: Vec<u64> = vec![100, 1, 1, 1, 50, 1, 1, 49, 1, 1];
        for k in [1, 2, 3, 4, 16] {
            let a = lpt_assign(&sizes, k);
            assert_eq!(a.len(), k);
            let mut seen: Vec<usize> = a.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..sizes.len()).collect::<Vec<_>>(), "k={k}");
            // Pure function of the size vector.
            assert_eq!(a, lpt_assign(&sizes, k));
            // Per-worker lists are sorted so processing preserves input order.
            for list in &a {
                assert!(list.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn lpt_balances_a_zipfian_head() {
        // One dominant item (the aggregator shard) plus a long tail: the
        // static contiguous split puts the head and half the tail on
        // worker 0; LPT gives the head its own worker.
        let mut sizes = vec![1000u64];
        sizes.extend(std::iter::repeat(10).take(99));
        let a = lpt_assign(&sizes, 2);
        let load = |w: &Vec<usize>| w.iter().map(|&i| sizes[i]).sum::<u64>();
        let (l0, l1) = (load(&a[0]), load(&a[1]));
        let max = l0.max(l1) as f64;
        let mean = (l0 + l1) as f64 / 2.0;
        assert!(
            max / mean < 1.05,
            "LPT imbalance {:.3} (loads {l0}/{l1})",
            max / mean
        );
    }

    #[test]
    fn lpt_edge_cases() {
        // n == 0: k empty lists.
        let a = lpt_assign(&[], 3);
        assert_eq!(a, vec![Vec::<usize>::new(); 3]);
        // k > n: the n largest-first items land on distinct workers.
        let a = lpt_assign(&[5, 9, 1], 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.iter().filter(|l| !l.is_empty()).count(), 3);
        assert!(a.iter().all(|l| l.len() <= 1));
        // k == 0 behaves as one worker.
        let a = lpt_assign(&[3, 2, 1], 0);
        assert_eq!(a, vec![vec![0, 1, 2]]);
        // All-zero sizes: ties broken deterministically, round-robin-ish.
        let a = lpt_assign(&[0, 0, 0, 0], 2);
        assert_eq!(a, lpt_assign(&[0, 0, 0, 0], 2));
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn par_map_dynamic_matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = par_map_dynamic_threads(threads, &items, |i, x| {
                assert_eq!(items[i], *x);
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_dynamic_edge_cases() {
        // n == 0.
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_dynamic_threads(4, &empty, |_, x| *x).is_empty());
        // n == 1.
        assert_eq!(par_map_dynamic_threads(4, &[7u32], |_, x| x + 1), vec![8]);
        // k > n: output order still matches input order.
        let items = vec![3u32, 1, 2];
        assert_eq!(
            par_map_dynamic_threads(64, &items, |_, x| *x),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn par_fold_dynamic_commutative_fold_matches_sequential() {
        // Sum of i² over 0..500 — commutative, so any work-stealing
        // schedule must combine to the same total.
        let expect: u64 = (0..500u64).map(|i| i * i).sum();
        for threads in [1usize, 2, 3, 8, 500, 1000] {
            let accs = par_fold_dynamic_threads(threads, 500, || 0u64, |acc, i| {
                *acc += (i as u64) * (i as u64);
                true
            });
            assert!(accs.len() <= threads.max(1), "{} accs at {threads} threads", accs.len());
            assert_eq!(accs.iter().sum::<u64>(), expect, "diverged at {threads} threads");
        }
    }

    #[test]
    fn par_fold_dynamic_edge_cases() {
        // n == 0: no workers, no accumulators.
        assert!(par_fold_dynamic_threads(4, 0, || 0u64, |_, _| true).is_empty());
        // threads == 0 behaves as 1.
        let accs = par_fold_dynamic_threads(0, 3, || 0u64, |acc, i| {
            *acc += i as u64 + 1;
            true
        });
        assert_eq!(accs, vec![6]);
        // Early stop: the sequential worker sees items 0..=2 only.
        let accs = par_fold_dynamic_threads(1, 100, Vec::new, |acc: &mut Vec<usize>, i| {
            acc.push(i);
            i < 2
        });
        assert_eq!(accs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn par_fold_dynamic_processes_every_item_exactly_once() {
        for threads in [2usize, 8] {
            let accs = par_fold_dynamic_threads(threads, 97, Vec::new, |acc: &mut Vec<usize>, i| {
                acc.push(i);
                true
            });
            let mut seen: Vec<usize> = accs.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..97).collect::<Vec<_>>(), "at {threads} threads");
        }
    }

    #[test]
    fn par_map_dynamic_is_order_preserving_under_skew() {
        // Make early items slow so late items finish first; the output
        // must still come back in input order.
        let items: Vec<u64> = (0..40).collect();
        let got = par_map_dynamic_threads(8, &items, |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            *x
        });
        assert_eq!(got, items);
    }
}
