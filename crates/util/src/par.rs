//! Deterministic, std-only data parallelism.
//!
//! The build environment is offline, so this module provides the small
//! slice of rayon the workspace actually needs — an order-preserving,
//! chunked parallel map over indexed work — on top of
//! [`std::thread::scope`] alone.
//!
//! Determinism is the contract: `par_map(items, f)` returns exactly
//! `items.into_iter().map(f).collect()` for any thread count, because
//! work is split into contiguous chunks and results are re-assembled in
//! chunk order. Callers are responsible for making `f` itself a pure
//! function of its input (every corpus/render path achieves this by
//! deriving per-item seeds, never by sharing a generator).
//!
//! Thread count resolution: the `WEBSTRUCT_THREADS` environment variable
//! when set to a positive integer, else
//! [`std::thread::available_parallelism`]. `WEBSTRUCT_THREADS=1` is the
//! documented way to force every parallel path in the workspace onto the
//! purely sequential code path.

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "WEBSTRUCT_THREADS";

/// The number of worker threads parallel paths should use.
///
/// Resolution order: `WEBSTRUCT_THREADS` (positive integer) if set and
/// parseable, otherwise [`std::thread::available_parallelism`], falling
/// back to 1 when even that is unavailable. Re-read on every call so
/// tests and harnesses can vary it at runtime.
#[must_use]
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Order-preserving parallel map using [`num_threads`] workers.
///
/// Equivalent to `items.into_iter().map(f).collect()` for every thread
/// count (the single-thread case literally is that expression).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// Order-preserving parallel map passing each item's original index.
///
/// Equivalent to `items.into_iter().enumerate().map(|(i, t)| f(i, t))`
/// in output order, for every thread count.
pub fn par_map_indexed<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_indexed_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (1 forces the sequential path).
pub fn par_map_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_indexed_threads(threads, items, |_, t| f(t))
}

/// [`par_map_indexed`] with an explicit worker count.
pub fn par_map_indexed_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let k = threads.min(n);
    // Contiguous, balanced chunks: the first `n % k` chunks get one extra
    // item, so indices stay dense and chunk boundaries are deterministic.
    let base = n / k;
    let extra = n % k;
    let mut rest = items;
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(k);
    let mut offset = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        let tail = rest.split_off(size);
        chunks.push((offset, rest));
        rest = tail;
        offset += size;
    }
    debug_assert!(rest.is_empty());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let got = par_map_threads(threads, items.clone(), |x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_passes_original_indices() {
        let items: Vec<&str> = vec!["a", "b", "c", "d", "e"];
        for threads in [1, 2, 5, 9] {
            let got = par_map_indexed_threads(threads, items.clone(), |i, s| format!("{i}:{s}"));
            assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"], "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn chunking_is_balanced_and_exhaustive() {
        // 10 items over 4 threads: chunks of 3, 3, 2, 2 — every index once.
        let seen = par_map_indexed_threads(4, (0..10u32).collect(), |i, t| {
            assert_eq!(i as u32, t);
            i
        });
        assert_eq!(seen, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
