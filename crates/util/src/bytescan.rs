//! Word-at-a-time byte-scanning primitives for the extraction hot path.
//!
//! Every scanner in `webstruct-extract` used to walk page text `char` by
//! `char` through a per-character FSM — 1–2 orders of magnitude below what
//! byte-level skipping achieves on the same hardware. This module provides
//! the std-only, dependency-free kernels those scanners now skip with:
//!
//! * [`memchr`] / [`memchr2`] / [`memchr3`] — first occurrence of one of
//!   up to three bytes, processing a word (or a 16-byte SSE2 vector on
//!   x86_64, where SSE2 is part of the architecture baseline) per step;
//! * [`find_ascii_ci`] — ASCII case-insensitive substring search, built on
//!   [`memchr2`] candidate skipping;
//! * [`ByteTable`] — a 256-entry byte-class membership table with a
//!   skip-scan ([`ByteTable::find_in`]) that jumps straight to the next
//!   interesting byte (digit-run starts, token starts, tag opens);
//! * [`find_ascii_digit`] — SWAR range scan for `b'0'..=b'9'`, the
//!   digit-run entry point of the phone and ISBN scanners.
//!
//! ## UTF-8 safety argument
//!
//! Every kernel here searches for **ASCII** bytes (`< 0x80`). UTF-8
//! guarantees that bytes of multibyte sequences are all `>= 0x80`, so an
//! ASCII byte found at offset `i` of a valid UTF-8 string is always a
//! whole character and `i` is always a character boundary. Callers may
//! therefore slice `&str` at any offset these functions return without
//! re-validating boundaries. Tables that deliberately include `0x80..`
//! (e.g. the tokenizer's "token start" class) land on the *leading* byte
//! of a multibyte character for the same reason: continuation bytes are
//! only reached by starting inside a sequence, which the scanners never
//! do because they always advance by whole matches.
//!
//! Correctness is locked down by seeded differential property tests at
//! the bottom of this file: every primitive is compared against a naive
//! scalar reference on adversarial inputs (needles at word boundaries,
//! needles straddling the 8/16-byte steps, multibyte neighbourhoods).

/// Lowest byte of every lane set: `0x0101…01`.
const LO: u64 = 0x0101_0101_0101_0101;
/// Highest bit of every lane set: `0x8080…80`.
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast a byte into all eight lanes of a word.
#[inline(always)]
const fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// Per-lane zero detector: the high bit of each lane of the result is set
/// if that lane of `x` is zero. False positives can only occur in lanes
/// *above* (more significant than) a true zero lane, so the lowest set
/// bit always marks a real zero — exactly what little-endian
/// `trailing_zeros` consumes.
#[inline(always)]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Per-lane ASCII-digit detector (`0x30..=0x39`), the bit-twiddling
/// "byte between m and n" range test. Exact for this range: all masks
/// stay within their lanes (no inter-lane carries), so every lane's high
/// bit is set iff that byte is a digit.
#[inline(always)]
const fn digit_lanes(x: u64) -> u64 {
    // m < b < n with m = 0x2F, n = 0x3A  ⇔  b'0' <= b <= b'9'.
    const N: u64 = splat(127 + 0x3A);
    const M: u64 = splat(127 - 0x2F);
    N.wrapping_sub(x & !HI) & !x & (x & !HI).wrapping_add(M) & HI
}

/// Lane index (0..8) of the lowest set high-bit in a detector mask.
#[inline(always)]
const fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// First occurrence of `n1` in `hay`, scanning a word (or SSE2 vector)
/// at a time.
#[must_use]
pub fn memchr(n1: u8, hay: &[u8]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        memchr_sse2(n1, hay)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        memchr_swar(n1, hay)
    }
}

/// First occurrence of `n1` or `n2` in `hay`.
#[must_use]
pub fn memchr2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        memchr2_sse2(n1, n2, hay)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        memchr2_swar(n1, n2, hay)
    }
}

/// First occurrence of `n1`, `n2` or `n3` in `hay`.
#[must_use]
pub fn memchr3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        memchr3_sse2(n1, n2, n3, hay)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        memchr3_swar(n1, n2, n3, hay)
    }
}

/// First ASCII digit (`b'0'..=b'9'`) at or after `from`.
#[must_use]
pub fn find_ascii_digit(hay: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let hay = &hay[from..];
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        let m = digit_lanes(w);
        if m != 0 {
            return Some(from + base + first_lane(m));
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(u8::is_ascii_digit)
        .map(|p| from + base + p)
}

macro_rules! swar_memchr {
    ($name:ident, $($n:ident),+) => {
        #[allow(dead_code)]
        fn $name($($n: u8,)+ hay: &[u8]) -> Option<usize> {
            $(let $n = splat($n);)+
            let mut chunks = hay.chunks_exact(8);
            let mut base = 0usize;
            for chunk in chunks.by_ref() {
                let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
                let m = $(zero_lanes(w ^ $n))|+;
                if m != 0 {
                    return Some(base + first_lane(m));
                }
                base += 8;
            }
            let tail = chunks.remainder();
            tail.iter()
                .position(|&b| { let b = splat(b); false $(|| b == $n)+ })
                .map(|p| base + p)
        }
    };
}

swar_memchr!(memchr_swar, n1);
swar_memchr!(memchr2_swar, n1, n2);
swar_memchr!(memchr3_swar, n1, n2, n3);

#[cfg(target_arch = "x86_64")]
mod sse2 {
    //! 16-bytes-at-a-time variants. SSE2 is part of the x86_64 baseline,
    //! so these need no runtime feature detection.
    use std::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8,
    };

    /// Match mask of `chunk` (16 bytes) against up to three needles; bit
    /// `i` of the result is set iff byte `i` equals one of them.
    ///
    /// SAFETY contract (callers): `chunk` must point at 16 readable bytes.
    #[inline(always)]
    unsafe fn mask3(chunk: *const u8, n1: u8, n2: u8, n3: Option<u8>) -> u32 {
        // SAFETY: caller guarantees 16 readable bytes; loadu has no
        // alignment requirement.
        let v = unsafe { _mm_loadu_si128(chunk.cast::<__m128i>()) };
        let m1 = _mm_cmpeq_epi8(v, _mm_set1_epi8(n1 as i8));
        let m2 = _mm_cmpeq_epi8(v, _mm_set1_epi8(n2 as i8));
        let mut m = _mm_or_si128(m1, m2);
        if let Some(n3) = n3 {
            m = _mm_or_si128(m, _mm_cmpeq_epi8(v, _mm_set1_epi8(n3 as i8)));
        }
        _mm_movemask_epi8(m) as u32
    }

    pub(super) fn find(hay: &[u8], n1: u8, n2: u8, n3: Option<u8>) -> Option<usize> {
        let mut i = 0usize;
        while i + 16 <= hay.len() {
            // SAFETY: `i + 16 <= hay.len()` guarantees 16 readable bytes.
            let m = unsafe { mask3(hay.as_ptr().add(i), n1, n2, n3) };
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i..]
            .iter()
            .position(|&b| b == n1 || b == n2 || n3 == Some(b))
            .map(|p| i + p)
    }
}

#[cfg(target_arch = "x86_64")]
fn memchr_sse2(n1: u8, hay: &[u8]) -> Option<usize> {
    sse2::find(hay, n1, n1, None)
}

#[cfg(target_arch = "x86_64")]
fn memchr2_sse2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    sse2::find(hay, n1, n2, None)
}

#[cfg(target_arch = "x86_64")]
fn memchr3_sse2(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    sse2::find(hay, n1, n2, Some(n3))
}

/// First occurrence of `needle` in `hay`, matching ASCII letters
/// case-insensitively. The needle must be pure ASCII (checked by
/// `debug_assert`); an empty needle matches at offset 0.
///
/// The scan skips to candidate positions with [`memchr2`] on the two
/// cases of the needle's first byte, then verifies the remainder with
/// `eq_ignore_ascii_case` — so haystack bytes that cannot start a match
/// are never touched one at a time.
#[must_use]
pub fn find_ascii_ci(hay: &[u8], needle: &[u8]) -> Option<usize> {
    debug_assert!(needle.is_ascii(), "find_ascii_ci needle must be ASCII");
    let Some((&first, rest)) = needle.split_first() else {
        return Some(0);
    };
    if needle.len() > hay.len() {
        return None;
    }
    let (lo, up) = (first.to_ascii_lowercase(), first.to_ascii_uppercase());
    let mut i = 0usize;
    let last_start = hay.len() - needle.len();
    while i <= last_start {
        // Candidate starts past `last_start` cannot fit the needle, so
        // the skip scan is bounded to the viable window.
        let p = i + memchr2(lo, up, &hay[i..=last_start])?;
        if hay[p + 1..p + needle.len()].eq_ignore_ascii_case(rest) {
            return Some(p);
        }
        i = p + 1;
    }
    None
}

/// A 256-entry byte-class membership table: the skip tables the scanners
/// jump with. Built in `const` context so every class the workspace uses
/// is a `static` with zero startup cost.
#[derive(Debug, Clone)]
pub struct ByteTable {
    member: [bool; 256],
}

impl ByteTable {
    /// Table containing exactly the bytes of `members`.
    #[must_use]
    pub const fn new(members: &[u8]) -> Self {
        let mut member = [false; 256];
        let mut i = 0;
        while i < members.len() {
            member[members[i] as usize] = true;
            i += 1;
        }
        ByteTable { member }
    }

    /// Add the inclusive byte range `lo..=hi` to the class.
    #[must_use]
    pub const fn with_range(mut self, lo: u8, hi: u8) -> Self {
        let mut b = lo as usize;
        while b <= hi as usize {
            self.member[b] = true;
            b += 1;
        }
        ByteTable {
            member: self.member,
        }
    }

    /// Whether `b` is in the class.
    #[inline(always)]
    #[must_use]
    pub fn contains(&self, b: u8) -> bool {
        self.member[b as usize]
    }

    /// Index of the first class member at or after `from`, skipping
    /// non-members four at a time.
    #[must_use]
    pub fn find_in(&self, hay: &[u8], from: usize) -> Option<usize> {
        if from >= hay.len() {
            return None;
        }
        let mut i = from;
        // Unrolled by four: one predictable branch per four loads keeps
        // the skip loop at ~1 byte/cycle without any per-class SIMD.
        while i + 4 <= hay.len() {
            if self.member[hay[i] as usize] {
                return Some(i);
            }
            if self.member[hay[i + 1] as usize] {
                return Some(i + 1);
            }
            if self.member[hay[i + 2] as usize] {
                return Some(i + 2);
            }
            if self.member[hay[i + 3] as usize] {
                return Some(i + 3);
            }
            i += 4;
        }
        while i < hay.len() {
            if self.member[hay[i] as usize] {
                return Some(i);
            }
            i += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Seed, Xoshiro256};

    // ---- naive scalar references -------------------------------------

    fn ref_memchr3(n: &[u8], hay: &[u8]) -> Option<usize> {
        hay.iter().position(|b| n.contains(b))
    }

    fn ref_find_ci(hay: &[u8], needle: &[u8]) -> Option<usize> {
        if needle.is_empty() {
            return Some(0);
        }
        if needle.len() > hay.len() {
            return None;
        }
        (0..=hay.len() - needle.len())
            .find(|&i| hay[i..i + needle.len()].eq_ignore_ascii_case(needle))
    }

    fn ref_find_digit(hay: &[u8], from: usize) -> Option<usize> {
        hay.iter()
            .enumerate()
            .skip(from)
            .find(|(_, b)| b.is_ascii_digit())
            .map(|(i, _)| i)
    }

    // ---- deterministic adversarial corpus ----------------------------

    /// Random haystacks biased toward word-boundary adversaries: needles
    /// planted at offsets 0, 7, 8, 15, 16 and len-1 so every match
    /// position relative to the 8-byte SWAR / 16-byte SSE2 step occurs.
    fn adversarial_haystacks() -> Vec<Vec<u8>> {
        let mut rng = Xoshiro256::from_seed(Seed(0xB17E));
        let mut out = Vec::new();
        for len in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100, 257] {
            for _ in 0..8 {
                let mut hay: Vec<u8> = (0..len)
                    .map(|_| (rng.u64_below(96) as u8) + b' ') // printable ASCII
                    .collect();
                // Sprinkle multibyte UTF-8 and high bytes.
                if len >= 4 && rng.bool_with(0.5) {
                    let at = rng.u64_below(len as u64 - 3) as usize;
                    hay[at..at + 2].copy_from_slice("é".as_bytes());
                }
                // Plant the probe bytes at step-boundary offsets.
                for &at in &[0usize, 7, 8, 15, 16, len.saturating_sub(1)] {
                    if at < len && rng.bool_with(0.4) {
                        hay[at] = *[b'<', b'>', b'0', b'9', b'x', 0x80, 0xFF]
                            .get(rng.u64_below(7) as usize)
                            .expect("index < 7");
                    }
                }
                out.push(hay);
            }
        }
        out
    }

    #[test]
    fn memchr_family_matches_reference_on_adversarial_inputs() {
        for hay in adversarial_haystacks() {
            for &a in &[b'<', b'0', b'x', 0x80u8, 0xFFu8, b' '] {
                assert_eq!(memchr(a, &hay), ref_memchr3(&[a], &hay), "memchr {a:#x} {hay:?}");
                assert_eq!(
                    memchr_swar(a, &hay),
                    ref_memchr3(&[a], &hay),
                    "swar memchr {a:#x} {hay:?}"
                );
                for &b in b">9+" {
                    assert_eq!(
                        memchr2(a, b, &hay),
                        ref_memchr3(&[a, b], &hay),
                        "memchr2 {a:#x},{b:#x} {hay:?}"
                    );
                    assert_eq!(memchr2_swar(a, b, &hay), ref_memchr3(&[a, b], &hay));
                    for &c in b"(-" {
                        assert_eq!(
                            memchr3(a, b, c, &hay),
                            ref_memchr3(&[a, b, c], &hay),
                            "memchr3 {a:#x},{b:#x},{c:#x} {hay:?}"
                        );
                        assert_eq!(memchr3_swar(a, b, c, &hay), ref_memchr3(&[a, b, c], &hay));
                    }
                }
            }
        }
    }

    #[test]
    fn find_ascii_digit_matches_reference() {
        for hay in adversarial_haystacks() {
            for from in 0..=hay.len().min(20) {
                assert_eq!(
                    find_ascii_digit(&hay, from),
                    ref_find_digit(&hay, from),
                    "digits from {from} in {hay:?}"
                );
            }
            // Out-of-range from is None, not a panic.
            assert_eq!(find_ascii_digit(&hay, hay.len() + 1), None);
        }
        // Every byte value classifies correctly (range-trick exactness).
        for b in 0u8..=255 {
            let hay = [b; 9];
            assert_eq!(
                find_ascii_digit(&hay, 0).is_some(),
                b.is_ascii_digit(),
                "byte {b:#x}"
            );
        }
    }

    #[test]
    fn find_ascii_ci_matches_reference() {
        let needles: &[&[u8]] = &[b"isbn", b"href", b"a", b"", b"xyzzy", b"ISBN"];
        for hay in adversarial_haystacks() {
            for needle in needles {
                assert_eq!(
                    find_ascii_ci(&hay, needle),
                    ref_find_ci(&hay, needle),
                    "needle {needle:?} in {hay:?}"
                );
            }
        }
        // Explicit boundary cases: needle at start, end, straddling the
        // 8- and 16-byte steps, and case-mixed.
        let hay = b"IsBnxxxxxisbNxxxxxxxxxxxxxxxxxISBN";
        assert_eq!(find_ascii_ci(hay, b"isbn"), Some(0));
        assert_eq!(find_ascii_ci(&hay[1..], b"isbn"), Some(8));
        assert_eq!(find_ascii_ci(&hay[14..], b"isbn"), Some(16));
        assert_eq!(find_ascii_ci(b"isb", b"isbn"), None);
        assert_eq!(find_ascii_ci(b"", b"isbn"), None);
        assert_eq!(find_ascii_ci(b"", b""), Some(0));
    }

    #[test]
    fn byte_table_find_matches_reference() {
        static DIGITS: ByteTable = ByteTable::new(&[]).with_range(b'0', b'9');
        static PHONE: ByteTable = ByteTable::new(b"(+").with_range(b'0', b'9');
        for hay in adversarial_haystacks() {
            for from in 0..=hay.len().min(20) {
                assert_eq!(DIGITS.find_in(&hay, from), ref_find_digit(&hay, from));
                assert_eq!(
                    PHONE.find_in(&hay, from),
                    hay.iter()
                        .enumerate()
                        .skip(from)
                        .find(|(_, b)| b.is_ascii_digit() || **b == b'(' || **b == b'+')
                        .map(|(i, _)| i),
                    "phone class from {from} in {hay:?}"
                );
            }
        }
        assert!(DIGITS.contains(b'5'));
        assert!(!DIGITS.contains(b'a'));
        assert!(PHONE.contains(b'+'));
    }

    #[test]
    fn high_byte_classes_land_on_leading_bytes() {
        // A class that includes the non-ASCII range finds the *leading*
        // byte of a multibyte char when scanning from a boundary.
        static NON_ASCII: ByteTable = ByteTable::new(&[]).with_range(0x80, 0xFF);
        let s = "ab\u{e9}cd\u{1F600}e"; // é = 2 bytes, emoji = 4 bytes
        let bytes = s.as_bytes();
        let first = NON_ASCII.find_in(bytes, 0).expect("é present");
        assert!(s.is_char_boundary(first));
        let second = NON_ASCII
            .find_in(bytes, first + 2) // skip é wholly
            .expect("emoji present");
        assert!(s.is_char_boundary(second));
    }
}
