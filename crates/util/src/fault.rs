//! Deterministic fault injection: a seeded model of a flaky web.
//!
//! The paper's §5.3 robustness analysis asks a *static* question (does the
//! entity–site graph stay connected when the top-k sites are removed); a
//! real bootstrapping system faces the *dynamic* version — fetches time
//! out, pages truncate, sites go dead mid-crawl, query endpoints
//! rate-limit. This module provides the fault model the crawl and extract
//! pipelines degrade against:
//!
//! * [`FaultPlan`] — per-site failure profiles drawn from the same seeded
//!   RNG discipline as the corpus. Every decision is a **pure function of
//!   `(seed, site, attempt)`** — no mutable generator state — so fault
//!   streams are byte-reproducible regardless of thread count or the
//!   order in which sites are visited.
//! * [`SimClock`] — a simulated tick clock; backoff waits and timeout
//!   costs advance it deterministically (never the wall clock).
//! * [`RetryPolicy`] — capped exponential backoff with deterministic,
//!   seed-derived jitter.
//! * [`CircuitBreaker`] — a per-site closed → open → half-open breaker
//!   that stops budget from being burned on known-dead sites.
//!
//! [`FaultPlan::none`] is the fault-free plan: it injects nothing, costs
//! nothing, and every consumer is required (and tested) to be
//! bit-identical to its pre-fault behaviour under it.

use crate::rng::Seed;

/// One injected fault, as observed by a fetcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Connection reset / 5xx — retryable immediately (after backoff).
    Transient,
    /// The fetch hung until the deadline — retryable, but costs extra
    /// simulated time ([`SimClock`] ticks).
    Timeout,
    /// 429 — the site is throttling this client; retryable after backoff.
    RateLimited,
    /// The site is permanently gone. Indistinguishable from a transient
    /// error to the fetcher (it still retries), but no attempt ever
    /// succeeds.
    Dead,
    /// The fetch "succeeded" but returned only this fraction of the page
    /// (always in `(0, 1)`). A partial result, not an error.
    Truncated(f64),
}

/// How a site behaves for the lifetime of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Normal site: per-attempt transient/timeout/truncation faults only.
    Healthy,
    /// Permanently dead: every attempt fails with [`Fault::Dead`].
    Dead,
    /// Rate-limited: the first [`FaultConfig::rate_limit_attempts`]
    /// attempts fail with [`Fault::RateLimited`], then the site behaves
    /// like a healthy one.
    RateLimited,
}

/// Failure-rate knobs for a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-attempt probability of a transient error or timeout.
    pub failure_rate: f64,
    /// Of those per-attempt failures, the fraction that are timeouts
    /// (the rest are transients).
    pub timeout_share: f64,
    /// Per-successful-attempt probability the page comes back truncated.
    pub truncation_rate: f64,
    /// Per-site probability the site is permanently dead.
    pub dead_site_rate: f64,
    /// Per-site probability the site rate-limits this client.
    pub rate_limited_site_rate: f64,
    /// Attempts a rate-limited site rejects before letting the client in.
    pub rate_limit_attempts: u32,
}

impl FaultConfig {
    /// The fault-free configuration (all rates zero).
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            failure_rate: 0.0,
            timeout_share: 0.0,
            truncation_rate: 0.0,
            dead_site_rate: 0.0,
            rate_limited_site_rate: 0.0,
            rate_limit_attempts: 0,
        }
    }

    /// A one-knob preset: `rate` is the headline per-attempt failure
    /// probability, and the structural rates (dead sites, rate limiters,
    /// truncation) scale down from it in fixed proportions chosen to
    /// exercise every fault kind at realistic relative frequencies.
    #[must_use]
    pub fn flaky(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultConfig {
            failure_rate: rate,
            timeout_share: 0.3,
            truncation_rate: rate * 0.5,
            dead_site_rate: rate * 0.2,
            rate_limited_site_rate: rate * 0.25,
            rate_limit_attempts: 2,
        }
    }

    /// Whether this configuration can ever inject a fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.failure_rate > 0.0
            || self.truncation_rate > 0.0
            || self.dead_site_rate > 0.0
            || self.rate_limited_site_rate > 0.0
    }
}

/// A seeded, immutable fault schedule over a universe of sites.
///
/// All queries are pure functions of the plan's seed and the `(site,
/// attempt)` coordinates, so a plan can be shared freely across threads
/// and produces identical streams however it is interleaved.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    class_seed: Seed,
    attempt_seed: Seed,
    trunc_seed: Seed,
}

/// Map a derived seed to a uniform f64 in `[0, 1)` (top 53 bits).
#[inline]
fn unit(seed: Seed, site: u64, attempt: u64) -> f64 {
    let h = seed.derive_u64(site).derive_u64(attempt).0;
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Build a plan from a configuration and a seed.
    #[must_use]
    pub fn new(config: FaultConfig, seed: Seed) -> Self {
        FaultPlan {
            config,
            class_seed: seed.derive("fault-class"),
            attempt_seed: seed.derive("fault-attempt"),
            trunc_seed: seed.derive("fault-trunc"),
        }
    }

    /// The fault-free plan: [`FaultPlan::fault`] always returns `None`.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::new(FaultConfig::none(), Seed(0))
    }

    /// Whether this plan can ever inject a fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// The configuration the plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The permanent class of `site` under this plan.
    #[must_use]
    pub fn site_class(&self, site: usize) -> SiteClass {
        if !self.is_active() {
            return SiteClass::Healthy;
        }
        let u = unit(self.class_seed, site as u64, 0);
        if u < self.config.dead_site_rate {
            SiteClass::Dead
        } else if u < self.config.dead_site_rate + self.config.rate_limited_site_rate {
            SiteClass::RateLimited
        } else {
            SiteClass::Healthy
        }
    }

    /// The fault injected into attempt number `attempt` (0-based, counted
    /// per site) against `site`, or `None` for a clean full fetch.
    #[must_use]
    pub fn fault(&self, site: usize, attempt: u32) -> Option<Fault> {
        if !self.is_active() {
            return None;
        }
        match self.site_class(site) {
            SiteClass::Dead => return Some(Fault::Dead),
            SiteClass::RateLimited if attempt < self.config.rate_limit_attempts => {
                return Some(Fault::RateLimited)
            }
            SiteClass::RateLimited | SiteClass::Healthy => {}
        }
        let u = unit(self.attempt_seed, site as u64, u64::from(attempt));
        if u < self.config.failure_rate {
            // Reuse the residual uniform to split timeout vs. transient.
            if u / self.config.failure_rate < self.config.timeout_share {
                return Some(Fault::Timeout);
            }
            return Some(Fault::Transient);
        }
        let v = unit(self.trunc_seed, site as u64, u64::from(attempt));
        if v < self.config.truncation_rate {
            // Residual uniform → kept fraction in [0.1, 0.9].
            let frac = 0.1 + 0.8 * (v / self.config.truncation_rate);
            return Some(Fault::Truncated(frac));
        }
        None
    }
}

/// A simulated clock counting abstract ticks. Backoff waits, fetch costs
/// and breaker cooldowns all live on this clock, never the wall clock, so
/// "time" is part of the reproducible experiment state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// A clock at tick zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `ticks` (saturating).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so a round is `1 + max_retries`
    /// attempts at most).
    pub max_retries: u32,
    /// Backoff before the first retry, in [`SimClock`] ticks.
    pub base_backoff_ticks: u64,
    /// Ceiling on the exponential backoff (pre-jitter).
    pub max_backoff_ticks: u64,
    /// Jitter amplitude as a fraction of the backoff, in `[0, 1]`. The
    /// jitter itself is derived from `(salt, retry)` — deterministic, but
    /// decorrelated across sites so retries don't synchronise.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ticks: 10,
            max_backoff_ticks: 160,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Ticks to wait before retry number `retry` (0-based), salted by the
    /// caller (typically the site id) for decorrelated jitter.
    #[must_use]
    pub fn backoff_ticks(&self, retry: u32, salt: u64) -> u64 {
        let exp = self
            .base_backoff_ticks
            .saturating_mul(1u64 << retry.min(32))
            .min(self.max_backoff_ticks);
        let j = unit(Seed(0x6A77_7E52).derive_u64(salt), u64::from(retry), 1) * self.jitter;
        exp + (exp as f64 * j) as u64
    }
}

/// Breaker tuning: how many consecutive failed fetch rounds open it, and
/// how long it stays open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Ticks an open breaker waits before allowing a half-open probe.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 500,
        }
    }
}

/// Breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Tripped: traffic is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is allowed through.
    HalfOpen,
}

/// A per-site circuit breaker over the simulated clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: u64,
    /// Times the breaker has tripped open (including re-opens from a
    /// failed half-open probe).
    pub opens: u32,
}

impl CircuitBreaker {
    /// A closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0,
            opens: 0,
        }
    }

    /// Current state (as of the last transition).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a request may proceed at tick `now`. Transitions
    /// `Open → HalfOpen` once the cooldown has elapsed.
    pub fn allow(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful round: closes the breaker and resets the count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed round at tick `now`. Returns `true` when this
    /// failure tripped the breaker open.
    pub fn record_failure(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                self.trip(now);
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
            // Failures reported while open (e.g. from an in-flight fetch)
            // keep it open without re-counting.
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.open_until = now.saturating_add(self.config.cooldown_ticks);
        self.consecutive_failures = 0;
        self.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_and_clean() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for site in 0..100 {
            assert_eq!(plan.site_class(site), SiteClass::Healthy);
            for attempt in 0..10 {
                assert_eq!(plan.fault(site, attempt), None);
            }
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_coordinates() {
        let a = FaultPlan::new(FaultConfig::flaky(0.3), Seed(7));
        let b = FaultPlan::new(FaultConfig::flaky(0.3), Seed(7));
        // Query in different orders: identical answers.
        let mut forward = Vec::new();
        for site in 0..50 {
            for attempt in 0..4 {
                forward.push(a.fault(site, attempt));
            }
        }
        let mut backward = Vec::new();
        for site in (0..50).rev() {
            for attempt in (0..4).rev() {
                backward.push(b.fault(site, attempt));
            }
        }
        backward.reverse();
        let reordered: Vec<_> = (0..50)
            .flat_map(|site| (0..4).map(move |attempt| (site, attempt)))
            .map(|(s, at)| {
                // Interleave with unrelated queries: must not matter.
                let _ = b.site_class((s + 13) % 50);
                b.fault(s, at)
            })
            .collect();
        assert_eq!(forward, reordered);
        // Reversed iteration reversed back gives a site-major, attempt-major
        // order mismatch; compare via the coordinates instead.
        for (i, (site, attempt)) in (0..50)
            .flat_map(|s| (0..4).map(move |a| (s, a)))
            .enumerate()
        {
            let j = (49 - site) * 4 + (3 - attempt);
            assert_eq!(forward[i], backward[backward.len() - 1 - j]);
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FaultPlan::new(FaultConfig::flaky(0.5), Seed(1));
        let b = FaultPlan::new(FaultConfig::flaky(0.5), Seed(2));
        let stream = |p: &FaultPlan| -> Vec<Option<Fault>> {
            (0..200).map(|s| p.fault(s, 0)).collect()
        };
        assert_ne!(stream(&a), stream(&b));
    }

    #[test]
    fn fault_rates_are_calibrated() {
        let plan = FaultPlan::new(
            FaultConfig {
                failure_rate: 0.4,
                timeout_share: 0.5,
                truncation_rate: 0.2,
                dead_site_rate: 0.0,
                rate_limited_site_rate: 0.0,
                rate_limit_attempts: 0,
            },
            Seed(11),
        );
        let n = 20_000u32;
        let mut failures = 0;
        let mut timeouts = 0;
        let mut truncated = 0;
        for attempt in 0..n {
            match plan.fault(0, attempt) {
                Some(Fault::Timeout) => {
                    failures += 1;
                    timeouts += 1;
                }
                Some(Fault::Transient) => failures += 1,
                Some(Fault::Truncated(f)) => {
                    assert!((0.1..0.9).contains(&f), "fraction {f}");
                    truncated += 1;
                }
                Some(_) => unreachable!("no dead/rate-limited sites configured"),
                None => {}
            }
        }
        let fail_rate = f64::from(failures) / f64::from(n);
        assert!((fail_rate - 0.4).abs() < 0.02, "failure rate {fail_rate}");
        let timeout_share = f64::from(timeouts) / f64::from(failures);
        assert!((timeout_share - 0.5).abs() < 0.05, "timeout share {timeout_share}");
        // Truncation applies to the non-failing 60%.
        let trunc_rate = f64::from(truncated) / (f64::from(n) * 0.6);
        assert!((trunc_rate - 0.2).abs() < 0.02, "truncation rate {trunc_rate}");
    }

    #[test]
    fn dead_sites_fail_every_attempt() {
        let plan = FaultPlan::new(
            FaultConfig {
                dead_site_rate: 1.0,
                ..FaultConfig::none()
            },
            Seed(3),
        );
        // dead_site_rate alone leaves is_active true.
        assert!(plan.is_active());
        for site in 0..20 {
            assert_eq!(plan.site_class(site), SiteClass::Dead);
            for attempt in 0..5 {
                assert_eq!(plan.fault(site, attempt), Some(Fault::Dead));
            }
        }
    }

    #[test]
    fn rate_limited_sites_recover_after_the_configured_attempts() {
        let plan = FaultPlan::new(
            FaultConfig {
                rate_limited_site_rate: 1.0,
                rate_limit_attempts: 2,
                ..FaultConfig::none()
            },
            Seed(4),
        );
        assert_eq!(plan.site_class(9), SiteClass::RateLimited);
        assert_eq!(plan.fault(9, 0), Some(Fault::RateLimited));
        assert_eq!(plan.fault(9, 1), Some(Fault::RateLimited));
        assert_eq!(plan.fault(9, 2), None, "limit lifts after 2 attempts");
    }

    #[test]
    fn dead_site_rate_is_calibrated() {
        let plan = FaultPlan::new(FaultConfig::flaky(0.5), Seed(5));
        let dead = (0..10_000)
            .filter(|&s| plan.site_class(s) == SiteClass::Dead)
            .count();
        // flaky(0.5) → dead_site_rate 0.1.
        let rate = dead as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.01, "dead-site rate {rate}");
    }

    #[test]
    fn sim_clock_advances_and_saturates() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(10);
        clock.advance(5);
        assert_eq!(clock.now(), 15);
        clock.advance(u64::MAX);
        assert_eq!(clock.now(), u64::MAX);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_ticks: 10,
            max_backoff_ticks: 80,
            jitter: 0.0,
        };
        assert_eq!(policy.backoff_ticks(0, 1), 10);
        assert_eq!(policy.backoff_ticks(1, 1), 20);
        assert_eq!(policy.backoff_ticks(2, 1), 40);
        assert_eq!(policy.backoff_ticks(3, 1), 80);
        assert_eq!(policy.backoff_ticks(9, 1), 80, "capped");
        // Huge retry numbers must not overflow the shift.
        assert_eq!(policy.backoff_ticks(u32::MAX, 1), 80);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for retry in 0..5 {
            for salt in 0..20 {
                let a = policy.backoff_ticks(retry, salt);
                let b = policy.backoff_ticks(retry, salt);
                assert_eq!(a, b, "jitter must be deterministic");
                let exp = policy
                    .base_backoff_ticks
                    .saturating_mul(1 << retry)
                    .min(policy.max_backoff_ticks);
                assert!(a >= exp && a <= exp + (exp as f64 * policy.jitter) as u64 + 1);
            }
        }
        // Different salts de-synchronise.
        let distinct: std::collections::HashSet<u64> =
            (0..50).map(|salt| policy.backoff_ticks(2, salt)).collect();
        assert!(distinct.len() > 1, "jitter should vary across salts");
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 100,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(0));
        assert!(!b.record_failure(10));
        assert!(b.allow(11));
        assert!(b.record_failure(20), "second failure trips it");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 1);
        assert!(!b.allow(50), "still cooling down");
        assert!(b.allow(120), "cooldown elapsed: half-open probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens immediately.
        assert!(b.record_failure(121));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 2);
        // Successful probe closes it fully.
        assert!(b.allow(300));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(301));
    }

    #[test]
    fn breaker_success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 10,
        });
        assert!(!b.record_failure(1));
        assert!(!b.record_failure(2));
        b.record_success();
        assert!(!b.record_failure(3), "count restarted after success");
        assert!(!b.record_failure(4));
        assert!(b.record_failure(5));
    }

    #[test]
    fn flaky_preset_scales_from_one_knob() {
        let cfg = FaultConfig::flaky(0.2);
        assert!((cfg.failure_rate - 0.2).abs() < 1e-12);
        assert!((cfg.dead_site_rate - 0.04).abs() < 1e-12);
        assert!(cfg.is_active());
        assert!(!FaultConfig::flaky(0.0).is_active());
        // Out-of-range headline rates clamp.
        assert!((FaultConfig::flaky(7.0).failure_rate - 1.0).abs() < 1e-12);
    }
}
