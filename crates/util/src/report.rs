//! Report primitives: figures (named series of points) and tables, with
//! gnuplot-compatible `.dat`, Markdown, and terminal ASCII renderings.
//!
//! Every experiment in `webstruct-core` produces one of these, so the same
//! artifact can be printed in an example binary, written to disk for
//! plotting, and asserted against in integration tests.

use std::fmt::Write as _;

/// One named curve: a sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"k=5"` or `"greedy set cover"`.
    pub name: String,
    /// Points in plotting order (normally ascending x).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series from a name and points.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the largest x (often "coverage at the full site
    /// list"), or `None` for an empty series.
    #[must_use]
    pub fn final_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Linear interpolation of y at `x`, clamping outside the domain.
    /// Returns `None` for an empty series. Points must be sorted by x.
    #[must_use]
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if x <= first.0 {
            return Some(first.1);
        }
        if x >= last.0 {
            return Some(last.1);
        }
        let idx = self.points.partition_point(|&(px, _)| px < x);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        if (x1 - x0).abs() < f64::EPSILON {
            return Some(y0);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// The smallest x at which the series reaches `target` y (series must be
    /// non-decreasing in y for the answer to be meaningful). `None` if the
    /// target is never reached.
    #[must_use]
    pub fn first_x_reaching(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, y)| y >= target)
            .map(|&(x, _)| x)
    }
}

/// A figure: several series sharing axes, mirroring one paper plot.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Stable identifier, e.g. `"fig1a"`.
    pub id: String,
    /// Human title, e.g. `"Restaurants phones"`.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Whether the x axis is logarithmic (all coverage plots are).
    pub log_x: bool,
    /// Whether the y axis is logarithmic (the demand PDFs are).
    pub log_y: bool,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Start an empty figure with linear axes.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Builder: set axis labels.
    #[must_use]
    pub fn with_axes(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Builder: mark the x axis logarithmic.
    #[must_use]
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Builder: mark the y axis logarithmic.
    #[must_use]
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Find a series by name.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Gnuplot-compatible data block: `# series` comment headers, `x y`
    /// rows, blank-line separated.
    #[must_use]
    pub fn to_dat(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}: {}", self.id, self.title);
        let _ = writeln!(out, "# x: {} | y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "\n# series: {}", s.name);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{x} {y}");
            }
        }
        out
    }

    /// Render a compact ASCII chart (for examples and quick inspection).
    ///
    /// Each series gets a distinct glyph; later series overdraw earlier
    /// ones. Log axes are applied per the figure flags (x/y values must be
    /// positive on log axes; non-positive points are skipped).
    #[must_use]
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        const GLYPHS: [char; 10] = ['*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~'];
        let width = width.max(16);
        let height = height.max(4);
        let tx = |x: f64| if self.log_x { x.ln() } else { x };
        let ty = |y: f64| if self.log_y { y.ln() } else { y };
        let usable = |x: f64, y: f64| {
            (!self.log_x || x > 0.0) && (!self.log_y || y > 0.0) && x.is_finite() && y.is_finite()
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if usable(x, y) {
                    xs.push(tx(x));
                    ys.push(ty(y));
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        if xs.is_empty() {
            let _ = writeln!(out, "(no plottable points)");
            return out;
        }
        let (xmin, xmax) = min_max(&xs);
        let (ymin, ymax) = min_max(&ys);
        let xspan = (xmax - xmin).max(f64::EPSILON);
        let yspan = (ymax - ymin).max(f64::EPSILON);
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !usable(x, y) {
                    continue;
                }
                let cx = (((tx(x) - xmin) / xspan) * (width - 1) as f64).round() as usize;
                let cy = (((ty(y) - ymin) / yspan) * (height - 1) as f64).round() as usize;
                grid[height - 1 - cy][cx.min(width - 1)] = glyph;
            }
        }
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push('\n');
        let _ = writeln!(
            out,
            " x: {} [{:.3}..{:.3}]{}  y: {} [{:.3}..{:.3}]{}",
            self.x_label,
            if self.log_x { xmin.exp() } else { xmin },
            if self.log_x { xmax.exp() } else { xmax },
            if self.log_x { " (log)" } else { "" },
            self.y_label,
            if self.log_y { ymin.exp() } else { ymin },
            if self.log_y { ymax.exp() } else { ymax },
            if self.log_y { " (log)" } else { "" },
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "   {} {}", GLYPHS[si % GLYPHS.len()], s.name);
        }
        out
    }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// A rectangular table with a header row, mirroring the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should match `headers.len()`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "table row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as fixed-width plain text (for terminal output).
    #[must_use]
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Series {
        Series::new("k=1", vec![(1.0, 0.2), (10.0, 0.6), (100.0, 0.9)])
    }

    #[test]
    fn series_final_and_reaching() {
        let s = sample_series();
        assert_eq!(s.final_y(), Some(0.9));
        assert_eq!(s.first_x_reaching(0.5), Some(10.0));
        assert_eq!(s.first_x_reaching(0.95), None);
        assert_eq!(Series::new("empty", vec![]).final_y(), None);
    }

    #[test]
    fn series_interpolation_clamps_and_lerps() {
        let s = sample_series();
        assert_eq!(s.interpolate(0.5), Some(0.2));
        assert_eq!(s.interpolate(1000.0), Some(0.9));
        let mid = s.interpolate(5.5).unwrap();
        assert!((mid - 0.4).abs() < 1e-12, "mid {mid}");
        assert_eq!(Series::new("empty", vec![]).interpolate(1.0), None);
    }

    #[test]
    fn figure_dat_format() {
        let mut fig = Figure::new("fig1a", "Restaurants phones")
            .with_axes("top-t sites", "coverage")
            .with_log_x();
        fig.push(sample_series());
        let dat = fig.to_dat();
        assert!(dat.contains("# fig1a: Restaurants phones"));
        assert!(dat.contains("# series: k=1"));
        assert!(dat.contains("10 0.6"));
        assert!(fig.log_x);
        assert!(!fig.log_y);
    }

    #[test]
    fn figure_series_lookup() {
        let mut fig = Figure::new("f", "t");
        fig.push(sample_series());
        assert!(fig.series_named("k=1").is_some());
        assert!(fig.series_named("k=2").is_none());
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let mut fig = Figure::new("fig", "demo").with_axes("x", "y").with_log_x();
        fig.push(sample_series());
        fig.push(Series::new("k=2", vec![(1.0, 0.1), (100.0, 0.5)]));
        let art = fig.ascii_plot(40, 10);
        assert!(art.contains('*'));
        assert!(art.contains('+'));
        assert!(art.contains("k=2"));
        assert!(art.contains("(log)"));
    }

    #[test]
    fn ascii_plot_empty_figure() {
        let fig = Figure::new("fig", "empty");
        assert!(fig.ascii_plot(40, 10).contains("no plottable points"));
    }

    #[test]
    fn ascii_plot_skips_nonpositive_on_log_axes() {
        let mut fig = Figure::new("fig", "log").with_log_x().with_log_y();
        fig.push(Series::new("s", vec![(0.0, 1.0), (1.0, 0.0), (10.0, 5.0)]));
        let art = fig.ascii_plot(30, 8);
        // Only the single positive point survives; plot still renders.
        assert!(art.contains('*'));
    }

    #[test]
    fn table_renders_markdown_and_text() {
        let mut t = Table::new("Graph metrics", &["Domain", "diameter"]);
        t.push_row(vec!["Books".into(), "8".into()]);
        t.push_row(vec!["Banks".into(), "6".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| Domain | diameter |"));
        assert!(md.contains("| Books | 8 |"));
        let txt = t.to_text();
        assert!(txt.contains("Graph metrics"));
        assert!(txt.contains("Books"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
