//! Deterministic **storage** fault injection: a seed-pure model of a disk
//! that tears writes, flips bits, fills up, and loses renames.
//!
//! [`fault`](crate::fault) models the *network* the crawler fetches
//! through; this module models the *disk* the shard store persists to.
//! The design discipline is the same: every decision is a **pure function
//! of `(seed, op index)`** — no mutable generator state — so a fault
//! schedule replays identically however the consumer is exercised, and a
//! torture harness can sweep "crash at operation k" across every write,
//! fsync and rename a store performs.
//!
//! Three pieces:
//!
//! * [`IoFaultPlan`] — the schedule. [`IoFaultPlan::none`] injects
//!   nothing; [`IoFaultPlan::crash_at`] is clean until operation `k`,
//!   faults *at* `k`, and fails everything after (a process kill, as seen
//!   by the file system); [`IoFaultPlan::flaky`] draws per-op faults at a
//!   configured rate (bit flips stay silent, everything else crashes).
//! * [`FaultSession`] — the per-run op counter and crash latch. Sessions
//!   are cheap, single-threaded (`Cell`s, not atomics: shard writes are
//!   sequential by design), and hand out numbered operations.
//! * [`FaultFile`] — a [`Read`]`+`[`Write`]`+`[`Seek`] wrapper that
//!   charges every underlying write/seek against the session, so
//!   `PageShardWriter`/`PageShardReader` run unmodified above it.
//!
//! File-system level operations that are not on the `Write` trait —
//! create, fsync, rename, directory sync — go through the session
//! directly ([`FaultSession::create`], [`FaultSession::rename`], …) so
//! the crash sweep covers them too.

use crate::rng::Seed;
use std::cell::Cell;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The kinds of operation a storage stack performs, as charged against a
/// [`FaultSession`]. Reads are deliberately *not* ops: read-side
/// corruption is modelled by the bit flips writes leave behind, and
/// keeping reads free means the op numbering of a write path does not
/// depend on whether the store was scrubbed in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `File::create` of a new file.
    Create,
    /// One `write` call reaching the file.
    Write,
    /// A seek (the shard writer seeks back to stamp its header).
    Seek,
    /// `File::sync_all` on a written file.
    Fsync,
    /// An atomic rename to a final name.
    Rename,
    /// Directory fsync after a rename.
    SyncDir,
}

/// One injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Torn write: only `keep_bytes` of the buffer reach the file, then
    /// the session crashes. Models a kill mid-`write` (or a lost tail of
    /// page cache).
    ShortWrite {
        /// Bytes of the buffer that survive.
        keep_bytes: usize,
    },
    /// The write lands in full but one byte is flipped on the way down.
    /// **Silent** — the writer keeps going and only a digest check can
    /// tell. Models bitrot / a misdirected DMA.
    BitFlip {
        /// Byte offset within the written buffer.
        offset: usize,
        /// XOR mask applied to that byte (never zero).
        mask: u8,
    },
    /// The write is dropped entirely and the session crashes. Models a
    /// kill between the syscall and any byte landing.
    LostWrite,
    /// The device is full: the op fails with `StorageFull`, nothing is
    /// written, and the session crashes.
    Enospc,
    /// `fsync` fails (and the session crashes): the file's bytes are in
    /// an unknown durability state.
    FsyncFail,
    /// The rename never happens (and the session crashes): the temp file
    /// stays at its temp name.
    RenameFail,
    /// Hard stop with nothing else injected: the op fails cleanly.
    Crash,
}

/// Map a derived seed to a uniform f64 in `[0, 1)` (top 53 bits) — same
/// construction as [`fault`](crate::fault).
#[inline]
fn unit(seed: Seed, a: u64, b: u64) -> f64 {
    let h = seed.derive_u64(a).derive_u64(b).0;
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_u64(seed: Seed, a: u64, b: u64) -> u64 {
    seed.derive_u64(a).derive_u64(b).0
}

/// A seeded, immutable storage-fault schedule.
///
/// All queries are pure functions of the plan's seed and the `(op,
/// kind)` coordinates; [`FaultSession`] supplies the monotone op
/// numbering.
#[derive(Debug, Clone)]
pub struct IoFaultPlan {
    /// Per-op probability of a fault in flaky mode (0 disables).
    rate: f64,
    /// Of flaky faults on writes, the share that are silent bit flips.
    bit_flip_share: f64,
    /// Crash-sweep mode: fault exactly at this op, fail everything after.
    crash_at: Option<u64>,
    seed: Seed,
}

impl IoFaultPlan {
    /// The fault-free plan: every op succeeds, forever.
    #[must_use]
    pub fn none() -> Self {
        IoFaultPlan {
            rate: 0.0,
            bit_flip_share: 0.0,
            crash_at: None,
            seed: Seed(0),
        }
    }

    /// Clean until operation `op`, a fault *at* `op` (kind derived from
    /// the seed, matched to what the op can fail as), every later op
    /// fails — the file-system view of `kill -9` at a chosen point.
    #[must_use]
    pub fn crash_at(op: u64, seed: Seed) -> Self {
        IoFaultPlan {
            rate: 0.0,
            bit_flip_share: 0.0,
            crash_at: Some(op),
            seed: seed.derive("iofault-crash"),
        }
    }

    /// Probabilistic mode: each op faults with probability `rate`.
    /// `bit_flip_share` of faulting *writes* are silent bit flips (the
    /// store survives and scrub must find them); every other fault
    /// crashes the session.
    #[must_use]
    pub fn flaky(rate: f64, bit_flip_share: f64, seed: Seed) -> Self {
        IoFaultPlan {
            rate: rate.clamp(0.0, 1.0),
            bit_flip_share: bit_flip_share.clamp(0.0, 1.0),
            crash_at: None,
            seed: seed.derive("iofault-flaky"),
        }
    }

    /// Whether this plan can ever inject a fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 || self.crash_at.is_some()
    }

    /// The fault injected into operation number `op` of kind `kind` (with
    /// `buf_len` bytes in flight for writes), or `None` for a clean op.
    /// Pure: the same coordinates always produce the same answer.
    #[must_use]
    pub fn fault_for(&self, op: u64, kind: OpKind, buf_len: usize) -> Option<IoFault> {
        if let Some(at) = self.crash_at {
            if op != at {
                return None; // FaultSession's crash latch handles op > at.
            }
            // A crash sweep simulates `kill -9`: the fault at the chosen
            // op must be *terminal* (silent bit flips belong to flaky
            // mode — a kill never returns success).
            return Some(match self.derive_fault(op, kind, buf_len) {
                IoFault::BitFlip { .. } => IoFault::Crash,
                terminal => terminal,
            });
        }
        if self.rate > 0.0 && unit(self.seed, op, 0) < self.rate {
            if kind == OpKind::Write && unit(self.seed, op, 1) < self.bit_flip_share {
                return Some(self.bit_flip(op, buf_len));
            }
            return Some(self.derive_fault(op, kind, buf_len));
        }
        None
    }

    /// Pick a fault shape appropriate to the op kind, from the seed.
    fn derive_fault(&self, op: u64, kind: OpKind, buf_len: usize) -> IoFault {
        match kind {
            OpKind::Fsync | OpKind::SyncDir => IoFault::FsyncFail,
            OpKind::Rename => IoFault::RenameFail,
            OpKind::Create | OpKind::Seek => IoFault::Crash,
            OpKind::Write => {
                // Rotate through the write-fault taxonomy deterministically.
                match unit_u64(self.seed, op, 2) % 4 {
                    0 => IoFault::ShortWrite {
                        keep_bytes: if buf_len == 0 {
                            0
                        } else {
                            (unit_u64(self.seed, op, 3) as usize) % buf_len
                        },
                    },
                    1 => IoFault::LostWrite,
                    2 => IoFault::Enospc,
                    _ => self.bit_flip(op, buf_len),
                }
            }
        }
    }

    fn bit_flip(&self, op: u64, buf_len: usize) -> IoFault {
        IoFault::BitFlip {
            offset: if buf_len == 0 {
                0
            } else {
                (unit_u64(self.seed, op, 4) as usize) % buf_len
            },
            mask: 1u8 << (unit_u64(self.seed, op, 5) % 8),
        }
    }
}

/// The error kind a crashed session reports for every op after the crash
/// point. Callers can distinguish "the injected kill" from real disk
/// errors by the message.
pub const CRASHED_MSG: &str = "iofault: session crashed (injected)";

fn crashed_err() -> std::io::Error {
    std::io::Error::other(CRASHED_MSG)
}

/// A run's view of an [`IoFaultPlan`]: numbers operations, applies
/// faults, and latches into a crashed state once a terminal fault fires
/// (after which every op fails, like syscalls after `kill -9` — the
/// process is gone and only the bytes already on disk remain).
///
/// Single-threaded by design — the shard writer is sequential — so plain
/// `Cell`s keep it copy-cheap and obviously race-free.
#[derive(Debug)]
pub struct FaultSession {
    plan: IoFaultPlan,
    ops: Cell<u64>,
    crashed: Cell<bool>,
}

impl FaultSession {
    /// Start a session over `plan` with the op counter at zero.
    #[must_use]
    pub fn new(plan: IoFaultPlan) -> Self {
        FaultSession {
            plan,
            ops: Cell::new(0),
            crashed: Cell::new(false),
        }
    }

    /// A session that never faults (the production path).
    #[must_use]
    pub fn clean() -> Self {
        FaultSession::new(IoFaultPlan::none())
    }

    /// Operations issued so far (fault-free dry runs use this to size a
    /// crash sweep).
    #[must_use]
    pub fn ops_issued(&self) -> u64 {
        self.ops.get()
    }

    /// Whether a terminal fault has fired.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// The plan this session runs.
    #[must_use]
    pub fn plan(&self) -> &IoFaultPlan {
        &self.plan
    }

    /// Charge one op of `kind`; returns the fault to apply, if any.
    /// Crashed sessions return [`IoFault::Crash`] without consuming a
    /// fresh op number.
    fn charge(&self, kind: OpKind, buf_len: usize) -> Option<IoFault> {
        if self.crashed.get() {
            return Some(IoFault::Crash);
        }
        let op = self.ops.get();
        self.ops.set(op + 1);
        let fault = self.plan.fault_for(op, kind, buf_len);
        if matches!(
            fault,
            Some(
                IoFault::ShortWrite { .. }
                    | IoFault::LostWrite
                    | IoFault::Enospc
                    | IoFault::FsyncFail
                    | IoFault::RenameFail
                    | IoFault::Crash
            )
        ) {
            self.crashed.set(true);
        }
        fault
    }

    /// Create the file at `path`, wrapped for fault injection.
    ///
    /// # Errors
    /// The injected fault, or the real `File::create` error.
    pub fn create<'s>(&'s self, path: &Path) -> std::io::Result<FaultFile<'s, File>> {
        match self.charge(OpKind::Create, 0) {
            None => Ok(FaultFile {
                inner: File::create(path)?,
                session: self,
            }),
            Some(_) => Err(crashed_err()),
        }
    }

    /// Open the file at `path` read-only, wrapped (reads are free ops,
    /// but a crashed session still refuses).
    ///
    /// # Errors
    /// The injected crash, or the real `File::open` error.
    pub fn open<'s>(&'s self, path: &Path) -> std::io::Result<FaultFile<'s, File>> {
        if self.crashed.get() {
            return Err(crashed_err());
        }
        Ok(FaultFile {
            inner: File::open(path)?,
            session: self,
        })
    }

    /// Atomically rename `from` to `to` (the commit point of a
    /// crash-safe write).
    ///
    /// # Errors
    /// The injected fault (nothing renamed), or the real error.
    pub fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.charge(OpKind::Rename, 0) {
            None => std::fs::rename(from, to),
            Some(_) => Err(crashed_err()),
        }
    }

    /// Fsync the directory at `dir` so a completed rename survives power
    /// loss. A no-op (but still a numbered, faultable op) on platforms
    /// where directories cannot be opened.
    ///
    /// # Errors
    /// The injected fault, or the real sync error.
    pub fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        match self.charge(OpKind::SyncDir, 0) {
            None => {
                #[cfg(unix)]
                {
                    File::open(dir)?.sync_all()
                }
                #[cfg(not(unix))]
                {
                    let _ = dir;
                    Ok(())
                }
            }
            Some(_) => Err(crashed_err()),
        }
    }
}

/// A [`Read`]`+`[`Write`]`+`[`Seek`] wrapper charging every write and
/// seek against a [`FaultSession`]. Wrap it in a `BufWriter` and hand it
/// to `PageShardWriter` — the writer cannot tell the disk is hostile.
#[derive(Debug)]
pub struct FaultFile<'s, F> {
    inner: F,
    session: &'s FaultSession,
}

impl<'s, F> FaultFile<'s, F> {
    /// Wrap an arbitrary inner stream (tests use `Cursor`).
    #[must_use]
    pub fn wrap(inner: F, session: &'s FaultSession) -> Self {
        FaultFile { inner, session }
    }

    /// The wrapped stream.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl FaultFile<'_, File> {
    /// `File::sync_all` behind the fault plan.
    ///
    /// # Errors
    /// The injected fault, or the real fsync error.
    pub fn sync_all(&self) -> std::io::Result<()> {
        match self.session.charge(OpKind::Fsync, 0) {
            None => self.inner.sync_all(),
            Some(_) => Err(crashed_err()),
        }
    }
}

impl<F: Write> Write for FaultFile<'_, F> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.session.charge(OpKind::Write, buf.len()) {
            None => self.inner.write(buf),
            Some(IoFault::BitFlip { offset, mask }) => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let mut flipped = buf.to_vec();
                let at = offset % flipped.len();
                flipped[at] ^= mask.max(1);
                // Write the corrupted copy in full; the caller sees a
                // clean `Ok(len)` — only a digest can tell.
                self.inner.write_all(&flipped)?;
                Ok(buf.len())
            }
            Some(IoFault::ShortWrite { keep_bytes }) => {
                let keep = keep_bytes.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    let _ = self.inner.flush();
                    // A torn write is visible to the caller as a short
                    // count; the *next* op fails (session is crashed).
                    Ok(keep)
                } else {
                    Err(crashed_err())
                }
            }
            Some(IoFault::Enospc) => Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "iofault: no space left on device (injected)",
            )),
            Some(IoFault::LostWrite | IoFault::Crash) => Err(crashed_err()),
            Some(IoFault::FsyncFail | IoFault::RenameFail) => Err(crashed_err()),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Flush is not a numbered op (File::flush is a no-op; the real
        // durability point is fsync), but a crashed session still fails.
        if self.session.is_crashed() {
            return Err(crashed_err());
        }
        self.inner.flush()
    }
}

impl<F: Read> Read for FaultFile<'_, F> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.session.is_crashed() {
            return Err(crashed_err());
        }
        self.inner.read(buf)
    }
}

impl<F: Seek> Seek for FaultFile<'_, F> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        match self.session.charge(OpKind::Seek, 0) {
            None => self.inner.seek(pos),
            Some(_) => Err(crashed_err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn none_plan_is_clean_forever() {
        let plan = IoFaultPlan::none();
        assert!(!plan.is_active());
        for op in 0..10_000 {
            for kind in [OpKind::Write, OpKind::Fsync, OpKind::Rename, OpKind::Seek] {
                assert_eq!(plan.fault_for(op, kind, 512), None);
            }
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_coordinates() {
        let a = IoFaultPlan::flaky(0.3, 0.4, Seed(9));
        let b = IoFaultPlan::flaky(0.3, 0.4, Seed(9));
        let sweep = |p: &IoFaultPlan| -> Vec<Option<IoFault>> {
            (0..500)
                .flat_map(|op| {
                    [OpKind::Write, OpKind::Fsync, OpKind::Rename]
                        .into_iter()
                        .map(move |k| p.fault_for(op, k, 100))
                })
                .collect()
        };
        assert_eq!(sweep(&a), sweep(&b));
        // Query order does not matter.
        let mut backward: Vec<Option<IoFault>> = Vec::new();
        for op in (0..500).rev() {
            for k in [OpKind::Rename, OpKind::Fsync, OpKind::Write] {
                backward.push(b.fault_for(op, k, 100));
            }
        }
        backward.reverse();
        assert_eq!(sweep(&a), backward);
    }

    #[test]
    fn different_seeds_differ() {
        let a = IoFaultPlan::flaky(0.5, 0.5, Seed(1));
        let b = IoFaultPlan::flaky(0.5, 0.5, Seed(2));
        let stream = |p: &IoFaultPlan| -> Vec<Option<IoFault>> {
            (0..200).map(|op| p.fault_for(op, OpKind::Write, 64)).collect()
        };
        assert_ne!(stream(&a), stream(&b));
    }

    #[test]
    fn crash_at_faults_exactly_once_then_session_latches() {
        let session = FaultSession::new(IoFaultPlan::crash_at(3, Seed(5)));
        let mut sink = FaultFile::wrap(Cursor::new(Vec::new()), &session);
        // Ops 0..3 are clean.
        for _ in 0..3 {
            sink.write_all(b"abcd").expect("clean op");
        }
        assert!(!session.is_crashed());
        // Op 3 faults (whatever shape the seed picked, write_all sees it:
        // either an Err, or a short count followed by an Err).
        let r = sink.write_all(b"abcd");
        if r.is_ok() {
            // The seed picked a silent bit flip; force more ops until the
            // plan is exhausted — bit flips do not crash, so op 3 being a
            // flip means the session stays live. Re-run with kinds that
            // cannot flip.
            assert!(!session.is_crashed());
        } else {
            assert!(session.is_crashed());
            // Everything after the crash fails without consuming ops.
            let ops = session.ops_issued();
            assert!(sink.write_all(b"x").is_err());
            assert!(sink.flush().is_err());
            assert_eq!(session.ops_issued(), ops);
        }
    }

    #[test]
    fn crash_kind_matches_op_kind() {
        let plan = IoFaultPlan::crash_at(0, Seed(8));
        assert_eq!(plan.fault_for(0, OpKind::Fsync, 0), Some(IoFault::FsyncFail));
        assert_eq!(plan.fault_for(0, OpKind::SyncDir, 0), Some(IoFault::FsyncFail));
        assert_eq!(plan.fault_for(0, OpKind::Rename, 0), Some(IoFault::RenameFail));
        assert_eq!(plan.fault_for(0, OpKind::Create, 0), Some(IoFault::Crash));
        assert!(matches!(
            plan.fault_for(0, OpKind::Write, 100),
            Some(
                IoFault::ShortWrite { .. }
                    | IoFault::LostWrite
                    | IoFault::Enospc
                    | IoFault::BitFlip { .. }
            )
        ));
        assert_eq!(plan.fault_for(1, OpKind::Write, 100), None, "only op 0 faults");
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        // Find a crash op whose derived write fault is a short write with
        // a nonzero keep, then check exactly that many bytes land.
        for s in 0..64u64 {
            let plan = IoFaultPlan::crash_at(0, Seed(s));
            if let Some(IoFault::ShortWrite { keep_bytes }) = plan.fault_for(0, OpKind::Write, 8) {
                if keep_bytes == 0 {
                    continue;
                }
                let session = FaultSession::new(plan);
                let mut sink = FaultFile::wrap(Cursor::new(Vec::new()), &session);
                let n = sink.write(b"ABCDEFGH").expect("torn write reports short count");
                assert_eq!(n, keep_bytes);
                assert!(session.is_crashed());
                let written = sink.into_inner().into_inner();
                assert_eq!(&written[..], &b"ABCDEFGH"[..keep_bytes]);
                return;
            }
        }
        panic!("no seed in 0..64 produced a nonzero short write");
    }

    #[test]
    fn bit_flip_is_silent_and_corrupts_one_byte() {
        // crash_at remaps flips to kills (a kill never returns success),
        // so flips only come from flaky plans with a full flip share.
        for s in 0..64u64 {
            let plan = IoFaultPlan::flaky(1.0, 1.0, Seed(s));
            if let Some(IoFault::BitFlip { offset, mask }) = plan.fault_for(0, OpKind::Write, 8) {
                let session = FaultSession::new(plan);
                let mut sink = FaultFile::wrap(Cursor::new(Vec::new()), &session);
                let n = sink.write(b"ABCDEFGH").expect("flip is silent");
                assert_eq!(n, 8, "caller sees a full write");
                assert!(!session.is_crashed(), "flips do not crash");
                let written = sink.into_inner().into_inner();
                let mut expect = b"ABCDEFGH".to_vec();
                expect[offset % 8] ^= mask.max(1);
                assert_eq!(written, expect);
                return;
            }
        }
        panic!("no seed in 0..64 produced a bit flip");
    }

    #[test]
    fn enospc_surfaces_as_storage_full() {
        for s in 0..64u64 {
            let plan = IoFaultPlan::crash_at(0, Seed(s));
            if plan.fault_for(0, OpKind::Write, 8) == Some(IoFault::Enospc) {
                let session = FaultSession::new(plan);
                let mut sink = FaultFile::wrap(Cursor::new(Vec::new()), &session);
                let err = sink.write(b"ABCDEFGH").expect_err("device is full");
                assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
                assert!(sink.into_inner().into_inner().is_empty(), "nothing written");
                return;
            }
        }
        panic!("no seed in 0..64 produced ENOSPC");
    }

    #[test]
    fn flaky_rate_is_calibrated() {
        let plan = IoFaultPlan::flaky(0.25, 0.0, Seed(12));
        let n = 20_000u64;
        let faults = (0..n)
            .filter(|&op| plan.fault_for(op, OpKind::Write, 256).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "flaky rate {rate}");
    }

    #[test]
    fn session_numbers_ops_monotonically() {
        let session = FaultSession::clean();
        let mut f = FaultFile::wrap(Cursor::new(Vec::new()), &session);
        f.write_all(b"a").unwrap();
        f.write_all(b"b").unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        assert_eq!(session.ops_issued(), 3);
        assert!(!session.is_crashed());
    }
}
