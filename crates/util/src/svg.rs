//! SVG rendering of figures: self-contained line charts with axes, ticks
//! and a legend, so every artifact can be viewed in a browser without
//! gnuplot.

use crate::report::Figure;
use std::fmt::Write as _;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// A categorical palette (okabe-ito-ish, readable on white).
const COLORS: [&str; 10] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00", "#000000", "#999999",
    "#7B3294", "#A6611A",
];

/// Render a figure as a standalone SVG document.
///
/// Log axes are honoured; points that cannot render on a log axis
/// (non-positive coordinates) are skipped. Returns a minimal document for
/// figures with no plottable points.
#[must_use]
pub fn figure_to_svg(fig: &Figure) -> String {
    let tx = |x: f64| if fig.log_x { x.log10() } else { x };
    let ty = |y: f64| if fig.log_y { y.log10() } else { y };
    let usable =
        |x: f64, y: f64| (!fig.log_x || x > 0.0) && (!fig.log_y || y > 0.0) && x.is_finite() && y.is_finite();

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in &fig.series {
        for &(x, y) in &s.points {
            if usable(x, y) {
                xs.push(tx(x));
                ys.push(ty(y));
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"##
    );
    let _ = writeln!(
        out,
        r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"##
    );
    let _ = writeln!(
        out,
        r##"<text x="{:.1}" y="22" font-size="15" font-weight="bold">{}</text>"##,
        MARGIN_L,
        escape(&fig.title)
    );
    if xs.is_empty() {
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="12">(no plottable points)</text>"##,
            MARGIN_L,
            HEIGHT / 2.0
        );
        out.push_str("</svg>\n");
        return out;
    }
    let (xmin, xmax) = bounds(&xs);
    let (ymin, ymax) = bounds(&ys);
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = move |v: f64| MARGIN_L + (v - xmin) / (xmax - xmin).max(f64::EPSILON) * plot_w;
    let sy = move |v: f64| HEIGHT - MARGIN_B - (v - ymin) / (ymax - ymin).max(f64::EPSILON) * plot_h;

    // Frame.
    let _ = writeln!(
        out,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#444"/>"##
    );
    // Axis ticks: 5 per axis, labelled in data space.
    for i in 0..=4 {
        let fx = xmin + (xmax - xmin) * f64::from(i) / 4.0;
        let label = if fig.log_x { 10f64.powf(fx) } else { fx };
        let px = sx(fx);
        let _ = writeln!(
            out,
            r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#444"/>"##,
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 5.0
        );
        let _ = writeln!(
            out,
            r##"<text x="{px:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"##,
            HEIGHT - MARGIN_B + 17.0,
            format_tick(label)
        );
        let fy = ymin + (ymax - ymin) * f64::from(i) / 4.0;
        let label = if fig.log_y { 10f64.powf(fy) } else { fy };
        let py = sy(fy);
        let _ = writeln!(
            out,
            r##"<line x1="{:.1}" y1="{py:.1}" x2="{MARGIN_L}" y2="{py:.1}" stroke="#444"/>"##,
            MARGIN_L - 5.0
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"##,
            MARGIN_L - 8.0,
            py + 3.5,
            format_tick(label)
        );
    }
    // Axis labels.
    let _ = writeln!(
        out,
        r##"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}{}</text>"##,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 10.0,
        escape(&fig.x_label),
        if fig.log_x { " (log)" } else { "" }
    );
    let _ = writeln!(
        out,
        r##"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}{}</text>"##,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&fig.y_label),
        if fig.log_y { " (log)" } else { "" }
    );
    // Series polylines + legend.
    for (si, s) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let points: Vec<String> = s
            .points
            .iter()
            .filter(|&&(x, y)| usable(x, y))
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(tx(x)), sy(ty(y))))
            .collect();
        if !points.is_empty() {
            let _ = writeln!(
                out,
                r##"<polyline fill="none" stroke="{color}" stroke-width="1.6" points="{}"/>"##,
                points.join(" ")
            );
        }
        let ly = MARGIN_T + 14.0 + si as f64 * 16.0;
        let lx = WIDTH - MARGIN_R + 12.0;
        let _ = writeln!(
            out,
            r##"<line x1="{lx:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="2"/>"##,
            ly - 3.5,
            lx + 18.0,
            ly - 3.5
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{ly:.1}" font-size="11">{}</text>"##,
            lx + 24.0,
            escape(&s.name)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn bounds(vs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in vs {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if (hi - lo).abs() < f64::EPSILON {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.01..10_000.0).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Figure, Series};

    fn fig() -> Figure {
        let mut f = Figure::new("fig1a", "Restaurants & phones")
            .with_axes("top-t sites", "coverage")
            .with_log_x();
        f.push(Series::new("k=1", vec![(1.0, 0.3), (10.0, 0.8), (100.0, 0.95)]));
        f.push(Series::new("k=2", vec![(1.0, 0.0), (100.0, 0.6)]));
        f
    }

    #[test]
    fn svg_is_wellformed_and_complete() {
        let svg = figure_to_svg(&fig());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("k=1"));
        assert!(svg.contains("Restaurants &amp; phones"), "title escaped");
        assert!(svg.contains("(log)"));
        // Balanced text tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let mut f = Figure::new("f", "t").with_log_x();
        f.push(Series::new("s", vec![(0.0, 1.0), (10.0, 2.0), (100.0, 3.0)]));
        let svg = figure_to_svg(&f);
        // Only the 2 positive-x points survive in the polyline.
        let poly_line = svg.lines().find(|l| l.contains("<polyline")).unwrap();
        assert_eq!(poly_line.matches(',').count(), 2);
    }

    #[test]
    fn empty_figure_renders_placeholder() {
        let f = Figure::new("f", "t");
        let svg = figure_to_svg(&f);
        assert!(svg.contains("no plottable points"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut f = Figure::new("f", "t");
        f.push(Series::new("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let svg = figure_to_svg(&f);
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(0.5), "0.50");
        assert_eq!(format_tick(42.0), "42");
        assert_eq!(format_tick(1_000_000.0), "1e6");
        assert_eq!(format_tick(0.0001), "1e-4");
    }
}
