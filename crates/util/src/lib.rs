//! # webstruct-util
//!
//! Shared foundations for the `webstruct` workspace — the reproduction of
//! *An Analysis of Structured Data on the Web* (Dalvi, Machanavajjhala,
//! Pang; VLDB 2012):
//!
//! * [`rng`] — deterministic SplitMix64 / xoshiro256** generators and the
//!   experiment [`rng::Seed`] type;
//! * [`bytescan`] — word-at-a-time (SWAR / SSE2) byte-scanning kernels:
//!   `memchr` family, ASCII case-insensitive substring search, byte-class
//!   skip tables — the primitives under every extraction scanner;
//! * [`hash`] — Fx hashing and fast map/set aliases for the integer-keyed
//!   hot paths;
//! * [`csv`] — CSV rendering of report artifacts;
//! * [`ids`] — newtyped dense u32 identifiers;
//! * [`powerlaw`] — log-binned histograms and the Hill tail estimator;
//! * [`sample`] — Zipf weights, alias-table sampling, bounded Pareto;
//! * [`stats`] — means, quantiles, z-normalisation, the paper's log₂
//!   review-count binning, log-spaced sweep ticks;
//! * [`report`] — `Figure`/`Series`/`Table` report artifacts with `.dat`,
//!   Markdown and ASCII renderings;
//! * [`svg`] — standalone SVG line charts for every figure;
//! * [`par`] — deterministic std-only parallel map (`std::thread::scope`
//!   chunking with a `WEBSTRUCT_THREADS` override);
//! * [`fault`] — seeded fault injection: per-site failure plans, a
//!   simulated clock, retry/backoff policies and circuit breakers;
//! * [`iofault`] — seeded *storage* fault injection: deterministic
//!   torn-write/bit-flip/ENOSPC/fsync/rename fault plans behind a
//!   `Read`/`Write`/`Seek` file wrapper, for crash-safety torture tests;
//! * [`obs`] — structured observability: hierarchical spans, deterministic
//!   counter/gauge/histogram registries and per-run trace reports;
//! * [`sha`] — std-only SHA-256 for golden artifact manifests.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bytescan;
pub mod csv;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod iofault;
pub mod obs;
pub mod par;
pub mod powerlaw;
pub mod report;
pub mod rng;
pub mod sample;
pub mod sha;
pub mod stats;
pub mod svg;

pub use fault::{
    BreakerConfig, CircuitBreaker, Fault, FaultConfig, FaultPlan, RetryPolicy, SimClock,
};
pub use hash::{FxHashMap, FxHashSet};
pub use iofault::{FaultFile, FaultSession, IoFault, IoFaultPlan, OpKind};
pub use ids::{EntityId, PageId, RegionId, SiteId, UserId};
pub use obs::{LocalHistogram, Metrics, MetricsSnapshot, Obs, Trace, TraceMode};
pub use report::{Figure, Series, Table};
pub use rng::{Seed, Xoshiro256};
