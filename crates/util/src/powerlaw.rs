//! Heavy-tail diagnostics: log-binned histograms and the Hill estimator.
//!
//! The generative model's claims ("site sizes are heavy-tailed", "demand
//! is Zipfian with exponent α") should be *checkable* on generated data;
//! these tools do that, and back the corpus-statistics reports.

/// A log₂-binned histogram of positive values.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Bin lower bounds: `2^i`.
    pub bounds: Vec<f64>,
    /// Counts per bin.
    pub counts: Vec<u64>,
    /// Values `<= 0` that were skipped.
    pub skipped: u64,
}

impl LogHistogram {
    /// Bin positive values by `floor(log2(v))`.
    #[must_use]
    pub fn build(values: &[f64]) -> Self {
        let mut bins: Vec<u64> = Vec::new();
        let mut skipped = 0u64;
        for &v in values {
            if v <= 0.0 || !v.is_finite() {
                skipped += 1;
                continue;
            }
            let bin = v.log2().floor().max(0.0) as usize;
            if bins.len() <= bin {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        LogHistogram {
            bounds: (0..bins.len()).map(|i| (1u64 << i) as f64).collect(),
            counts: bins,
            skipped,
        }
    }

    /// Total counted values.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Points `(bin_lower_bound, density)` for log-log plotting, where
    /// density is count divided by bin width.
    #[must_use]
    pub fn density_points(&self) -> Vec<(f64, f64)> {
        self.bounds
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&lo, &c)| (lo, c as f64 / lo))
            .collect()
    }
}

/// Hill estimator of the tail exponent of a power law, using the top-`k`
/// order statistics: `alpha_hat = k / sum(ln(x_i / x_k))` over the k
/// largest values. Returns `None` when fewer than `k + 1` positive values
/// exist or the estimate degenerates.
///
/// For a pure Pareto with survival exponent α the estimator is consistent;
/// for rank-Zipf data with rank exponent `s` the *size* distribution has
/// survival exponent `1/s`, so expect `alpha_hat ≈ 1/s`.
#[must_use]
pub fn hill_estimator(values: &[f64], k: usize) -> Option<f64> {
    if k == 0 {
        return None;
    }
    let mut positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.len() <= k {
        return None;
    }
    positive.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let x_k = positive[k];
    if x_k <= 0.0 {
        return None;
    }
    let sum: f64 = positive[..k].iter().map(|&x| (x / x_k).ln()).sum();
    if sum <= 0.0 {
        return None;
    }
    Some(k as f64 / sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Seed, Xoshiro256};
    use crate::sample::bounded_pareto;

    #[test]
    fn histogram_bins_powers_of_two() {
        let h = LogHistogram::build(&[1.0, 1.5, 2.0, 3.9, 4.0, 100.0, 0.0, -5.0]);
        assert_eq!(h.skipped, 2);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts[0], 2); // [1,2)
        assert_eq!(h.counts[1], 2); // [2,4)
        assert_eq!(h.counts[2], 1); // [4,8)
        assert_eq!(h.counts[6], 1); // [64,128)
        assert_eq!(h.bounds[2], 4.0);
    }

    #[test]
    fn density_points_skip_empty_bins() {
        let h = LogHistogram::build(&[1.0, 64.0]);
        let pts = h.density_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (1.0, 1.0));
        assert_eq!(pts[1], (64.0, 1.0 / 64.0));
    }

    #[test]
    fn hill_recovers_pareto_exponent() {
        let mut rng = Xoshiro256::from_seed(Seed(7));
        for alpha in [1.0, 2.0] {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| bounded_pareto(&mut rng, alpha, 1.0, 1e9))
                .collect();
            let est = hill_estimator(&xs, 2_000).expect("estimable");
            assert!(
                (est - alpha).abs() < 0.15 * alpha,
                "alpha {alpha}, estimate {est}"
            );
        }
    }

    #[test]
    fn hill_degenerate_inputs() {
        assert_eq!(hill_estimator(&[], 10), None);
        assert_eq!(hill_estimator(&[1.0, 2.0], 0), None);
        assert_eq!(hill_estimator(&[1.0, 2.0, 3.0], 5), None);
        // Constant values: sum of logs is 0.
        assert_eq!(hill_estimator(&[5.0; 100], 10), None);
    }
}
