//! Minimal CSV rendering for report artifacts.
//!
//! Only what the workspace needs: RFC-4180-style quoting, header rows,
//! and converters from [`crate::report`] types. No parsing — artifacts
//! are write-only.

use crate::report::{Figure, Table};
use std::fmt::Write as _;

/// Quote a CSV field when needed (commas, quotes, newlines).
#[must_use]
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render rows of string fields as CSV.
#[must_use]
pub fn to_csv<R, F>(rows: R) -> String
where
    R: IntoIterator<Item = F>,
    F: IntoIterator<Item = String>,
{
    let mut out = String::new();
    for row in rows {
        let fields: Vec<String> = row.into_iter().map(|f| escape_field(&f)).collect();
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// A figure as long-format CSV: `series,x,y`.
#[must_use]
pub fn figure_to_csv(fig: &Figure) -> String {
    let header = std::iter::once(vec![
        "series".to_string(),
        fig.x_label.clone(),
        fig.y_label.clone(),
    ]);
    let data = fig.series.iter().flat_map(|s| {
        s.points
            .iter()
            .map(move |&(x, y)| vec![s.name.clone(), x.to_string(), y.to_string()])
    });
    to_csv(header.chain(data))
}

/// A table as CSV with its header row.
#[must_use]
pub fn table_to_csv(table: &Table) -> String {
    let header = std::iter::once(table.headers.clone());
    to_csv(header.chain(table.rows.iter().cloned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn figure_long_format() {
        let mut fig = Figure::new("f", "t").with_axes("sites", "coverage");
        fig.push(Series::new("k=1", vec![(1.0, 0.5), (10.0, 0.9)]));
        fig.push(Series::new("k=2", vec![(1.0, 0.1)]));
        let csv = figure_to_csv(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,sites,coverage");
        assert_eq!(lines[1], "k=1,1,0.5");
        assert_eq!(lines[3], "k=2,1,0.1");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn table_roundtrip_shape() {
        let mut t = Table::new("x", &["Domain", "diameter"]);
        t.push_row(vec!["Hotels & Lodging, Inc".into(), "6".into()]);
        let csv = table_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "Domain,diameter");
        assert_eq!(lines[1], "\"Hotels & Lodging, Inc\",6");
    }

    #[test]
    fn empty_inputs() {
        let fig = Figure::new("f", "t");
        assert_eq!(figure_to_csv(&fig).lines().count(), 1); // header only
        let t = Table::new("x", &["a"]);
        assert_eq!(table_to_csv(&t).lines().count(), 1);
    }
}
