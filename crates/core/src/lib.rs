//! # webstruct-core
//!
//! The experiment registry reproducing *An Analysis of Structured Data on
//! the Web* (Dalvi, Machanavajjhala, Pang; VLDB 2012): every table and
//! figure of the paper, regenerated end-to-end on the synthetic web.
//!
//! * [`study`] — scales, seeds and the oracle/extracted source switch;
//! * [`cache`] — memoised generation of domain webs and traffic studies;
//! * [`epoch`] — incremental recomputation: content-addressed extraction
//!   caching, seed-pure corpus mutation, dirty-slice re-runs;
//! * [`experiments`] — one function per paper artifact (Figures 1–9,
//!   Tables 1–2);
//! * [`bootstrap`] — the §5.2 set-expansion crawler and its d/2 bound;
//! * [`runner`] — run everything, write `.dat`/Markdown artifacts.
//!
//! ## Quickstart
//!
//! ```
//! use webstruct_core::study::StudyConfig;
//! use webstruct_core::runner::run_all;
//!
//! let output = run_all(&StudyConfig::quick());
//! let fig = output.figure("fig1a").expect("restaurant phone coverage");
//! let k1 = fig.series_named("k=1").expect("k=1 curve");
//! assert!(k1.final_y().unwrap() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bootstrap;
pub mod cache;
pub mod epoch;
pub mod experiments;
pub mod milestones;
pub mod runner;
pub mod study;

pub use bootstrap::{bootstrap_expansion, BootstrapResult};
pub use cache::{publish_cache_hit_rate, Study};
pub use epoch::{identifying_attribute, Epoch, EpochError, EpochReport};
pub use milestones::{compute_milestones, milestones_table, Milestone};
pub use runner::{run_all, run_extensions, write_outputs, FamilyTiming, RunOutput};
pub use study::{DataSource, DomainStudy, StudyConfig};
