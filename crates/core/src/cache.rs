//! Lazy, shared generation of domain webs and traffic studies so that
//! experiments reusing the same domain (Figures 1, 2, 4, 5, 9, Table 2 all
//! touch Restaurants) generate it exactly once.
//!
//! The cache is thread-safe: experiment families running on different
//! threads can request domains concurrently. Each key holds its own
//! [`OnceLock`], so two threads asking for the *same* domain block on one
//! generation while threads asking for *different* domains generate in
//! parallel. Generation is seeded per key, so which thread wins the race
//! never changes the bytes produced.

use crate::study::{DomainStudy, StudyConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use webstruct_corpus::domain::Domain;
use webstruct_demand::{StudySite, TrafficConfig, TrafficStudy};

/// A study session: configuration plus memoised generated artifacts.
pub struct Study {
    /// The configuration all experiments share.
    pub config: StudyConfig,
    domains: Mutex<HashMap<Domain, Arc<OnceLock<Arc<DomainStudy>>>>>,
    traffic: Mutex<HashMap<StudySite, Arc<OnceLock<Arc<TrafficStudy>>>>>,
}

impl Study {
    /// Start a session.
    #[must_use]
    pub fn new(config: StudyConfig) -> Self {
        Study {
            config,
            domains: Mutex::new(HashMap::new()),
            traffic: Mutex::new(HashMap::new()),
        }
    }

    /// The generated catalog+web for a domain (generated on first use).
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    pub fn domain(&self, domain: Domain) -> Arc<DomainStudy> {
        // Requests and builds are both pure functions of the experiment
        // set, so the counters stay snapshot-deterministic; *which* caller
        // builds the cell races, so cache "hits" are deliberately derived
        // (requests − builds) rather than counted.
        webstruct_util::obs::metrics().add("cache.domain_requests", 1);
        let cell = {
            let mut map = self.domains.lock().expect("domain cache poisoned");
            Arc::clone(map.entry(domain).or_default())
        };
        // Generate outside the map lock: distinct domains proceed
        // concurrently, same-domain callers block on this cell only.
        Arc::clone(cell.get_or_init(|| {
            webstruct_util::obs::metrics().add("cache.domain_builds", 1);
            let _span = webstruct_util::span!("generate_domain", domain);
            Arc::new(DomainStudy::generate(domain, &self.config))
        }))
    }

    /// The simulated traffic study for a site (generated on first use).
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    pub fn traffic(&self, site: StudySite) -> Arc<TrafficStudy> {
        webstruct_util::obs::metrics().add("cache.traffic_requests", 1);
        let cell = {
            let mut map = self.traffic.lock().expect("traffic cache poisoned");
            Arc::clone(map.entry(site).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            webstruct_util::obs::metrics().add("cache.traffic_builds", 1);
            let _span = webstruct_util::span!("simulate_traffic", site);
            let cfg = TrafficConfig::preset(site).scaled(self.config.scale);
            Arc::new(TrafficStudy::simulate(&cfg, self.config.seed))
        }))
    }

    /// Record that `n` cached artifacts were invalidated (rejected and
    /// recomputed rather than reused). The epoch engine calls this when a
    /// content-addressed extraction entry fails its digest or key checks;
    /// anything else that discards memoised state should too, so
    /// `RUN_REPORT.json` shows *why* a warm run was not fully warm.
    pub fn note_invalidations(n: usize) {
        webstruct_util::obs::metrics().add("cache.invalidations", n as u64);
    }

    /// Number of domain webs generated so far.
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    #[must_use]
    pub fn domains_generated(&self) -> usize {
        self.domains
            .lock()
            .expect("domain cache poisoned")
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }
}

/// Derive the cache hit-rate gauge from the `cache.*` counters and make
/// sure the `cache.invalidations` counter exists in every report, even
/// when it stayed at zero.
///
/// Requests and builds are snapshot-deterministic (pure functions of the
/// work done); *hit rate* is derived from them rather than counted, so no
/// race over which caller builds a cell can skew it. The gauge is
/// published in basis points (`10_000` = every request was a hit) under
/// `cache.hit_rate_bp` — gauges land in `RUN_REPORT.json`'s
/// non-deterministic section, which is where a rate belongs: it depends
/// on which commands ran, not on the corpus.
pub fn publish_cache_hit_rate() {
    let m = webstruct_util::obs::metrics();
    m.add("cache.invalidations", 0);
    let requests = m.counter("cache.domain_requests").get()
        + m.counter("cache.traffic_requests").get()
        + m.counter("cache.ext_requests").get();
    let builds = m.counter("cache.domain_builds").get()
        + m.counter("cache.traffic_builds").get()
        + m.counter("cache.ext_misses").get();
    #[allow(clippy::cast_precision_loss)]
    m.set_gauge("cache.hit_rate_bp", hit_rate_bp(requests, builds) as f64);
}

/// Hit rate in basis points given total requests and cache builds/misses.
/// A build satisfies the request that triggered it, so it is not a hit;
/// zero requests is reported as a zero rate rather than a division error.
fn hit_rate_bp(requests: u64, builds: u64) -> u64 {
    let hits = requests.saturating_sub(builds);
    if requests == 0 {
        0
    } else {
        hits * 10_000 / requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_arithmetic() {
        assert_eq!(hit_rate_bp(0, 0), 0);
        assert_eq!(hit_rate_bp(1, 1), 0); // cold: the only request built
        assert_eq!(hit_rate_bp(3, 1), 6666); // 2 hits of 3 requests
        assert_eq!(hit_rate_bp(100, 0), 10_000); // fully warm
        assert_eq!(hit_rate_bp(1, 5), 0); // over-built never underflows
    }

    #[test]
    fn publish_registers_gauge_and_invalidations() {
        // Other tests share the global metrics registry, so assert
        // presence and range, not exact values.
        publish_cache_hit_rate();
        let m = webstruct_util::obs::metrics();
        let snap = m.snapshot();
        assert!(snap.counters.contains_key("cache.invalidations"));
        let bp = m.gauge("cache.hit_rate_bp").get();
        assert!((0.0..=10_000.0).contains(&bp), "bp out of range: {bp}");
    }

    #[test]
    fn domain_is_generated_once() {
        let study = Study::new(StudyConfig::quick());
        let a = study.domain(Domain::Banks);
        let b = study.domain(Domain::Banks);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(study.domains_generated(), 1);
        let _ = study.domain(Domain::Schools);
        assert_eq!(study.domains_generated(), 2);
    }

    #[test]
    fn traffic_is_memoised() {
        let study = Study::new(StudyConfig::quick());
        let a = study.traffic(StudySite::Yelp);
        let b = study.traffic(StudySite::Yelp);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.demand_search.is_empty());
    }

    #[test]
    fn concurrent_requests_share_one_generation() {
        let study = Study::new(StudyConfig::quick());
        let handles: Vec<Arc<DomainStudy>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| study.domain(Domain::Libraries)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(study.domains_generated(), 1);
        for pair in handles.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
