//! Lazy, shared generation of domain webs and traffic studies so that
//! experiments reusing the same domain (Figures 1, 2, 4, 5, 9, Table 2 all
//! touch Restaurants) generate it exactly once.
//!
//! The cache is thread-safe: experiment families running on different
//! threads can request domains concurrently. Each key holds its own
//! [`OnceLock`], so two threads asking for the *same* domain block on one
//! generation while threads asking for *different* domains generate in
//! parallel. Generation is seeded per key, so which thread wins the race
//! never changes the bytes produced.

use crate::study::{DomainStudy, StudyConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use webstruct_corpus::domain::Domain;
use webstruct_demand::{StudySite, TrafficConfig, TrafficStudy};

/// A study session: configuration plus memoised generated artifacts.
pub struct Study {
    /// The configuration all experiments share.
    pub config: StudyConfig,
    domains: Mutex<HashMap<Domain, Arc<OnceLock<Arc<DomainStudy>>>>>,
    traffic: Mutex<HashMap<StudySite, Arc<OnceLock<Arc<TrafficStudy>>>>>,
}

impl Study {
    /// Start a session.
    #[must_use]
    pub fn new(config: StudyConfig) -> Self {
        Study {
            config,
            domains: Mutex::new(HashMap::new()),
            traffic: Mutex::new(HashMap::new()),
        }
    }

    /// The generated catalog+web for a domain (generated on first use).
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    pub fn domain(&self, domain: Domain) -> Arc<DomainStudy> {
        // Requests and builds are both pure functions of the experiment
        // set, so the counters stay snapshot-deterministic; *which* caller
        // builds the cell races, so cache "hits" are deliberately derived
        // (requests − builds) rather than counted.
        webstruct_util::obs::metrics().add("cache.domain_requests", 1);
        let cell = {
            let mut map = self.domains.lock().expect("domain cache poisoned");
            Arc::clone(map.entry(domain).or_default())
        };
        // Generate outside the map lock: distinct domains proceed
        // concurrently, same-domain callers block on this cell only.
        Arc::clone(cell.get_or_init(|| {
            webstruct_util::obs::metrics().add("cache.domain_builds", 1);
            let _span = webstruct_util::span!("generate_domain", domain);
            Arc::new(DomainStudy::generate(domain, &self.config))
        }))
    }

    /// The simulated traffic study for a site (generated on first use).
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    pub fn traffic(&self, site: StudySite) -> Arc<TrafficStudy> {
        webstruct_util::obs::metrics().add("cache.traffic_requests", 1);
        let cell = {
            let mut map = self.traffic.lock().expect("traffic cache poisoned");
            Arc::clone(map.entry(site).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            webstruct_util::obs::metrics().add("cache.traffic_builds", 1);
            let _span = webstruct_util::span!("simulate_traffic", site);
            let cfg = TrafficConfig::preset(site).scaled(self.config.scale);
            Arc::new(TrafficStudy::simulate(&cfg, self.config.seed))
        }))
    }

    /// Number of domain webs generated so far.
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking generator.
    #[must_use]
    pub fn domains_generated(&self) -> usize {
        self.domains
            .lock()
            .expect("domain cache poisoned")
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_is_generated_once() {
        let study = Study::new(StudyConfig::quick());
        let a = study.domain(Domain::Banks);
        let b = study.domain(Domain::Banks);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(study.domains_generated(), 1);
        let _ = study.domain(Domain::Schools);
        assert_eq!(study.domains_generated(), 2);
    }

    #[test]
    fn traffic_is_memoised() {
        let study = Study::new(StudyConfig::quick());
        let a = study.traffic(StudySite::Yelp);
        let b = study.traffic(StudySite::Yelp);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.demand_search.is_empty());
    }

    #[test]
    fn concurrent_requests_share_one_generation() {
        let study = Study::new(StudyConfig::quick());
        let handles: Vec<Arc<DomainStudy>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| study.domain(Domain::Libraries)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(study.domains_generated(), 1);
        for pair in handles.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
