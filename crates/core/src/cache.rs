//! Lazy, shared generation of domain webs and traffic studies so that
//! experiments reusing the same domain (Figures 1, 2, 4, 5, 9, Table 2 all
//! touch Restaurants) generate it exactly once.

use crate::study::{DomainStudy, StudyConfig};
use std::collections::HashMap;
use std::rc::Rc;
use webstruct_corpus::domain::Domain;
use webstruct_demand::{StudySite, TrafficConfig, TrafficStudy};

/// A study session: configuration plus memoised generated artifacts.
pub struct Study {
    /// The configuration all experiments share.
    pub config: StudyConfig,
    domains: HashMap<Domain, Rc<DomainStudy>>,
    traffic: HashMap<StudySite, Rc<TrafficStudy>>,
}

impl Study {
    /// Start a session.
    #[must_use]
    pub fn new(config: StudyConfig) -> Self {
        Study {
            config,
            domains: HashMap::new(),
            traffic: HashMap::new(),
        }
    }

    /// The generated catalog+web for a domain (generated on first use).
    pub fn domain(&mut self, domain: Domain) -> Rc<DomainStudy> {
        if let Some(d) = self.domains.get(&domain) {
            return Rc::clone(d);
        }
        let built = Rc::new(DomainStudy::generate(domain, &self.config));
        self.domains.insert(domain, Rc::clone(&built));
        built
    }

    /// The simulated traffic study for a site (generated on first use).
    pub fn traffic(&mut self, site: StudySite) -> Rc<TrafficStudy> {
        if let Some(t) = self.traffic.get(&site) {
            return Rc::clone(t);
        }
        let cfg = TrafficConfig::preset(site).scaled(self.config.scale);
        let built = Rc::new(TrafficStudy::simulate(&cfg, self.config.seed));
        self.traffic.insert(site, Rc::clone(&built));
        built
    }

    /// Number of domain webs generated so far.
    #[must_use]
    pub fn domains_generated(&self) -> usize {
        self.domains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_is_generated_once() {
        let mut study = Study::new(StudyConfig::quick());
        let a = study.domain(Domain::Banks);
        let b = study.domain(Domain::Banks);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(study.domains_generated(), 1);
        let _ = study.domain(Domain::Schools);
        assert_eq!(study.domains_generated(), 2);
    }

    #[test]
    fn traffic_is_memoised() {
        let mut study = Study::new(StudyConfig::quick());
        let a = study.traffic(StudySite::Yelp);
        let b = study.traffic(StudySite::Yelp);
        assert!(Rc::ptr_eq(&a, &b));
        assert!(!a.demand_search.is_empty());
    }
}
