//! The set-expansion ("bootstrapping") crawler of §5.2.
//!
//! > "Suppose we start with a small set of seed entities. At each
//! > iteration, we discover all the sites that contain entities overlapping
//! > with the current set of entities, and then extract all the entities
//! > from these sites, and add them to the current set. Given such a
//! > 'perfect' set expansion algorithm, starting from any seed set, the
//! > number of iterations it takes to extract all the entities is bounded
//! > by d/2."
//!
//! This module implements that perfect expander on the entity–site graph
//! and reports the iteration count, letting tests verify the paper's d/2
//! bound and examples demonstrate discovery from tiny seed sets.

use webstruct_graph::BipartiteGraph;
use webstruct_util::ids::{EntityId, SiteId};

/// Result of running set expansion to fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootstrapResult {
    /// Iterations until no new entity was discovered (0 when the seeds
    /// already cover everything reachable).
    pub iterations: usize,
    /// Total entities known at fixpoint (including seeds).
    pub entities_found: usize,
    /// Total sites discovered at fixpoint.
    pub sites_found: usize,
    /// Entities discovered after each iteration (cumulative).
    pub entities_per_iteration: Vec<usize>,
}

impl BootstrapResult {
    /// Fraction of all *present* entities of the graph that were reached.
    #[must_use]
    pub fn recall(&self, graph: &BipartiteGraph) -> f64 {
        let present = graph.entities_present();
        if present == 0 {
            return 0.0;
        }
        self.entities_found as f64 / present as f64
    }
}

/// Run the perfect set expander from `seeds` until fixpoint.
///
/// Seeds without any site (absent entities) contribute nothing. Complexity
/// is O(edges) total: each site and entity is expanded at most once.
#[must_use]
pub fn bootstrap_expansion(graph: &BipartiteGraph, seeds: &[EntityId]) -> BootstrapResult {
    let mut entity_known = vec![false; graph.n_entities()];
    let mut site_known = vec![false; graph.n_sites()];
    let mut frontier: Vec<u32> = Vec::new();
    let mut entities_found = 0usize;
    for &e in seeds {
        if e.index() < graph.n_entities() && !entity_known[e.index()] {
            entity_known[e.index()] = true;
            // Only seeds that exist on the web count as discovered content.
            if !graph.sites_of(e).is_empty() {
                entities_found += 1;
            }
            frontier.push(e.raw());
        }
    }
    let mut sites_found = 0usize;
    let mut iterations = 0usize;
    let mut entities_per_iteration = Vec::new();
    loop {
        // Phase 1: all sites covering any known frontier entity.
        let mut new_sites: Vec<u32> = Vec::new();
        for &e in &frontier {
            for &s in graph.sites_of(EntityId::new(e)) {
                if !site_known[s as usize] {
                    site_known[s as usize] = true;
                    new_sites.push(s);
                }
            }
        }
        if new_sites.is_empty() {
            break;
        }
        sites_found += new_sites.len();
        // Phase 2: all entities on those sites.
        let mut new_entities: Vec<u32> = Vec::new();
        for &s in &new_sites {
            for &e in graph.entities_of(SiteId::new(s)) {
                if !entity_known[e as usize] {
                    entity_known[e as usize] = true;
                    entities_found += 1;
                    new_entities.push(e);
                }
            }
        }
        iterations += 1;
        entities_per_iteration.push(entities_found);
        if new_entities.is_empty() {
            break;
        }
        frontier = new_entities;
    }
    BootstrapResult {
        iterations,
        entities_found,
        sites_found,
        entities_per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_graph::ifub_diameter;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn single_hub_converges_in_one_iteration() {
        let all: Vec<EntityId> = (0..10).map(e).collect();
        let g = BipartiteGraph::from_occurrences(10, &[all]).unwrap();
        let r = bootstrap_expansion(&g, &[e(3)]);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.entities_found, 10);
        assert_eq!(r.sites_found, 1);
        assert_eq!(r.recall(&g), 1.0);
    }

    #[test]
    fn chain_takes_distance_over_two_iterations() {
        // e0-s0-e1-s1-e2-s2-e3: from e0, reaching e3 takes 3 iterations.
        let sites = vec![vec![e(0), e(1)], vec![e(1), e(2)], vec![e(2), e(3)]];
        let g = BipartiteGraph::from_occurrences(4, &sites).unwrap();
        let r = bootstrap_expansion(&g, &[e(0)]);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.entities_found, 4);
        assert_eq!(r.entities_per_iteration, vec![2, 3, 4]);
    }

    #[test]
    fn expansion_stays_in_seed_component() {
        let sites = vec![vec![e(0), e(1)], vec![e(2), e(3)]];
        let g = BipartiteGraph::from_occurrences(4, &sites).unwrap();
        let r = bootstrap_expansion(&g, &[e(0)]);
        assert_eq!(r.entities_found, 2);
        assert_eq!(r.recall(&g), 0.5);
        // Seeding both components reaches everything.
        let r2 = bootstrap_expansion(&g, &[e(0), e(2)]);
        assert_eq!(r2.entities_found, 4);
    }

    #[test]
    fn absent_seed_discovers_nothing() {
        let g = BipartiteGraph::from_occurrences(3, &[vec![e(0), e(1)]]).unwrap();
        let r = bootstrap_expansion(&g, &[e(2)]);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.entities_found, 0);
        assert_eq!(r.sites_found, 0);
    }

    #[test]
    fn duplicate_seeds_are_harmless() {
        let g = BipartiteGraph::from_occurrences(2, &[vec![e(0), e(1)]]).unwrap();
        let r = bootstrap_expansion(&g, &[e(0), e(0), e(0)]);
        assert_eq!(r.entities_found, 2);
    }

    #[test]
    fn iterations_respect_half_diameter_bound() {
        // The paper's claim: iterations <= d/2 (+1 slack for the final
        // confirming pass). Build a random-ish two-level graph and check.
        let mut rng = webstruct_util::Xoshiro256::from_seed(webstruct_util::Seed(99));
        let n = 300usize;
        let mut sites: Vec<Vec<EntityId>> = Vec::new();
        // One mid-sized hub plus many small sites.
        sites.push((0..60u32).map(e).collect());
        for _ in 0..150 {
            let a = rng.u64_below(n as u64) as u32;
            let b = rng.u64_below(n as u64) as u32;
            sites.push(vec![e(a), e(b)]);
        }
        let g = BipartiteGraph::from_occurrences(n, &sites).unwrap();
        let d = ifub_diameter(&g, 100_000);
        assert!(d.exact);
        // Seed from the giant component's hub entity.
        let r = bootstrap_expansion(&g, &[e(0)]);
        assert!(
            r.iterations <= (d.value as usize).div_ceil(2) + 1,
            "iterations {} vs diameter {}",
            r.iterations,
            d.value
        );
    }

    #[test]
    fn empty_graph_and_empty_seeds() {
        let g = BipartiteGraph::from_occurrences(2, &[]).unwrap();
        let r = bootstrap_expansion(&g, &[]);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.recall(&g), 0.0);
    }
}
