//! Extension experiment: operational source discovery.
//!
//! §5 argues the entity–site graph's connectivity makes bootstrapping
//! discovery feasible; this experiment runs the discovery *process* on the
//! generated webs — budgeted crawls through a metered search index — and
//! measures (a) how frontier policy changes the discovery rate and (b) the
//! paper's random-seed robustness claim.

use crate::cache::Study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_crawl::{policy_comparison, seed_robustness, SeedRobustness};
use webstruct_util::ids::EntityId;
use webstruct_util::report::Figure;
use webstruct_util::rng::Xoshiro256;

/// Attribute used to identify entities during discovery.
fn id_attr(domain: Domain) -> Attribute {
    if domain == Domain::Books {
        Attribute::Isbn
    } else {
        Attribute::Phone
    }
}

/// Policy-comparison figure for one domain: fraction of entities
/// discovered vs. sites fetched, per frontier policy.
pub fn discovery_policies(study: &Study, domain: Domain, fetch_budget: usize) -> Figure {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(id_attr(domain), &study.config);
    let mut rng = Xoshiro256::from_seed(study.config.seed.derive("discovery-seeds"));
    let seeds: Vec<EntityId> = (0..3)
        .map(|_| EntityId::new(rng.u64_below(built.catalog.len() as u64) as u32))
        .collect();
    let mut fig = policy_comparison(
        built.catalog.len(),
        &lists,
        &seeds,
        fetch_budget,
        study.config.seed.derive("discovery-policy"),
    );
    fig.id = format!("ext-discovery-{}", domain.slug());
    fig.title = format!("{}: source discovery under a fetch budget", domain.display_name());
    fig
}

/// Seed-robustness experiment for one domain.
pub fn discovery_seed_robustness(
    study: &Study,
    domain: Domain,
    trials: usize,
) -> SeedRobustness {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(id_attr(domain), &study.config);
    seed_robustness(
        built.catalog.len(),
        &lists,
        trials,
        0.95,
        study.config.seed.derive("discovery-robustness"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn policies_produce_four_series_with_largest_first_leading() {
        let study = Study::new(StudyConfig::quick());
        let fig = discovery_policies(&study, Domain::Restaurants, 200);
        assert_eq!(fig.series.len(), 4);
        let at = |name: &str| {
            fig.series_named(name)
                .unwrap()
                .interpolate(20.0)
                .unwrap_or(0.0)
        };
        assert!(
            at("largest-first") > at("smallest-first"),
            "largest {} vs smallest {}",
            at("largest-first"),
            at("smallest-first")
        );
        // Size-guided discovery is near-complete within the budget;
        // every policy makes at least some progress.
        assert!(
            fig.series_named("largest-first").unwrap().final_y().unwrap() > 0.9,
            "largest-first should nearly finish within the budget"
        );
        for s in &fig.series {
            assert!(s.final_y().unwrap_or(0.0) > 0.02, "{} stalled", s.name);
        }
    }

    #[test]
    fn random_seeds_recover_almost_everything() {
        let study = Study::new(StudyConfig::quick());
        let r = discovery_seed_robustness(&study, Domain::Banks, 10);
        assert!(
            r.success_rate() > 0.85,
            "success {} with ceiling {}",
            r.success_rate(),
            r.largest_component_fraction
        );
        assert!(r.mean_recall > 0.9, "mean recall {}", r.mean_recall);
    }
}
