//! Extension experiment: operational source discovery.
//!
//! §5 argues the entity–site graph's connectivity makes bootstrapping
//! discovery feasible; this experiment runs the discovery *process* on the
//! generated webs — budgeted crawls through a metered search index — and
//! measures (a) how frontier policy changes the discovery rate and (b) the
//! paper's random-seed robustness claim.

use crate::cache::Study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_crawl::{failure_sweep, policy_comparison, seed_robustness, SeedRobustness};
use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series, Table};
use webstruct_util::rng::Xoshiro256;
use webstruct_util::stats::log_ticks;

/// Failure rates swept by [`discovery_under_failure`] — clean baseline
/// plus the two faulty regimes the bench also measures.
pub const FAILURE_RATES: [f64; 3] = [0.0, 0.1, 0.3];

/// Attribute used to identify entities during discovery.
fn id_attr(domain: Domain) -> Attribute {
    if domain == Domain::Books {
        Attribute::Isbn
    } else {
        Attribute::Phone
    }
}

/// Policy-comparison figure for one domain: fraction of entities
/// discovered vs. sites fetched, per frontier policy.
pub fn discovery_policies(study: &Study, domain: Domain, fetch_budget: usize) -> Figure {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(id_attr(domain), &study.config);
    let mut rng = Xoshiro256::from_seed(study.config.seed.derive("discovery-seeds"));
    let seeds: Vec<EntityId> = (0..3)
        .map(|_| EntityId::new(rng.u64_below(built.catalog.len() as u64) as u32))
        .collect();
    let mut fig = policy_comparison(
        built.catalog.len(),
        &lists,
        &seeds,
        fetch_budget,
        study.config.seed.derive("discovery-policy"),
    );
    fig.id = format!("ext-discovery-{}", domain.slug());
    fig.title = format!("{}: source discovery under a fetch budget", domain.display_name());
    fig
}

/// Discovery under failure: the dynamic counterpart of the Figure 9
/// site-removal sweep. The same largest-first budgeted crawl runs
/// against seeded [`webstruct_util::fault::FaultPlan`]s of increasing
/// severity; every retry and timeout charges the fetch budget, and the
/// figure shows what fraction of the domain's entities each budget level
/// still discovers. The companion table reports the fetch-layer
/// counters — attempts, retries, failed rounds, truncations, breaker
/// activity — per failure rate.
pub fn discovery_under_failure(
    study: &Study,
    domain: Domain,
    fetch_budget: usize,
) -> (Figure, Table) {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(id_attr(domain), &study.config);
    let n_entities = built.catalog.len();
    let mut rng = Xoshiro256::from_seed(study.config.seed.derive("failure-seeds"));
    let seeds: Vec<EntityId> = (0..3)
        .map(|_| EntityId::new(rng.u64_below(n_entities as u64) as u32))
        .collect();
    let sweep = failure_sweep(
        n_entities,
        &lists,
        &seeds,
        fetch_budget,
        &FAILURE_RATES,
        study.config.seed.derive("failure-plan"),
    );
    let mut fig = Figure::new(
        format!("ext-discovery-under-failure-{}", domain.slug()),
        format!(
            "{}: discovery under failure (entities found vs. fetch budget spent)",
            domain.display_name()
        ),
    )
    .with_axes("fetch budget spent (attempts)", "fraction of entities discovered")
    .with_log_x();
    let mut table = Table::new(
        format!("Fetch-layer counters under failure ({})", domain.slug()),
        &[
            "Failure rate",
            "Entities found",
            "Attempts",
            "OK rounds",
            "Retries",
            "Failed rounds",
            "Truncated",
            "Breaker opens",
            "Breaker skips",
            "Sim ticks",
        ],
    );
    for point in &sweep {
        let result = &point.result;
        let name = format!("fail={:.0}%", point.failure_rate * 100.0);
        if result.sites_fetched == 0 {
            fig.push(Series::new(name.clone(), Vec::new()));
        } else {
            let points: Vec<(f64, f64)> = log_ticks(result.sites_fetched)
                .into_iter()
                .map(|f| (f as f64, result.entities_at(f) as f64 / n_entities as f64))
                .collect();
            fig.push(Series::new(name.clone(), points));
        }
        let s = &result.fetch;
        table.push_row(vec![
            name,
            result.entities_found.to_string(),
            s.attempts.to_string(),
            s.ok.to_string(),
            s.retries.to_string(),
            s.failed_rounds.to_string(),
            s.truncated.to_string(),
            s.breaker_opens.to_string(),
            s.breaker_skips.to_string(),
            s.sim_ticks.to_string(),
        ]);
    }
    (fig, table)
}

/// Seed-robustness experiment for one domain.
pub fn discovery_seed_robustness(
    study: &Study,
    domain: Domain,
    trials: usize,
) -> SeedRobustness {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(id_attr(domain), &study.config);
    seed_robustness(
        built.catalog.len(),
        &lists,
        trials,
        0.95,
        study.config.seed.derive("discovery-robustness"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn policies_produce_four_series_with_largest_first_leading() {
        let study = Study::new(StudyConfig::quick());
        let fig = discovery_policies(&study, Domain::Restaurants, 200);
        assert_eq!(fig.series.len(), 4);
        let at = |name: &str| {
            fig.series_named(name)
                .unwrap()
                .interpolate(20.0)
                .unwrap_or(0.0)
        };
        assert!(
            at("largest-first") > at("smallest-first"),
            "largest {} vs smallest {}",
            at("largest-first"),
            at("smallest-first")
        );
        // Size-guided discovery is near-complete within the budget;
        // every policy makes at least some progress.
        assert!(
            fig.series_named("largest-first").unwrap().final_y().unwrap() > 0.9,
            "largest-first should nearly finish within the budget"
        );
        for s in &fig.series {
            assert!(s.final_y().unwrap_or(0.0) > 0.02, "{} stalled", s.name);
        }
    }

    #[test]
    fn failure_sweep_has_a_curve_and_counters_per_rate() {
        let study = Study::new(StudyConfig::quick());
        let (fig, table) = discovery_under_failure(&study, Domain::Restaurants, 500);
        assert_eq!(fig.series.len(), FAILURE_RATES.len());
        assert_eq!(table.rows.len(), FAILURE_RATES.len());
        assert!(fig.series_named("fail=0%").is_some());
        assert!(fig.series_named("fail=30%").is_some());
        // The clean baseline discovers at least as much as the worst rate.
        let clean = fig.series_named("fail=0%").unwrap().final_y().unwrap_or(0.0);
        let worst = fig
            .series_named("fail=30%")
            .unwrap()
            .final_y()
            .unwrap_or(0.0);
        assert!(clean >= worst, "clean {clean} vs 30% {worst}");
        // Counters: the clean run has zero retries, the faulty runs don't.
        assert_eq!(table.rows[0][4], "0", "clean run retries");
        let faulty_retries: u64 = table.rows[2][4].parse().unwrap();
        assert!(faulty_retries > 0, "30% run should have retried");
    }

    #[test]
    fn failure_sweep_is_deterministic_across_runs() {
        let study_a = Study::new(StudyConfig::quick());
        let study_b = Study::new(StudyConfig::quick());
        let a = discovery_under_failure(&study_a, Domain::Restaurants, 300);
        let b = discovery_under_failure(&study_b, Domain::Restaurants, 300);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn random_seeds_recover_almost_everything() {
        let study = Study::new(StudyConfig::quick());
        let r = discovery_seed_robustness(&study, Domain::Banks, 10);
        assert!(
            r.success_rate() > 0.85,
            "success {} with ceiling {}",
            r.success_rate(),
            r.largest_component_fraction
        );
        assert!(r.mean_recall > 0.9, "mean recall {}", r.mean_recall);
    }
}
