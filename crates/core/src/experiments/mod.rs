//! The experiment registry: one function per table/figure of the paper.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 | [`table1`] |
//! | Figure 1(a)–(h) | [`spread::fig1`] |
//! | Figure 2(a)–(h) | [`spread::fig2`] |
//! | Figure 3 | [`spread::fig3`] |
//! | Figure 4(a)/(b) | [`spread::fig4`] |
//! | Figure 5 | [`spread::fig5`] |
//! | Figure 6(a)–(d) | [`tail_value::fig6`] |
//! | Figure 7 | [`tail_value::fig7`] |
//! | Figure 8 | [`tail_value::fig8`] |
//! | Table 2 | [`connectivity::table2`] |
//! | Figure 9(a)–(c) | [`connectivity::fig9`] |
//!
//! Extensions (motivated by the paper's text, beyond its own artifacts):
//! [`redundancy::redundancy_experiment`] (§2/§3.3 corroboration),
//! [`discovery::discovery_policies`],
//! [`discovery::discovery_seed_robustness`] and
//! [`discovery::discovery_under_failure`] (§5 operational discovery,
//! healthy and under injected faults),
//! [`tail_value::user_tail_table`] (§4.2 user-level tail analysis),
//! [`linkage::linkage_table`] (§1 deduplication stage),
//! [`ablations::ablation_suite`] (which model ingredient drives which
//! finding), [`open_extraction::open_extraction`] (catalog-free database
//! construction: wrappers + scanner + dedup).

pub mod ablations;
pub mod connectivity;
pub mod discovery;
pub mod linkage;
pub mod open_extraction;
pub mod redundancy;
pub mod stability;
pub mod spread;
pub mod tail_value;

use webstruct_corpus::domain::Domain;
use webstruct_util::report::Table;

/// Table 1: the list of domains and studied attributes.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new("Table 1: List of Domains", &["Domains", "Attributes"]);
    for d in Domain::ALL {
        let attrs: Vec<&str> = d.attributes().iter().map(|a| a.slug()).collect();
        t.push_row(vec![d.display_name().to_string(), attrs.join(", ")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        let md = t.to_markdown();
        assert!(md.contains("| Books | isbn |"));
        assert!(md.contains("| Restaurants | phone, homepage, review |"));
        assert!(md.contains("| Hotels & Lodging | phone, homepage |"));
    }
}
