//! Extension experiment: open (catalog-free) database construction.
//!
//! The paper's methodology locates *known* entities by their identifiers;
//! the end goal of domain-centric extraction (§1) is to build the database
//! from scratch. This experiment does that end to end on the synthetic
//! web: learn a wrapper per site (template induction), extract raw records
//! with no access to the reference catalog, deduplicate them across sites,
//! and measure how much of the true entity universe the constructed
//! database recovers.

use crate::cache::Study;
use webstruct_corpus::domain::Domain;
use webstruct_corpus::page::{Page, PageConfig, PageKind, PageStream};
use webstruct_dedup::{cluster, Blocking, MatchConfig, Record};
use webstruct_extract::phone_scan::scan_phones;
use webstruct_extract::wrapper::learn_wrapper;
use webstruct_util::hash::FxHashMap;
use webstruct_util::ids::{EntityId, SiteId};

/// Outcome of the open-extraction pipeline.
#[derive(Debug, Clone)]
pub struct OpenExtractionReport {
    /// Sites whose pages were wrapped and extracted.
    pub sites_wrapped: usize,
    /// Raw records extracted (pre-dedup).
    pub raw_records: usize,
    /// Clusters after cross-site deduplication (the constructed database).
    pub database_size: usize,
    /// True entities present on the processed sites.
    pub true_entities: usize,
    /// Fraction of true entities recovered by at least one record whose
    /// name matches exactly.
    pub name_recall: f64,
}

/// Run open extraction over the `max_sites` largest sites of a domain.
///
/// Every stage is catalog-free: wrappers come from template induction,
/// record phones from the scanner, and entity identity from the
/// cross-site deduper. The catalog is consulted only afterwards, for
/// evaluation.
pub fn open_extraction(
    study: &Study,
    domain: Domain,
    max_sites: usize,
) -> OpenExtractionReport {
    let built = study.domain(domain);
    let pages: Vec<Page> = PageStream::new(
        &built.web,
        &built.catalog,
        PageConfig::default(),
        study.config.seed.derive("open-render"),
    )
    .filter(|p| p.kind == PageKind::Listing)
    .collect();
    // Group listing pages by site; keep the largest `max_sites` sites.
    let mut by_site: FxHashMap<SiteId, Vec<&Page>> = FxHashMap::default();
    for p in &pages {
        by_site.entry(p.site).or_default().push(p);
    }
    let mut site_order: Vec<(SiteId, usize)> = by_site
        .iter()
        .map(|(&s, ps)| (s, ps.len()))
        .collect();
    site_order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    site_order.truncate(max_sites);

    // Wrap and extract, catalog-free.
    let mut records: Vec<Record> = Vec::new();
    let mut truth_entities = webstruct_util::FxHashSet::default();
    for &(site, _) in &site_order {
        let site_pages = &by_site[&site];
        let wrapper = learn_wrapper(site_pages.iter().copied(), 0.4);
        for page in site_pages {
            for raw in wrapper.extract(page) {
                let phone = raw
                    .fields
                    .iter()
                    .flat_map(|f| scan_phones(f))
                    .map(|m| m.phone.digits())
                    .next();
                records.push(Record {
                    id: records.len() as u32,
                    site,
                    name: raw.name,
                    phone,
                    // Open extraction does not know regions; use a single
                    // block (region 0) so name blocking still works.
                    region: webstruct_util::RegionId::new(0),
                    // Truth is filled below for evaluation only.
                    truth: EntityId::new(0),
                });
            }
        }
        for m in built.web.mentions_of(site) {
            truth_entities.insert(m.entity);
        }
    }
    // Evaluation-only truth assignment by exact name lookup.
    let name_to_entity: FxHashMap<&str, EntityId> = built
        .catalog
        .entities
        .iter()
        .map(|e| (e.name.as_str(), e.id))
        .collect();
    let mut recovered = webstruct_util::FxHashSet::default();
    for r in &mut records {
        if let Some(&e) = name_to_entity.get(r.name.as_str()) {
            r.truth = e;
            recovered.insert(e);
        }
    }
    let clustering = cluster(&records, Blocking::PhoneOrName, &MatchConfig::default());
    let recovered_true = truth_entities
        .iter()
        .filter(|e| recovered.contains(*e))
        .count();
    OpenExtractionReport {
        sites_wrapped: site_order.len(),
        raw_records: records.len(),
        database_size: clustering.n_clusters,
        true_entities: truth_entities.len(),
        name_recall: if truth_entities.is_empty() {
            0.0
        } else {
            recovered_true as f64 / truth_entities.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn open_extraction_builds_a_credible_database() {
        let study = Study::new(StudyConfig::quick());
        let report = open_extraction(&study, Domain::Restaurants, 40);
        assert_eq!(report.sites_wrapped, 40);
        assert!(report.raw_records > report.true_entities);
        // Catalog-free recall: nearly every entity on the processed sites
        // is recovered by name.
        assert!(
            report.name_recall > 0.97,
            "open-extraction recall {}",
            report.name_recall
        );
        // Dedup compresses the raw records toward the true entity count
        // (name variants are absent here, so compression is strong).
        assert!(
            report.database_size < report.raw_records,
            "dedup must merge cross-site duplicates"
        );
        let ratio = report.database_size as f64 / report.true_entities as f64;
        assert!(
            (0.8..=1.6).contains(&ratio),
            "database size {} vs true {} (ratio {ratio})",
            report.database_size,
            report.true_entities
        );
    }
}
