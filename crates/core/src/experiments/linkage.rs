//! Extension experiment: deduplication of extracted listings.
//!
//! §1 of the paper lists "deduplication and linking" among the stages of
//! the end-to-end web-extraction challenge. This experiment generates
//! noisy per-site listing records for a domain's catalog (name variants,
//! missing/wrong phones), runs the blocking + matching + clustering
//! pipeline from `webstruct-dedup`, and reports pairwise quality.

use crate::cache::Study;
use webstruct_corpus::domain::Domain;
use webstruct_dedup::{
    dedup_and_evaluate, evaluate_blocking, generate_records, Blocking, BlockingReport,
    DedupReport, MatchConfig, VariantModel,
};
use webstruct_util::report::Table;

/// Records per entity in the linkage experiment (distinct "sites").
pub const RECORDS_PER_ENTITY: usize = 4;

/// Run dedup over a domain under every blocking strategy.
pub fn dedup_reports(study: &Study, domain: Domain) -> Vec<(BlockingReport, DedupReport)> {
    let built = study.domain(domain);
    let records = generate_records(
        &built.catalog,
        RECORDS_PER_ENTITY,
        &VariantModel::default(),
        study.config.seed.derive("linkage"),
    );
    [Blocking::Phone, Blocking::RegionFirstToken, Blocking::PhoneOrName]
        .into_iter()
        .map(|b| {
            (
                evaluate_blocking(&records, b),
                dedup_and_evaluate(&records, b, &MatchConfig::default()),
            )
        })
        .collect()
}

/// Render the linkage experiment as a table.
pub fn linkage_table(study: &Study, domain: Domain) -> Table {
    let mut table = Table::new(
        format!(
            "{}: deduplication of {}x noisy listings",
            domain.display_name(),
            RECORDS_PER_ENTITY
        ),
        &[
            "Blocking",
            "Candidates",
            "Block recall",
            "Precision",
            "Recall",
            "F1",
        ],
    );
    for (block, dedup) in dedup_reports(study, domain) {
        table.push_row(vec![
            block.strategy.name().to_string(),
            block.candidates.to_string(),
            format!("{:.3}", block.pair_recall),
            format!("{:.3}", dedup.precision),
            format!("{:.3}", dedup.recall),
            format!("{:.3}", dedup.f1()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn union_blocking_wins_on_f1() {
        let study = Study::new(StudyConfig::quick());
        let reports = dedup_reports(&study, Domain::Restaurants);
        assert_eq!(reports.len(), 3);
        let f1 = |i: usize| reports[i].1.f1();
        // phone | name union dominates each alone.
        assert!(f1(2) >= f1(0) - 1e-9, "union {} vs phone {}", f1(2), f1(0));
        assert!(f1(2) >= f1(1) - 1e-9, "union {} vs name {}", f1(2), f1(1));
        assert!(f1(2) > 0.85, "union F1 {}", f1(2));
        // Precision stays high everywhere (phone veto + thresholds).
        for (_, d) in &reports {
            assert!(d.precision > 0.9, "{:?} precision {}", d.blocking, d.precision);
        }
    }

    #[test]
    fn table_renders_three_strategies() {
        let study = Study::new(StudyConfig::quick());
        let t = linkage_table(&study, Domain::Banks);
        assert_eq!(t.rows.len(), 3);
        assert!(t.to_markdown().contains("phone|name"));
    }
}
