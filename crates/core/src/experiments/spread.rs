//! Figures 1–5: the spread-of-data experiments (§3 of the paper).

use crate::cache::Study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_coverage::{aggregate_coverage, greedy_cover, k_coverage, KCoverage};
use webstruct_util::report::Figure;

/// Maximum k for the k-coverage sweeps: the paper plots k = 1..10.
pub const MAX_K: usize = 10;

/// The coverage universe and occurrence lists for a (domain, attribute)
/// pair. For homepages the universe is restricted to the entities that
/// *have* a homepage — a business without a website can never be covered,
/// and the paper's Figure 2 curves approach 1 — with ids remapped to that
/// dense sub-universe.
fn universe_lists(
    study: &Study,
    domain: Domain,
    attr: Attribute,
) -> (usize, Vec<Vec<webstruct_util::EntityId>>) {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(attr, &study.config);
    if attr != Attribute::Homepage {
        return (built.catalog.len(), lists);
    }
    let mut remap = vec![u32::MAX; built.catalog.len()];
    let mut n_universe = 0u32;
    for e in built.catalog.with_homepage() {
        remap[e.id.index()] = n_universe;
        n_universe += 1;
    }
    let remapped: Vec<Vec<webstruct_util::EntityId>> = lists
        .iter()
        .map(|l| {
            l.iter()
                .map(|e| {
                    let dense = remap[e.index()];
                    debug_assert_ne!(dense, u32::MAX, "homepage mention without homepage");
                    webstruct_util::EntityId::new(dense)
                })
                .collect()
        })
        .collect();
    (n_universe as usize, remapped)
}

fn coverage_for(study: &Study, domain: Domain, attr: Attribute) -> KCoverage {
    let (n, lists) = universe_lists(study, domain, attr);
    k_coverage(n, &lists, MAX_K)
        .expect("generated corpora always have entities and valid ids")
}

/// Figure 1: spread of the phone attribute for the eight local-business
/// domains. Returns figures in the paper's (a)–(h) order.
pub fn fig1(study: &Study) -> Vec<Figure> {
    fig_for_attribute(study, Attribute::Phone, "fig1")
}

/// Figure 2: spread of the homepage attribute for the eight local-business
/// domains.
pub fn fig2(study: &Study) -> Vec<Figure> {
    fig_for_attribute(study, Attribute::Homepage, "fig2")
}

fn fig_for_attribute(study: &Study, attr: Attribute, id_prefix: &str) -> Vec<Figure> {
    let order = [
        Domain::Restaurants,
        Domain::Automotive,
        Domain::Banks,
        Domain::HotelsLodging,
        Domain::Libraries,
        Domain::RetailShopping,
        Domain::HomeGarden,
        Domain::Schools,
    ];
    order
        .iter()
        .enumerate()
        .map(|(i, &domain)| {
            let cov = coverage_for(study, domain, attr);
            let letter = (b'a' + i as u8) as char;
            cov.to_figure(
                &format!("{id_prefix}{letter}"),
                &format!("{} {}s", domain.display_name(), attr.slug()),
            )
        })
        .collect()
}

/// Figure 3: spread of book ISBN numbers.
pub fn fig3(study: &Study) -> Figure {
    let cov = coverage_for(study, Domain::Books, Attribute::Isbn);
    cov.to_figure("fig3", "Books books")
}

/// Figure 4(a): k-coverage of restaurant reviews; Figure 4(b): aggregate
/// review-page coverage.
pub fn fig4(study: &Study) -> (Figure, Figure) {
    let fig4a = coverage_for(study, Domain::Restaurants, Attribute::Review)
        .to_figure("fig4a", "Restaurant Reviews");
    let built = study.domain(Domain::Restaurants);
    let pages = built.review_page_lists(&study.config);
    let fig4b = aggregate_coverage(&pages).to_figure("fig4b", "Aggregate Reviews");
    (fig4a, fig4b)
}

/// Figure 5: greedy set cover vs. order-by-size for restaurant homepages.
pub fn fig5(study: &Study) -> Figure {
    let (n, lists) = universe_lists(study, Domain::Restaurants, Attribute::Homepage);
    let by_size = k_coverage(n, &lists, 1).expect("valid corpus");
    let greedy = greedy_cover(n, &lists).expect("valid corpus");
    let size_fig = by_size.to_figure("tmp", "tmp");
    webstruct_coverage::comparison_figure(
        "fig5",
        "Greedy Covering For Restaurant Homepages",
        &size_fig.series[0],
        &greedy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn quick_study() -> Study {
        Study::new(StudyConfig::quick())
    }

    #[test]
    fn fig1_has_eight_panels_with_ten_curves() {
        let mut study = quick_study();
        let figs = fig1(&study);
        assert_eq!(figs.len(), 8);
        for f in &figs {
            assert_eq!(f.series.len(), MAX_K);
            assert!(f.log_x);
            // k=1 coverage at full site list is near-total.
            let k1 = f.series_named("k=1").unwrap();
            assert!(
                k1.final_y().unwrap() > 0.95,
                "{}: k=1 final coverage {:?}",
                f.title,
                k1.final_y()
            );
        }
        assert_eq!(figs[0].id, "fig1a");
        assert!(figs[0].title.contains("Restaurants"));
        assert_eq!(figs[7].id, "fig1h");
        assert!(figs[7].title.contains("Schools"));
    }

    #[test]
    fn fig2_spread_is_wider_than_fig1() {
        let mut study = quick_study();
        let phones = fig1(&study);
        let homepages = fig2(&study);
        // Paper: homepage coverage at small t is far below phone coverage.
        // Compare k=1 coverage of the top-10 sites for restaurants.
        let p = phones[0].series_named("k=1").unwrap().interpolate(10.0).unwrap();
        let h = homepages[0]
            .series_named("k=1")
            .unwrap()
            .interpolate(10.0)
            .unwrap();
        assert!(
            h < p - 0.1,
            "homepage top-10 coverage {h} should trail phone coverage {p}"
        );
    }

    #[test]
    fn fig3_books_cover_eventually() {
        let mut study = quick_study();
        let fig = fig3(&study);
        assert_eq!(fig.series.len(), MAX_K);
        assert!(fig.series_named("k=1").unwrap().final_y().unwrap() > 0.9);
    }

    #[test]
    fn fig4_review_coverage_spreads_wider_than_existence() {
        let mut study = quick_study();
        let (a, b) = fig4(&study);
        assert_eq!(a.id, "fig4a");
        assert_eq!(b.id, "fig4b");
        assert_eq!(b.series.len(), 1);
        // Paper: at the same t, aggregate-page coverage trails entity
        // coverage ("top 1000 sites cover 95% of restaurants but only 80%
        // of reviews"). Compare at a small prefix.
        let t = 10.0;
        let entity_cov = a.series_named("k=1").unwrap().interpolate(t).unwrap();
        let page_cov = b.series[0].interpolate(t).unwrap();
        assert!(
            page_cov < entity_cov,
            "page coverage {page_cov} should trail entity coverage {entity_cov} at t={t}"
        );
    }

    #[test]
    fn fig5_greedy_dominates_but_modestly() {
        let mut study = quick_study();
        let fig = fig5(&study);
        let by_size = fig.series_named("Order by Size").unwrap();
        let greedy = fig.series_named("Greedy Set Cover").unwrap();
        // At every shared t, greedy is at least on par with by-size.
        // (Greedy is stepwise-optimal, not prefix-dominant, so tiny
        // violations are legitimate; allow a small slack.)
        for &(t, g) in &greedy.points {
            let s = by_size.interpolate(t).unwrap();
            assert!(g + 0.02 >= s, "greedy {g} < by-size {s} at t={t}");
        }
        // And the improvement is modest (the paper's conclusion): final
        // coverage difference is small.
        let gf = greedy.final_y().unwrap();
        let sf = by_size.final_y().unwrap();
        assert!(gf - sf < 0.1, "greedy {gf} vs size {sf}");
    }
}
