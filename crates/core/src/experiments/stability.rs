//! Seed-stability experiment: are the reproduced milestones properties of
//! the *model* or accidents of one random draw?
//!
//! A measurement-study reproduction should report numbers that are stable
//! across the generator's randomness. This experiment re-runs the headline
//! milestones under independent seeds and reports mean ± standard
//! deviation; tests assert the relative spread is small.

use crate::cache::Study;
use crate::experiments::spread;
use crate::study::StudyConfig;
use webstruct_util::rng::Seed;
use webstruct_util::stats::{mean, std_dev};

/// One milestone's distribution across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct MilestoneStability {
    /// Milestone label.
    pub label: &'static str,
    /// Per-seed values.
    pub values: Vec<f64>,
    /// Mean across seeds.
    pub mean: f64,
    /// Standard deviation across seeds.
    pub std_dev: f64,
}

impl MilestoneStability {
    fn from_values(label: &'static str, values: Vec<f64>) -> Self {
        let m = mean(&values);
        let s = std_dev(&values);
        MilestoneStability {
            label,
            values,
            mean: m,
            std_dev: s,
        }
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.std_dev / self.mean.abs()
    }
}

/// Re-run the Figure 1(a) milestones under `n_seeds` independent seeds.
pub fn fig1_stability(base: &StudyConfig, n_seeds: usize) -> Vec<MilestoneStability> {
    assert!(n_seeds >= 2, "stability needs at least two seeds");
    let mut top10 = Vec::with_capacity(n_seeds);
    let mut k1_final = Vec::with_capacity(n_seeds);
    let mut k5_final = Vec::with_capacity(n_seeds);
    for i in 0..n_seeds {
        let config = base
            .clone()
            .with_seed(Seed::DEFAULT.derive_u64(0xAB1E + i as u64));
        let study = Study::new(config);
        let figs = spread::fig1(&study);
        let restaurants = &figs[0];
        let k1 = restaurants.series_named("k=1").expect("k=1 exists");
        let k5 = restaurants.series_named("k=5").expect("k=5 exists");
        top10.push(k1.interpolate(10.0).unwrap_or(0.0));
        k1_final.push(k1.final_y().unwrap_or(0.0));
        k5_final.push(k5.final_y().unwrap_or(0.0));
    }
    vec![
        MilestoneStability::from_values("fig1a top-10 k=1 coverage", top10),
        MilestoneStability::from_values("fig1a final k=1 coverage", k1_final),
        MilestoneStability::from_values("fig1a final k=5 coverage", k5_final),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestones_are_stable_across_seeds() {
        let stats = fig1_stability(&StudyConfig::quick(), 4);
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert_eq!(s.values.len(), 4);
            assert!(s.mean > 0.3, "{}: mean {}", s.label, s.mean);
            assert!(
                s.cv() < 0.08,
                "{}: coefficient of variation {} too high (values {:?})",
                s.label,
                s.cv(),
                s.values
            );
        }
        // And the seeds genuinely differed (not all values identical).
        assert!(
            stats.iter().any(|s| s.std_dev > 0.0),
            "independent seeds must produce some variation"
        );
    }

    #[test]
    #[should_panic(expected = "at least two seeds")]
    fn one_seed_rejected() {
        let _ = fig1_stability(&StudyConfig::quick(), 1);
    }
}
