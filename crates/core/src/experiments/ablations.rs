//! Model ablations: which generative ingredient produces which paper
//! finding?
//!
//! The substitution argument of DESIGN.md says the paper's findings
//! *emerge* from structural properties of the web (inclusion floors,
//! popularity tilt, tail-site mass) rather than being baked in. Each
//! ablation removes one ingredient and checks that the corresponding
//! finding degrades — the falsifiable version of that claim.

use crate::study::StudyConfig;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_coverage::k_coverage;
use webstruct_graph::{component_stats, BipartiteGraph, ComponentStats};

/// Outcome of one ablation arm.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Arm label (`"baseline"` or the ablated ingredient).
    pub label: &'static str,
    /// Largest-component stats of the phone graph.
    pub components: ComponentStats,
    /// k=1 coverage of the top-10 sites.
    pub top10_coverage: f64,
    /// k=5 coverage at the full site list.
    pub k5_final: f64,
}

fn build_arm(
    label: &'static str,
    catalog: &EntityCatalog,
    web_cfg: &WebConfig,
    config: &StudyConfig,
) -> AblationArm {
    let web = Web::generate(catalog, web_cfg, config.seed);
    let lists = web.occurrence_lists(Attribute::Phone);
    let graph = BipartiteGraph::from_occurrences(catalog.len(), &lists).expect("valid ids");
    let cov = k_coverage(catalog.len(), &lists, 5).expect("valid corpus");
    AblationArm {
        label,
        components: component_stats(&graph, &[]),
        top10_coverage: cov.coverage_at(1, 10),
        k5_final: cov
            .curves
            .get(4)
            .and_then(|c| c.last().copied())
            .unwrap_or(0.0),
    }
}

/// Run the ablation suite for one domain: baseline, no inclusion floor,
/// no aggregators, no tail sites.
#[must_use]
pub fn ablation_suite(domain: Domain, config: &StudyConfig) -> Vec<AblationArm> {
    let n_entities =
        ((crate::study::reference_entity_count(domain) as f64 * config.scale).round() as usize)
            .max(64);
    let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, n_entities), config.seed);
    let base_cfg = WebConfig::preset(domain).scaled(config.scale);

    let mut arms = vec![build_arm("baseline", &catalog, &base_cfg, config)];

    // Ablation 1: no inclusion floor — tail entities become invisible to
    // aggregators, so connectivity and coverage must degrade.
    let mut no_floor = base_cfg.clone();
    no_floor.min_inclusion = 0.0;
    no_floor.popularity_tilt = 3.0;
    arms.push(build_arm("no-inclusion-floor", &catalog, &no_floor, config));

    // Ablation 2: no aggregators — the head of every coverage curve
    // collapses; connectivity survives on regional overlap.
    let mut no_agg = base_cfg.clone();
    no_agg.agg_reach_head = 0.0;
    arms.push(build_arm("no-aggregators", &catalog, &no_agg, config));

    // Ablation 3: no tail sites — head coverage unaffected, but
    // corroboration (k=5) and tail mass disappear.
    let mut no_tail = base_cfg.clone();
    no_tail.regional_frac_head = 0.0;
    no_tail.niche_mean_entities = 0.0;
    arms.push(build_arm("no-tail-sites", &catalog, &no_tail, config));

    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Vec<AblationArm> {
        ablation_suite(Domain::Restaurants, &StudyConfig::quick())
    }

    fn arm<'a>(arms: &'a [AblationArm], label: &str) -> &'a AblationArm {
        arms.iter().find(|a| a.label == label).expect("arm exists")
    }

    #[test]
    fn baseline_has_the_paper_properties() {
        let arms = suite();
        let base = arm(&arms, "baseline");
        assert!(base.top10_coverage > 0.8);
        assert!(base.components.largest_fraction() > 0.99);
        assert!(base.k5_final > 0.5);
    }

    #[test]
    fn floor_ablation_fragments_or_starves_the_tail() {
        let arms = suite();
        let base = arm(&arms, "baseline");
        let ablated = arm(&arms, "no-inclusion-floor");
        // Tail entities lose aggregator presence: either coverage of the
        // full database drops (entities missing entirely) or fragmentation
        // rises.
        assert!(
            ablated.components.entities_present < base.components.entities_present
                || ablated.components.n_components > base.components.n_components,
            "ablation must visibly damage tail reachability"
        );
    }

    #[test]
    fn aggregator_ablation_collapses_the_head() {
        let arms = suite();
        let base = arm(&arms, "baseline");
        let ablated = arm(&arms, "no-aggregators");
        assert!(
            ablated.top10_coverage < base.top10_coverage - 0.3,
            "top-10 coverage {} should collapse vs baseline {}",
            ablated.top10_coverage,
            base.top10_coverage
        );
    }

    #[test]
    fn tail_ablation_kills_corroboration() {
        let arms = suite();
        let base = arm(&arms, "baseline");
        let ablated = arm(&arms, "no-tail-sites");
        // Head coverage largely survives…
        assert!(ablated.top10_coverage > base.top10_coverage - 0.15);
        // …but k=5 corroboration collapses: the 5th source was a tail site.
        assert!(
            ablated.k5_final < base.k5_final * 0.7,
            "k=5 final {} should collapse vs baseline {}",
            ablated.k5_final,
            base.k5_final
        );
    }
}
