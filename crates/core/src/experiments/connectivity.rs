//! Table 2 and Figure 9: connectivity of the entity–site graphs (§5).

use crate::cache::Study;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_graph::{component_stats, ifub_diameter, robustness_series, robustness_sweep};
use webstruct_graph::BipartiteGraph;
use webstruct_util::report::{Figure, Table};

/// BFS budget for the exact-diameter computation. On these hub-dominated
/// graphs iFUB terminates in well under this; the cap only guards
/// pathological configs.
pub const DIAMETER_BFS_BUDGET: u32 = 50_000;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetricsRow {
    /// Domain of the graph.
    pub domain: Domain,
    /// Attribute inducing the graph.
    pub attr: Attribute,
    /// Average number of sites per present entity.
    pub avg_sites_per_entity: f64,
    /// Diameter of the giant component.
    pub diameter: u32,
    /// Whether the diameter is exact (iFUB converged within budget).
    pub diameter_exact: bool,
    /// Number of connected components.
    pub n_components: usize,
    /// Percentage of present entities inside the largest component.
    pub pct_in_largest: f64,
}

/// The (domain, attribute) pairs of Table 2, in the paper's row order.
#[must_use]
pub fn table2_graphs() -> Vec<(Domain, Attribute)> {
    let mut rows = vec![(Domain::Books, Attribute::Isbn)];
    let locals = [
        Domain::Automotive,
        Domain::Banks,
        Domain::HomeGarden,
        Domain::HotelsLodging,
        Domain::Libraries,
        Domain::Restaurants,
        Domain::RetailShopping,
        Domain::Schools,
    ];
    for d in locals {
        rows.push((d, Attribute::Phone));
    }
    for d in locals {
        rows.push((d, Attribute::Homepage));
    }
    rows
}

/// Build the entity–site graph for one (domain, attribute) pair.
pub fn build_graph(study: &Study, domain: Domain, attr: Attribute) -> BipartiteGraph {
    let built = study.domain(domain);
    let lists = built.occurrence_lists(attr, &study.config);
    BipartiteGraph::from_occurrences(built.catalog.len(), &lists)
        .expect("generated ids are always in range")
}

/// Compute one Table 2 row.
pub fn graph_metrics(study: &Study, domain: Domain, attr: Attribute) -> GraphMetricsRow {
    let graph = build_graph(study, domain, attr);
    let stats = component_stats(&graph, &[]);
    let diameter = ifub_diameter(&graph, DIAMETER_BFS_BUDGET);
    GraphMetricsRow {
        domain,
        attr,
        avg_sites_per_entity: graph.avg_sites_per_entity(),
        diameter: diameter.value,
        diameter_exact: diameter.exact,
        n_components: stats.n_components,
        pct_in_largest: 100.0 * stats.largest_fraction(),
    }
}

/// All 17 rows of Table 2.
pub fn table2_rows(study: &Study) -> Vec<GraphMetricsRow> {
    table2_graphs()
        .into_iter()
        .map(|(d, a)| graph_metrics(study, d, a))
        .collect()
}

/// Table 2 rendered as a report table.
pub fn table2(study: &Study) -> Table {
    let mut table = Table::new(
        "Table 2: Entity-Site Graphs and Metrics",
        &[
            "Domain",
            "Attr",
            "Avg #sites per entity",
            "diameter",
            "# conn. comp.",
            "% entities in largest comp.",
        ],
    );
    for row in table2_rows(study) {
        table.push_row(vec![
            row.domain.display_name().to_string(),
            row.attr.slug().to_string(),
            format!("{:.0}", row.avg_sites_per_entity),
            format!(
                "{}{}",
                row.diameter,
                if row.diameter_exact { "" } else { "+" }
            ),
            row.n_components.to_string(),
            format!("{:.2}", row.pct_in_largest),
        ]);
    }
    table
}

/// Figure 9: fraction of entities in the largest component after removing
/// the top-k sites, k = 0..10. Three panels: (a) phones for the eight
/// local domains, (b) homepages, (c) book ISBNs.
pub fn fig9(study: &Study) -> Vec<Figure> {
    let locals = [
        Domain::Automotive,
        Domain::Banks,
        Domain::HomeGarden,
        Domain::HotelsLodging,
        Domain::Libraries,
        Domain::Restaurants,
        Domain::RetailShopping,
        Domain::Schools,
    ];
    let mut panels = Vec::with_capacity(3);
    for (panel_id, title, attr, domains) in [
        (
            "fig9a",
            "Robustness: Phones",
            Attribute::Phone,
            &locals[..],
        ),
        (
            "fig9b",
            "Robustness: Home Pages",
            Attribute::Homepage,
            &locals[..],
        ),
        (
            "fig9c",
            "Robustness: Book ISBN",
            Attribute::Isbn,
            &[Domain::Books][..],
        ),
    ] {
        let mut fig = Figure::new(panel_id, title)
            .with_axes("Top-K sites removed", "Fraction in Largest Component");
        for &domain in domains {
            let graph = build_graph(study, domain, attr);
            let sweep = robustness_sweep(&graph, 10);
            fig.push(robustness_series(domain.display_name(), &sweep));
        }
        panels.push(fig);
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn quick_study() -> Study {
        Study::new(StudyConfig::quick())
    }

    #[test]
    fn table2_has_seventeen_rows_in_paper_order() {
        let graphs = table2_graphs();
        assert_eq!(graphs.len(), 17);
        assert_eq!(graphs[0], (Domain::Books, Attribute::Isbn));
        assert!(graphs[1..9].iter().all(|&(_, a)| a == Attribute::Phone));
        assert!(graphs[9..].iter().all(|&(_, a)| a == Attribute::Homepage));
    }

    #[test]
    fn metrics_match_paper_shape_for_phones() {
        let mut study = quick_study();
        let row = graph_metrics(&study, Domain::Restaurants, Attribute::Phone);
        assert!(row.diameter_exact, "iFUB should converge");
        assert!(
            (4..=12).contains(&row.diameter),
            "diameter {} outside the paper's small-world range",
            row.diameter
        );
        assert!(
            row.pct_in_largest > 99.0,
            "largest component {}% (paper: >99%)",
            row.pct_in_largest
        );
        assert!(
            row.avg_sites_per_entity > 3.0,
            "avg sites/entity {}",
            row.avg_sites_per_entity
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let mut study = quick_study();
        let t = table2(&study);
        assert_eq!(t.rows.len(), 17);
        let md = t.to_markdown();
        assert!(md.contains("Books"));
        assert!(md.contains("homepage"));
    }

    #[test]
    fn fig9_panels_and_robustness() {
        // Robustness depends on tail-site mass, so this test runs at a
        // larger scale than the other quick tests.
        let study = Study::new(StudyConfig::quick().with_scale(0.2));
        let panels = fig9(&study);
        assert_eq!(panels.len(), 3);
        assert_eq!(panels[0].series.len(), 8);
        assert_eq!(panels[1].series.len(), 8);
        assert_eq!(panels[2].series.len(), 1);
        for panel in &panels {
            // Identifier graphs (phones, ISBNs) are denser than homepage
            // graphs; the paper reports >99% vs. >90% for them. Quick-scale
            // corpora are a little noisier, so thresholds carry margin.
            // (Full-scale calibration asserts tighter bounds in the
            // integration tests; quick scale keeps generous margins.)
            let (k0_min, k10_min) = if panel.id == "fig9b" {
                (0.80, 0.55)
            } else {
                (0.96, 0.88)
            };
            for s in &panel.series {
                assert_eq!(s.points.len(), 11, "k = 0..=10");
                // At k=0 the y value is the full-graph largest-component
                // fraction — near (but not exactly) 1, as in Table 2.
                assert!(
                    s.points[0].1 > k0_min,
                    "{} {}: k=0 fraction {}",
                    panel.id,
                    s.name,
                    s.points[0].1
                );
                // Monotone non-increasing in k.
                assert!(s.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9));
                // The paper's robustness finding: even after removing the
                // top 10 sites, the largest component keeps the vast
                // majority of entities.
                let k10 = s.points[10].1;
                assert!(
                    k10 > k10_min,
                    "{} {}: fraction after top-10 removal {k10}",
                    panel.id,
                    s.name
                );
            }
        }
    }
}
