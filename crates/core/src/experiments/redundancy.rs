//! Extension experiment: the value of redundancy.
//!
//! Not a numbered figure in the paper, but the direct quantification of
//! its §2/§3.3 argument: k-coverage matters because corroborating an
//! extraction from k sources buys confidence. We generate noisy claims
//! from the corpus web (per-site-kind error rates), fuse them with three
//! strategies, and measure accuracy as a function of how many sources
//! corroborate each entity.

use crate::cache::Study;
use webstruct_corpus::domain::Domain;
use webstruct_fuse::{
    evaluate, redundancy_figure, ClaimSet, ErrorModel, FirstClaim, FusionReport,
    IterativeTrust, MajorityVote,
};
use webstruct_util::report::Figure;

/// Redundancy bucket cap (entities with more claims land in the top
/// bucket).
pub const MAX_REDUNDANCY: usize = 10;

/// Generate the claim corpus for a domain under the default error model.
pub fn claims_for(study: &Study, domain: Domain) -> ClaimSet {
    let built = study.domain(domain);
    ClaimSet::generate(
        &built.catalog,
        &built.web,
        &ErrorModel::default(),
        0.2,
        study.config.seed.derive("claims"),
    )
}

/// Run all three fusion strategies over one domain's claims.
pub fn fusion_reports(study: &Study, domain: Domain) -> Vec<FusionReport> {
    let claims = claims_for(study, domain);
    vec![
        evaluate(&FirstClaim, &claims, MAX_REDUNDANCY),
        evaluate(&MajorityVote, &claims, MAX_REDUNDANCY),
        evaluate(&IterativeTrust::default(), &claims, MAX_REDUNDANCY),
    ]
}

/// The extension figure: fused accuracy vs. corroborating sources.
pub fn redundancy_experiment(study: &Study, domain: Domain) -> Figure {
    let mut fig = redundancy_figure(&fusion_reports(study, domain));
    fig.id = format!("ext-redundancy-{}", domain.slug());
    fig.title = format!(
        "{}: extraction accuracy vs. corroborating sources",
        domain.display_name()
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn fusion_beats_single_source_on_corpus_claims() {
        let study = Study::new(StudyConfig::quick());
        let reports = fusion_reports(&study, Domain::Restaurants);
        assert_eq!(reports.len(), 3);
        let first = &reports[0];
        let majority = &reports[1];
        let trust = &reports[2];
        assert_eq!(first.strategy, "first-claim");
        assert!(majority.accuracy > first.accuracy);
        assert!(trust.accuracy >= majority.accuracy - 0.01);
        assert!(majority.accuracy > 0.9);
    }

    #[test]
    fn redundancy_figure_is_monotoneish() {
        let study = Study::new(StudyConfig::quick());
        let fig = redundancy_experiment(&study, Domain::Banks);
        assert!(fig.id.contains("banks"));
        let majority = fig.series_named("majority").expect("majority series");
        // Accuracy at the top redundancy bucket beats the bottom one.
        let first = majority.points.first().unwrap().1;
        let last = majority.points.last().unwrap().1;
        assert!(
            last >= first,
            "majority accuracy should not degrade with redundancy: {first} -> {last}"
        );
    }
}
