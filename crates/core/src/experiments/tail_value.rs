//! Figures 6–8: demand and the value of tail extraction (§4).

use crate::cache::Study;
use webstruct_demand::{
    cdf_figure, fig7 as demand_fig7, fig8 as demand_fig8, pdf_figure, Channel, InfoDecay,
    StudySite,
};
use webstruct_util::report::{Figure, Table};

/// Figure 6: the four aggregate demand panels — CDF and PDF for search and
/// browse data, each with one curve per site (imdb, amazon, yelp).
pub fn fig6(study: &Study) -> Vec<Figure> {
    let studies: Vec<_> = StudySite::ALL.iter().map(|&s| study.traffic(s)).collect();
    let refs: Vec<&webstruct_demand::TrafficStudy> =
        studies.iter().map(std::convert::AsRef::as_ref).collect();
    vec![
        cdf_figure(&refs, Channel::Search),
        pdf_figure(&refs, Channel::Search),
        cdf_figure(&refs, Channel::Browse),
        pdf_figure(&refs, Channel::Browse),
    ]
}

/// Figure 7: normalized demand vs. number of existing reviews, one panel
/// per site (yelp, amazon, imdb — the paper's order).
pub fn fig7(study: &Study) -> Vec<Figure> {
    [StudySite::Yelp, StudySite::Amazon, StudySite::Imdb]
        .iter()
        .map(|&s| demand_fig7(&study.traffic(s)))
        .collect()
}

/// Figure 8: average relative value-add `VA(n)/VA(0)`, one panel per site.
pub fn fig8(study: &Study) -> Vec<Figure> {
    fig8_with_decay(study, InfoDecay::InverseLinear)
}

/// Figure 8 under an alternative information-decay model (the paper's
/// step-function discussion).
pub fn fig8_with_decay(study: &Study, decay: InfoDecay) -> Vec<Figure> {
    [StudySite::Yelp, StudySite::Amazon, StudySite::Imdb]
        .iter()
        .map(|&s| demand_fig8(&study.traffic(s), decay))
        .collect()
}

/// Extension: the user-level tail analysis §4.2 cites from Goel et al. —
/// tail entities hold a minority of demand yet nearly every user touches
/// them.
pub fn user_tail_table(study: &Study) -> Table {
    let mut table = Table::new(
        "User-level tail analysis (tail = bottom 80% of inventory)",
        &[
            "Site",
            "Channel",
            "Tail demand share",
            "Users touching tail",
            "Regular tail users",
        ],
    );
    for site in StudySite::ALL {
        let t = study.traffic(site);
        for (channel, stats) in [
            ("search", t.tail_stats_search),
            ("browse", t.tail_stats_browse),
        ] {
            table.push_row(vec![
                site.slug().to_string(),
                channel.to_string(),
                format!("{:.1}%", 100.0 * stats.tail_demand_share),
                format!("{:.1}%", 100.0 * stats.touching_fraction()),
                format!("{:.1}%", 100.0 * stats.regular_fraction()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn quick_study() -> Study {
        Study::new(StudyConfig::quick())
    }

    #[test]
    fn fig6_has_four_panels_of_three_sites() {
        let mut study = quick_study();
        let figs = fig6(&study);
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.series.len(), 3, "{}", f.id);
            assert!(f.series_named("imdb").is_some());
            assert!(f.series_named("yelp").is_some());
        }
        assert!(figs[1].log_x && figs[1].log_y, "pdf panels are log-log");
    }

    #[test]
    fn fig6_ordering_imdb_sharpest() {
        let mut study = quick_study();
        let figs = fig6(&study);
        // In the CDF panel, at 20% inventory imdb > amazon > yelp.
        let cdf = &figs[0];
        let at = |name: &str| cdf.series_named(name).unwrap().interpolate(0.2).unwrap();
        let (i, a, y) = (at("imdb"), at("amazon"), at("yelp"));
        assert!(i > a && a > y, "imdb {i}, amazon {a}, yelp {y}");
        assert!(i > 0.85, "imdb top-20% share {i}");
    }

    #[test]
    fn fig7_demand_rises_with_reviews() {
        let mut study = quick_study();
        let figs = fig7(&study);
        assert_eq!(figs.len(), 3);
        for f in &figs {
            for s in &f.series {
                let first = s.points.first().unwrap().1;
                let last = s.points.last().unwrap().1;
                assert!(
                    last > first,
                    "{} {}: head z-demand {last} should exceed tail {first}",
                    f.id,
                    s.name
                );
            }
        }
    }

    #[test]
    fn fig8_shapes_match_paper() {
        let mut study = quick_study();
        let figs = fig8(&study);
        assert_eq!(figs.len(), 3);
        for f in &figs {
            for s in &f.series {
                assert!(!s.points.is_empty(), "{} {}", f.id, s.name);
                assert!((s.points[0].1 - 1.0).abs() < 1e-9, "VA(0)/VA(0) = 1");
            }
        }
        // Yelp and Amazon decline at the head.
        for f in &figs[..2] {
            for s in &f.series {
                assert!(
                    s.points.last().unwrap().1 < 1.0,
                    "{} {}: head ratio should fall below 1",
                    f.id,
                    s.name
                );
            }
        }
        // Imdb has an interior bump above 1.
        let imdb = &figs[2];
        for s in &imdb.series {
            let max = s
                .points
                .iter()
                .map(|&(_, y)| y)
                .fold(f64::MIN, f64::max);
            assert!(max > 1.0, "imdb {}: bump {max}", s.name);
            assert!(
                s.points.last().unwrap().1 < max,
                "imdb {}: head must fall from the bump",
                s.name
            );
        }
    }

    #[test]
    fn user_tail_table_has_six_rows() {
        let mut study = quick_study();
        let table = user_tail_table(&study);
        assert_eq!(table.rows.len(), 6);
        let md = table.to_markdown();
        assert!(md.contains("imdb"));
        assert!(md.contains("browse"));
    }

    #[test]
    fn step_decay_variant_runs() {
        let mut study = quick_study();
        let figs = fig8_with_decay(&study, InfoDecay::Step(10));
        assert_eq!(figs.len(), 3);
        // Step decay zeroes head-bin value-add entirely.
        for f in &figs {
            for s in &f.series {
                assert!(s.points.last().unwrap().1 < 0.5, "{} {}", f.id, s.name);
            }
        }
    }
}
