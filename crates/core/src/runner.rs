//! Run every experiment and write report artifacts.
//!
//! The study splits into independent figure families (spread, tail value,
//! connectivity) that share only the thread-safe [`Study`] cache. With
//! more than one worker thread available (see
//! [`webstruct_util::par::num_threads`]) the families run concurrently;
//! output is assembled in fixed paper order either way, and per-key
//! seeding makes the artifacts byte-identical to the sequential run.
//!
//! Every family runs behind a `catch_unwind` backstop: a panic inside
//! one experiment removes that family's artifacts and records a
//! [`FamilyFailure`], but the other families still run and their
//! artifacts are still written (plus a `DEGRADED.md` report naming what
//! failed). Set the `WEBSTRUCT_FAIL_FAMILY` environment variable to a
//! family name to run a chaos drill against a live binary.

use crate::cache::Study;
use crate::experiments::{connectivity, discovery, linkage, redundancy, spread, table1, tail_value};
use webstruct_corpus::domain::Domain;
use crate::study::StudyConfig;
use std::io::Write as _;
use std::path::Path;
use webstruct_util::par;
use webstruct_util::report::{Figure, Table};

/// Environment variable naming a figure family to fail on purpose
/// (chaos drill): one of `spread`, `tail-value`, `connectivity`,
/// `ext-discovery`, `ext-redundancy`, `ext-user-tail`, `ext-linkage`,
/// `ext-failure`.
pub const FAIL_FAMILY_ENV: &str = "WEBSTRUCT_FAIL_FAMILY";

/// One figure family that died: which one, and the panic it died with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyFailure {
    /// Family name (e.g. `"tail-value"`).
    pub family: String,
    /// The panic message the family failed with.
    pub error: String,
}

/// Wall-clock timing of one figure family (observability only — never
/// part of the deterministic metric snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyTiming {
    /// Family name (e.g. `"spread"`).
    pub family: String,
    /// Wall-clock seconds the family took (including a failed attempt).
    pub secs: f64,
}

/// The complete output of a reproduction run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Every figure, in paper order.
    pub figures: Vec<Figure>,
    /// Every table, in paper order.
    pub tables: Vec<Table>,
    /// Families that panicked instead of producing artifacts. Empty on a
    /// healthy run.
    pub failures: Vec<FamilyFailure>,
    /// Per-family wall-clock timings, in fixed family order regardless of
    /// scheduling.
    pub timings: Vec<FamilyTiming>,
}

impl RunOutput {
    /// Find a figure by id (e.g. `"fig4b"`).
    #[must_use]
    pub fn figure(&self, id: &str) -> Option<&Figure> {
        self.figures.iter().find(|f| f.id == id)
    }

    /// Whether every family completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one figure family behind a `catch_unwind` backstop, injecting a
/// panic first when `chaos` names this family. The closure only touches
/// the panic-safe [`Study`] cache (its locks are never held across
/// experiment code), so `AssertUnwindSafe` is sound: a dead family
/// leaves the cache usable by the others.
fn run_family<T>(
    name: &str,
    chaos: Option<&str>,
    f: impl FnOnce() -> T,
) -> (Result<T, FamilyFailure>, FamilyTiming) {
    let inject = chaos == Some(name);
    let _span = webstruct_util::obs::span_with(|| format!("family:{name}"));
    let start = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        assert!(!inject, "chaos drill: injected failure into the '{name}' family");
        f()
    }))
    .map_err(|payload| FamilyFailure {
        family: name.to_string(),
        error: panic_message(payload.as_ref()),
    });
    let timing = FamilyTiming {
        family: name.to_string(),
        secs: start.elapsed().as_secs_f64(),
    };
    webstruct_util::obs::metrics().add(
        if result.is_ok() {
            "runner.families_ok"
        } else {
            "runner.families_failed"
        },
        1,
    );
    (result, timing)
}

/// The chaos target from [`FAIL_FAMILY_ENV`], if set.
fn chaos_from_env() -> Option<String> {
    std::env::var(FAIL_FAMILY_ENV).ok().filter(|s| !s.is_empty())
}

/// The spread family: Figures 1–5, in paper order.
fn spread_family(study: &Study) -> Vec<Figure> {
    let mut figures = Vec::new();
    figures.extend(spread::fig1(study));
    figures.extend(spread::fig2(study));
    figures.push(spread::fig3(study));
    let (fig4a, fig4b) = spread::fig4(study);
    figures.push(fig4a);
    figures.push(fig4b);
    figures.push(spread::fig5(study));
    figures
}

/// The tail-value family: Figures 6–8, in paper order.
fn tail_family(study: &Study) -> Vec<Figure> {
    let mut figures = Vec::new();
    figures.extend(tail_value::fig6(study));
    figures.extend(tail_value::fig7(study));
    figures.extend(tail_value::fig8(study));
    figures
}

/// The connectivity family: Figure 9 and Table 2.
fn connectivity_family(study: &Study) -> (Vec<Figure>, Table) {
    let figures = connectivity::fig9(study);
    let t2 = connectivity::table2(study);
    (figures, t2)
}

/// Run the full study: every table and figure of the paper.
///
/// Independent figure families execute on separate threads when more than
/// one worker is configured; the artifact list is identical to the
/// sequential run either way. A panicking family degrades the output
/// (see [`RunOutput::failures`]) instead of killing the run; set
/// [`FAIL_FAMILY_ENV`] to drill that path.
#[must_use]
pub fn run_all(config: &StudyConfig) -> RunOutput {
    run_all_chaos(config, chaos_from_env().as_deref())
}

/// [`run_all`] with an explicit chaos target: when `fail_family` names a
/// family (`spread`, `tail-value`, `connectivity`), that family panics
/// on entry and the run degrades around it.
#[must_use]
pub fn run_all_chaos(config: &StudyConfig, fail_family: Option<&str>) -> RunOutput {
    let _span = webstruct_util::span!("run_all");
    let study = Study::new(config.clone());
    let chaos = fail_family;
    let ((spread_res, spread_t), (tail_res, tail_t), (conn_res, conn_t)) =
        if par::num_threads() == 1 {
            (
                run_family("spread", chaos, || spread_family(&study)),
                run_family("tail-value", chaos, || tail_family(&study)),
                run_family("connectivity", chaos, || connectivity_family(&study)),
            )
        } else {
            std::thread::scope(|s| {
                // Panics are caught inside each spawned closure, so `join`
                // only fails if a thread dies outside the backstop (it
                // cannot, short of an abort).
                let tail = s.spawn(|| run_family("tail-value", chaos, || tail_family(&study)));
                let conn =
                    s.spawn(|| run_family("connectivity", chaos, || connectivity_family(&study)));
                // The heaviest family runs on the current thread.
                let spread = run_family("spread", chaos, || spread_family(&study));
                (
                    spread,
                    tail.join().expect("tail-value worker died outside the backstop"),
                    conn.join().expect("connectivity worker died outside the backstop"),
                )
            })
        };
    let mut figures = Vec::new();
    let mut tables = vec![table1()];
    let mut failures = Vec::new();
    match spread_res {
        Ok(figs) => figures.extend(figs),
        Err(failure) => failures.push(failure),
    }
    match tail_res {
        Ok(figs) => figures.extend(figs),
        Err(failure) => failures.push(failure),
    }
    match conn_res {
        Ok((figs, table2)) => {
            figures.extend(figs);
            tables.push(table2);
        }
        Err(failure) => failures.push(failure),
    }
    let m = webstruct_util::obs::metrics();
    m.add("runner.figures", figures.len() as u64);
    m.add("runner.tables", tables.len() as u64);
    RunOutput {
        figures,
        tables,
        failures,
        timings: vec![spread_t, tail_t, conn_t],
    }
}

/// Run the extension experiments (beyond the paper's own artifacts):
/// discovery policies, redundancy fusion, user-level tail analysis,
/// listing deduplication, and discovery under failure, all for a
/// representative domain.
#[must_use]
pub fn run_extensions(config: &StudyConfig) -> RunOutput {
    run_extensions_chaos(config, chaos_from_env().as_deref())
}

/// [`run_extensions`] with an explicit chaos target (`ext-discovery`,
/// `ext-redundancy`, `ext-user-tail`, `ext-linkage`, `ext-failure`).
#[must_use]
pub fn run_extensions_chaos(config: &StudyConfig, fail_family: Option<&str>) -> RunOutput {
    let _span = webstruct_util::span!("run_extensions");
    let study = Study::new(config.clone());
    let chaos = fail_family;
    let run_disc = || discovery::discovery_policies(&study, Domain::Restaurants, 2_000);
    let run_red = || redundancy::redundancy_experiment(&study, Domain::Restaurants);
    let run_tail = || tail_value::user_tail_table(&study);
    let run_link = || linkage::linkage_table(&study, Domain::Restaurants);
    let run_fail = || discovery::discovery_under_failure(&study, Domain::Restaurants, 2_000);
    let ((disc, disc_t), (red, red_t), (tail, tail_t), (link, link_t), (fail, fail_t)) =
        if par::num_threads() == 1 {
            (
                run_family("ext-discovery", chaos, run_disc),
                run_family("ext-redundancy", chaos, run_red),
                run_family("ext-user-tail", chaos, run_tail),
                run_family("ext-linkage", chaos, run_link),
                run_family("ext-failure", chaos, run_fail),
            )
        } else {
            std::thread::scope(|s| {
                let disc = s.spawn(|| run_family("ext-discovery", chaos, run_disc));
                let red = s.spawn(|| run_family("ext-redundancy", chaos, run_red));
                let tail = s.spawn(|| run_family("ext-user-tail", chaos, run_tail));
                let fail = s.spawn(|| run_family("ext-failure", chaos, run_fail));
                let link = run_family("ext-linkage", chaos, run_link);
                (
                    disc.join().expect("discovery worker died outside the backstop"),
                    red.join().expect("redundancy worker died outside the backstop"),
                    tail.join().expect("user-tail worker died outside the backstop"),
                    link,
                    fail.join().expect("failure-sweep worker died outside the backstop"),
                )
            })
        };
    let mut figures = Vec::new();
    let mut tables = Vec::new();
    let mut failures = Vec::new();
    match disc {
        Ok(fig) => figures.push(fig),
        Err(failure) => failures.push(failure),
    }
    match red {
        Ok(fig) => figures.push(fig),
        Err(failure) => failures.push(failure),
    }
    match tail {
        Ok(table) => tables.push(table),
        Err(failure) => failures.push(failure),
    }
    match link {
        Ok(table) => tables.push(table),
        Err(failure) => failures.push(failure),
    }
    match fail {
        Ok((fig, table)) => {
            figures.push(fig);
            tables.push(table);
        }
        Err(failure) => failures.push(failure),
    }
    let m = webstruct_util::obs::metrics();
    m.add("runner.figures", figures.len() as u64);
    m.add("runner.tables", tables.len() as u64);
    RunOutput {
        figures,
        tables,
        failures,
        timings: vec![disc_t, red_t, tail_t, link_t, fail_t],
    }
}

/// Write every artifact under `dir`: one gnuplot `.dat` and one `.csv`
/// per figure, one Markdown file and one `.csv` per table, plus an
/// `index.md` linking them.
///
/// Writing is best-effort per artifact: a failed write is recorded and
/// the remaining artifacts are still attempted, so one bad path never
/// costs the rest of the run's output. When the run itself degraded
/// ([`RunOutput::failures`] non-empty) a `DEGRADED.md` report naming
/// each failed family (and any failed writes) is emitted alongside the
/// artifacts.
///
/// # Errors
/// Returns an error only after attempting every artifact; the message
/// lists each artifact that could not be written and the first error's
/// kind is preserved.
pub fn write_outputs(dir: &Path, output: &RunOutput) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut write_errors: Vec<(String, std::io::Error)> = Vec::new();
    let mut attempt = |name: String, content: Vec<u8>| {
        if let Err(e) = std::fs::write(dir.join(&name), content) {
            write_errors.push((name, e));
        }
    };
    let mut index = String::from("# Reproduction artifacts\n\n## Figures\n\n");
    for fig in &output.figures {
        attempt(format!("{}.dat", fig.id), fig.to_dat().into_bytes());
        attempt(
            format!("{}.csv", fig.id),
            webstruct_util::csv::figure_to_csv(fig).into_bytes(),
        );
        attempt(
            format!("{}.svg", fig.id),
            webstruct_util::svg::figure_to_svg(fig).into_bytes(),
        );
        index.push_str(&format!("- [{}]({}.dat) — {}\n", fig.id, fig.id, fig.title));
    }
    index.push_str("\n## Tables\n\n");
    for (i, table) in output.tables.iter().enumerate() {
        let name = format!("table{}.md", i + 1);
        attempt(name.clone(), table.to_markdown().into_bytes());
        attempt(
            format!("table{}.csv", i + 1),
            webstruct_util::csv::table_to_csv(table).into_bytes(),
        );
        index.push_str(&format!("- [{}]({name})\n", table.title));
    }
    if !output.failures.is_empty() {
        index.push_str("\n**Degraded run** — see [DEGRADED.md](DEGRADED.md).\n");
    }
    attempt("index.md".to_string(), index.into_bytes());
    if !output.failures.is_empty() || !write_errors.is_empty() {
        let mut report = String::from("# Degradation report\n");
        if !output.failures.is_empty() {
            report.push_str("\n## Failed figure families\n\n");
            for f in &output.failures {
                report.push_str(&format!("- `{}` — {}\n", f.family, f.error));
            }
            report.push_str(
                "\nArtifacts from these families are missing; everything else was produced.\n",
            );
        }
        if !write_errors.is_empty() {
            report.push_str("\n## Failed artifact writes\n\n");
            for (name, e) in &write_errors {
                report.push_str(&format!("- `{name}` — {e}\n"));
            }
        }
        if !output.timings.is_empty() {
            report.push_str("\n## Family timings\n\n");
            for t in &output.timings {
                report.push_str(&format!("- `{}` — {:.2}s\n", t.family, t.secs));
            }
        }
        let mut f = std::fs::File::create(dir.join("DEGRADED.md"))?;
        f.write_all(report.as_bytes())?;
    }
    if write_errors.is_empty() {
        Ok(())
    } else {
        let kind = write_errors[0].1.kind();
        let listing = write_errors
            .iter()
            .map(|(name, e)| format!("{name}: {e}"))
            .collect::<Vec<_>>()
            .join("; ");
        Err(std::io::Error::new(
            kind,
            format!(
                "{} of {} artifacts could not be written ({listing})",
                write_errors.len(),
                3 * output.figures.len() + 2 * output.tables.len() + 1
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_produces_every_artifact() {
        let out = run_all(&StudyConfig::quick());
        // 8 + 8 + 1 + 2 + 1 + 4 + 3 + 3 + 3 = 33 figures.
        assert_eq!(out.figures.len(), 33);
        assert_eq!(out.tables.len(), 2);
        for id in [
            "fig1a", "fig1h", "fig2a", "fig3", "fig4a", "fig4b", "fig5",
            "fig6-cdf-search", "fig6-pdf-browse", "fig7-yelp", "fig8-imdb",
            "fig9a", "fig9c",
        ] {
            assert!(out.figure(id).is_some(), "missing {id}");
        }
        // Ids are unique.
        let mut ids: Vec<&str> = out.figures.iter().map(|f| f.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn run_extensions_produces_artifacts() {
        let out = run_extensions(&StudyConfig::quick());
        assert_eq!(out.figures.len(), 3);
        assert_eq!(out.tables.len(), 3);
        assert!(out.is_complete());
        assert!(out.figure("ext-discovery-restaurants").is_some());
        assert!(out.figure("ext-redundancy-restaurants").is_some());
        let fail_fig = out
            .figure("ext-discovery-under-failure-restaurants")
            .expect("failure-sweep figure present");
        assert_eq!(fail_fig.series.len(), 3, "one curve per failure rate");
        // The counters table carries breaker/retry columns per rate.
        let counters = &out.tables[2];
        assert_eq!(counters.rows.len(), 3);
        assert!(counters.headers.iter().any(|h| h == "Retries"));
        assert!(counters.headers.iter().any(|h| h == "Breaker opens"));
    }

    #[test]
    fn write_outputs_creates_files() {
        let out = run_all(&StudyConfig::quick());
        let dir = std::env::temp_dir().join("webstruct-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        write_outputs(&dir, &out).unwrap();
        assert!(dir.join("fig1a.dat").exists());
        assert!(dir.join("fig1a.csv").exists());
        assert!(dir.join("fig1a.svg").exists());
        assert!(dir.join("fig9c.dat").exists());
        assert!(dir.join("table2.md").exists());
        assert!(dir.join("table2.csv").exists());
        assert!(
            !dir.join("DEGRADED.md").exists(),
            "healthy runs produce no degradation report"
        );
        let index = std::fs::read_to_string(dir.join("index.md")).unwrap();
        assert!(index.contains("fig5"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_killing_one_family_leaves_the_rest_alive() {
        let out = run_all_chaos(&StudyConfig::quick(), Some("tail-value"));
        assert!(!out.is_complete());
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].family, "tail-value");
        assert!(
            out.failures[0].error.contains("chaos drill"),
            "failure message was: {}",
            out.failures[0].error
        );
        // Spread and connectivity artifacts survive; no fig6/7/8.
        assert!(out.figure("fig1a").is_some());
        assert!(out.figure("fig9a").is_some());
        assert!(out.figure("fig6-cdf-search").is_none());
        // fig6 (4) + fig7 (3) + fig8 (3) = 10 tail figures are gone.
        assert_eq!(out.figures.len(), 33 - 10);
        assert_eq!(out.tables.len(), 2, "table1 + table2 unaffected");
    }

    #[test]
    fn chaos_killing_connectivity_drops_table2_only() {
        let out = run_all_chaos(&StudyConfig::quick(), Some("connectivity"));
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].family, "connectivity");
        assert_eq!(out.tables.len(), 1, "table1 survives, table2 is gone");
        assert!(out.figure("fig9a").is_none());
        assert!(out.figure("fig1a").is_some());
        assert!(out.figure("fig6-cdf-search").is_some());
    }

    #[test]
    fn chaos_in_extensions_degrades_gracefully() {
        let out = run_extensions_chaos(&StudyConfig::quick(), Some("ext-failure"));
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].family, "ext-failure");
        assert_eq!(out.figures.len(), 2);
        assert_eq!(out.tables.len(), 2);
        assert!(out.figure("ext-discovery-restaurants").is_some());
    }

    #[test]
    fn degraded_run_writes_report_naming_the_failed_family() {
        let out = run_all_chaos(&StudyConfig::quick(), Some("tail-value"));
        let dir = std::env::temp_dir().join("webstruct-test-degraded");
        let _ = std::fs::remove_dir_all(&dir);
        write_outputs(&dir, &out).expect("writes succeed; degradation is not an I/O error");
        assert!(dir.join("fig1a.dat").exists());
        assert!(!dir.join("fig6-cdf-search.dat").exists());
        let report = std::fs::read_to_string(dir.join("DEGRADED.md")).unwrap();
        assert!(report.contains("`tail-value`"), "report: {report}");
        assert!(report.contains("chaos drill"));
        let index = std::fs::read_to_string(dir.join("index.md")).unwrap();
        assert!(index.contains("DEGRADED.md"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_outputs_surfaces_partial_failures_but_writes_the_rest() {
        let out = run_all(&StudyConfig::quick());
        let dir = std::env::temp_dir().join("webstruct-test-partial-write");
        let _ = std::fs::remove_dir_all(&dir);
        // Make two artifact paths unwritable by pre-creating directories
        // with those names (std::fs::write then fails with EISDIR — this
        // works even when the tests run as root, unlike a chmod).
        std::fs::create_dir_all(dir.join("fig1a.dat")).unwrap();
        std::fs::create_dir_all(dir.join("table1.md")).unwrap();
        let err = write_outputs(&dir, &out).expect_err("two artifacts are unwritable");
        let msg = err.to_string();
        assert!(msg.contains("fig1a.dat"), "error was: {msg}");
        assert!(msg.contains("table1.md"), "error was: {msg}");
        assert!(msg.contains("2 of"), "error was: {msg}");
        // Every other artifact was still written.
        assert!(dir.join("fig1a.csv").exists());
        assert!(dir.join("fig1a.svg").exists());
        assert!(dir.join("fig9c.dat").exists());
        assert!(dir.join("table2.md").exists());
        assert!(dir.join("index.md").exists());
        // The write failures are also recorded in the degradation report.
        let report = std::fs::read_to_string(dir.join("DEGRADED.md")).unwrap();
        assert!(report.contains("Failed artifact writes"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
