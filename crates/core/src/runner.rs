//! Run every experiment and write report artifacts.
//!
//! The study splits into independent figure families (spread, tail value,
//! connectivity) that share only the thread-safe [`Study`] cache. With
//! more than one worker thread available (see
//! [`webstruct_util::par::num_threads`]) the families run concurrently;
//! output is assembled in fixed paper order either way, and per-key
//! seeding makes the artifacts byte-identical to the sequential run.

use crate::cache::Study;
use crate::experiments::{connectivity, discovery, linkage, redundancy, spread, table1, tail_value};
use webstruct_corpus::domain::Domain;
use crate::study::StudyConfig;
use std::io::Write as _;
use std::path::Path;
use webstruct_util::par;
use webstruct_util::report::{Figure, Table};

/// The complete output of a reproduction run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Every figure, in paper order.
    pub figures: Vec<Figure>,
    /// Every table, in paper order.
    pub tables: Vec<Table>,
}

impl RunOutput {
    /// Find a figure by id (e.g. `"fig4b"`).
    #[must_use]
    pub fn figure(&self, id: &str) -> Option<&Figure> {
        self.figures.iter().find(|f| f.id == id)
    }
}

/// The spread family: Figures 1–5, in paper order.
fn spread_family(study: &Study) -> Vec<Figure> {
    let mut figures = Vec::new();
    figures.extend(spread::fig1(study));
    figures.extend(spread::fig2(study));
    figures.push(spread::fig3(study));
    let (fig4a, fig4b) = spread::fig4(study);
    figures.push(fig4a);
    figures.push(fig4b);
    figures.push(spread::fig5(study));
    figures
}

/// The tail-value family: Figures 6–8, in paper order.
fn tail_family(study: &Study) -> Vec<Figure> {
    let mut figures = Vec::new();
    figures.extend(tail_value::fig6(study));
    figures.extend(tail_value::fig7(study));
    figures.extend(tail_value::fig8(study));
    figures
}

/// The connectivity family: Figure 9 and Table 2.
fn connectivity_family(study: &Study) -> (Vec<Figure>, Table) {
    let figures = connectivity::fig9(study);
    let t2 = connectivity::table2(study);
    (figures, t2)
}

/// Run the full study: every table and figure of the paper.
///
/// Independent figure families execute on separate threads when more than
/// one worker is configured; the artifact list is identical to the
/// sequential run either way.
#[must_use]
pub fn run_all(config: &StudyConfig) -> RunOutput {
    let study = Study::new(config.clone());
    let (spread_figs, tail_figs, (conn_figs, table2)) = if par::num_threads() == 1 {
        (
            spread_family(&study),
            tail_family(&study),
            connectivity_family(&study),
        )
    } else {
        std::thread::scope(|s| {
            let tail = s.spawn(|| tail_family(&study));
            let conn = s.spawn(|| connectivity_family(&study));
            // The heaviest family runs on the current thread.
            let spread = spread_family(&study);
            (
                spread,
                tail.join().expect("tail-value family panicked"),
                conn.join().expect("connectivity family panicked"),
            )
        })
    };
    let mut figures = spread_figs;
    figures.extend(tail_figs);
    figures.extend(conn_figs);
    let tables = vec![table1(), table2];
    RunOutput { figures, tables }
}

/// Run the extension experiments (beyond the paper's own artifacts):
/// discovery policies, redundancy fusion, user-level tail analysis, and
/// listing deduplication, all for a representative domain.
#[must_use]
pub fn run_extensions(config: &StudyConfig) -> RunOutput {
    let study = Study::new(config.clone());
    let (figures, tables) = if par::num_threads() == 1 {
        (
            vec![
                discovery::discovery_policies(&study, Domain::Restaurants, 2_000),
                redundancy::redundancy_experiment(&study, Domain::Restaurants),
            ],
            vec![
                tail_value::user_tail_table(&study),
                linkage::linkage_table(&study, Domain::Restaurants),
            ],
        )
    } else {
        std::thread::scope(|s| {
            let disc = s.spawn(|| discovery::discovery_policies(&study, Domain::Restaurants, 2_000));
            let red = s.spawn(|| redundancy::redundancy_experiment(&study, Domain::Restaurants));
            let tail = s.spawn(|| tail_value::user_tail_table(&study));
            let link = linkage::linkage_table(&study, Domain::Restaurants);
            (
                vec![
                    disc.join().expect("discovery experiment panicked"),
                    red.join().expect("redundancy experiment panicked"),
                ],
                vec![tail.join().expect("user-tail experiment panicked"), link],
            )
        })
    };
    RunOutput { figures, tables }
}

/// Write every artifact under `dir`: one gnuplot `.dat` and one `.csv`
/// per figure, one Markdown file and one `.csv` per table, plus an
/// `index.md` linking them.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_outputs(dir: &Path, output: &RunOutput) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut index = String::from("# Reproduction artifacts\n\n## Figures\n\n");
    for fig in &output.figures {
        std::fs::write(dir.join(format!("{}.dat", fig.id)), fig.to_dat())?;
        std::fs::write(
            dir.join(format!("{}.csv", fig.id)),
            webstruct_util::csv::figure_to_csv(fig),
        )?;
        std::fs::write(
            dir.join(format!("{}.svg", fig.id)),
            webstruct_util::svg::figure_to_svg(fig),
        )?;
        index.push_str(&format!("- [{}]({}.dat) — {}\n", fig.id, fig.id, fig.title));
    }
    index.push_str("\n## Tables\n\n");
    for (i, table) in output.tables.iter().enumerate() {
        let name = format!("table{}.md", i + 1);
        std::fs::write(dir.join(&name), table.to_markdown())?;
        std::fs::write(
            dir.join(format!("table{}.csv", i + 1)),
            webstruct_util::csv::table_to_csv(table),
        )?;
        index.push_str(&format!("- [{}]({name})\n", table.title));
    }
    let mut f = std::fs::File::create(dir.join("index.md"))?;
    f.write_all(index.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_produces_every_artifact() {
        let out = run_all(&StudyConfig::quick());
        // 8 + 8 + 1 + 2 + 1 + 4 + 3 + 3 + 3 = 33 figures.
        assert_eq!(out.figures.len(), 33);
        assert_eq!(out.tables.len(), 2);
        for id in [
            "fig1a", "fig1h", "fig2a", "fig3", "fig4a", "fig4b", "fig5",
            "fig6-cdf-search", "fig6-pdf-browse", "fig7-yelp", "fig8-imdb",
            "fig9a", "fig9c",
        ] {
            assert!(out.figure(id).is_some(), "missing {id}");
        }
        // Ids are unique.
        let mut ids: Vec<&str> = out.figures.iter().map(|f| f.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn run_extensions_produces_artifacts() {
        let out = run_extensions(&StudyConfig::quick());
        assert_eq!(out.figures.len(), 2);
        assert_eq!(out.tables.len(), 2);
        assert!(out.figure("ext-discovery-restaurants").is_some());
        assert!(out.figure("ext-redundancy-restaurants").is_some());
    }

    #[test]
    fn write_outputs_creates_files() {
        let out = run_all(&StudyConfig::quick());
        let dir = std::env::temp_dir().join("webstruct-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        write_outputs(&dir, &out).unwrap();
        assert!(dir.join("fig1a.dat").exists());
        assert!(dir.join("fig1a.csv").exists());
        assert!(dir.join("fig1a.svg").exists());
        assert!(dir.join("fig9c.dat").exists());
        assert!(dir.join("table2.md").exists());
        assert!(dir.join("table2.csv").exists());
        let index = std::fs::read_to_string(dir.join("index.md")).unwrap();
        assert!(index.contains("fig5"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
