//! The incremental recomputation engine: epochs, dirty slices and the
//! content-addressed extraction cache.
//!
//! ## The dependency map
//!
//! Everything downstream of the corpus is a pure function of bytes the
//! store already fingerprints:
//!
//! ```text
//! site revisions ──> page bytes ──> shard payloads (WSP1 sha256)
//!                                        │
//!                        extractor fingerprint (version + config)
//!                                        │
//!                            extraction snapshots (ext-NNNNN.wse)
//!                                        │
//!              ┌─────────────────────────┼─────────────────────────┐
//!        ExtractedWeb            StreamingCoverage          GraphAccumulator
//!              └─────────────────────────┴─────────────────────────┘
//!                               epoch output digest
//! ```
//!
//! A mutation bumps the *revision* of a handful of sites; only the shards
//! containing those sites change payload digest, so the store re-renders
//! exactly the dirty slice ([`RecoveryReport::shards_stale`]) and every
//! clean shard's extraction replays from its cached snapshot. The merge
//! operators downstream (`ExtractedWeb::merge`, `StreamingCoverage::merge`,
//! `GraphAccumulator::merge`) are commutative over disjoint site ranges,
//! which is what makes the warm path byte-identical to a cold run at the
//! same epoch — at any thread count.
//!
//! ## Determinism contract
//!
//! [`Epoch::mutate`] is seed-pure: the dirty set is a function of
//! `(fraction, seed, n_sites)` only, in the `FaultPlan` style — no clocks,
//! no global RNG. Two processes that apply the same mutation sequence and
//! call [`Epoch::run`] produce identical manifests, identical cache files
//! and identical [`EpochReport::output_digest`]s, whether they arrived
//! warm or cold.

use crate::study::{reference_entity_count, StudyConfig};
use std::path::Path;
use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::extcache::{self, ExtLoad};
use webstruct_corpus::manifest::ExtEntry;
use webstruct_corpus::page::PageConfig;
use webstruct_corpus::shard::{RecoveryReport, ShardError, ShardStore, ShardedWeb};
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_coverage::StreamingCoverage;
use webstruct_extract::{
    train_review_classifier, ExtractedWeb, Extractor, EXTRACTOR_VERSION,
};
use webstruct_graph::{BipartiteGraph, GraphAccumulator, GraphError};
use webstruct_util::ids::SiteId;
use webstruct_util::iofault::FaultSession;
use webstruct_util::rng::{Seed, Xoshiro256};
use webstruct_util::sha::Sha256;
use webstruct_util::{obs, par};

/// Coverage is tracked for `k = 1..=COVERAGE_MAX_K`, matching the
/// paper's redundancy sweep.
pub const COVERAGE_MAX_K: usize = 5;

/// Default shard size for epoch stores: small enough that a 1% site
/// mutation dirties a small *fraction* of shards at quick scale.
pub const DEFAULT_EPOCH_SHARD_BYTES: u64 = 1 << 20;

/// What went wrong during an epoch run.
#[derive(Debug)]
pub enum EpochError {
    /// The shard store failed (render, recovery, cache or manifest I/O).
    Store(ShardError),
    /// A cached snapshot passed its digest but failed structural decode —
    /// only reachable if the snapshot encoding changed without bumping
    /// [`EXTRACTOR_VERSION`].
    Snapshot(&'static str),
    /// The entity–site graph rejected an extracted occurrence.
    Graph(GraphError),
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::Store(e) => write!(f, "epoch store error: {e}"),
            EpochError::Snapshot(m) => write!(f, "epoch snapshot error: {m}"),
            EpochError::Graph(e) => write!(f, "epoch graph error: {e}"),
        }
    }
}

impl std::error::Error for EpochError {}

impl From<ShardError> for EpochError {
    fn from(e: ShardError) -> Self {
        EpochError::Store(e)
    }
}

/// What one [`Epoch::run`] did and produced.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch counter after the mutations applied so far (0 = pristine).
    pub epoch: u32,
    /// What the store's recovery pass did (dirty slice =
    /// [`shards_stale`](RecoveryReport::shards_stale) +
    /// [`shards_rendered`](RecoveryReport::shards_rendered) on a warm
    /// run).
    pub recovery: RecoveryReport,
    /// Shards whose extraction replayed from the content-addressed cache.
    pub cache_hits: usize,
    /// Shards extracted from page bytes (no usable cache entry).
    pub cache_misses: usize,
    /// Cache entries that existed but could not be trusted: poisoned
    /// payloads, stale keys or an extractor-fingerprint change.
    pub cache_invalidations: usize,
    /// k-coverage of the identifying attribute, `k = 1..=COVERAGE_MAX_K`.
    pub coverages: Vec<f64>,
    /// Edges of the entity–site graph at this epoch.
    pub graph_edges: usize,
    /// Total (site, entity) occurrence pairs for the identifying
    /// attribute.
    pub occurrences: usize,
    /// SHA-256 over every output of the run: the merged extraction
    /// snapshot, the coverage curve, the graph summary and the committed
    /// manifest. Two runs that reach the same epoch state must agree on
    /// this digest byte for byte, warm or cold, at any thread count.
    pub output_digest: [u8; 32],
}

impl EpochReport {
    /// The output digest as lowercase hex.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.output_digest {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

/// The identifying attribute whose occurrence tables feed coverage and
/// the graph: ISBNs for books, phone numbers everywhere else (the
/// paper's Table 2 convention).
#[must_use]
pub fn identifying_attribute(domain: Domain) -> Attribute {
    if domain == Domain::Books {
        Attribute::Isbn
    } else {
        Attribute::Phone
    }
}

/// A mutable corpus plus the machinery to re-run the pipeline
/// incrementally after each mutation.
///
/// ```no_run
/// use webstruct_core::epoch::Epoch;
/// use webstruct_core::study::StudyConfig;
/// use webstruct_corpus::domain::Domain;
/// use webstruct_util::Seed;
///
/// let mut epoch = Epoch::new(Domain::Restaurants, StudyConfig::quick());
/// let dir = std::path::Path::new("artifacts/epoch-store");
/// let cold = epoch.run(dir, 4).unwrap();          // epoch 0: everything renders
/// epoch.mutate(0.01, Seed(7));                    // dirty 1% of sites
/// let warm = epoch.run(dir, 4).unwrap();          // re-runs only the dirty slice
/// assert!(warm.cache_hits > 0);
/// ```
pub struct Epoch {
    domain: Domain,
    config: StudyConfig,
    catalog: EntityCatalog,
    web: Web,
    shard_bytes: u64,
    epoch: u32,
    // The trained review classifier is a pure function of the training
    // seed, so it is memoised across runs: a warm re-run must not pay
    // the (fixed, non-incremental) training cost again.
    review_clf: std::sync::OnceLock<webstruct_extract::NaiveBayes>,
}

impl Epoch {
    /// Generate the catalog and web for `domain` at epoch 0 — the same
    /// generation path as [`crate::study::DomainStudy::generate`], so an
    /// epoch-0 store is byte-identical to the streaming pipeline's.
    #[must_use]
    pub fn new(domain: Domain, config: StudyConfig) -> Self {
        let n_entities =
            ((reference_entity_count(domain) as f64 * config.scale).round() as usize).max(64);
        let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, n_entities), config.seed);
        let web = Web::generate(
            &catalog,
            &WebConfig::preset(domain).scaled(config.scale),
            config.seed,
        );
        Epoch {
            domain,
            config,
            catalog,
            web,
            shard_bytes: DEFAULT_EPOCH_SHARD_BYTES,
            epoch: 0,
            review_clf: std::sync::OnceLock::new(),
        }
    }

    /// Builder: override the shard size the epoch store renders at.
    #[must_use]
    pub fn with_shard_bytes(mut self, bytes: u64) -> Self {
        self.shard_bytes = bytes;
        self
    }

    /// The web at its current revision state.
    #[must_use]
    pub fn web(&self) -> &Web {
        &self.web
    }

    /// The entity catalog.
    #[must_use]
    pub fn catalog(&self) -> &EntityCatalog {
        &self.catalog
    }

    /// The domain this epoch's corpus was generated for.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The study configuration the corpus was generated at.
    #[must_use]
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Epochs applied so far (number of [`mutate`](Epoch::mutate) calls).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Deterministically perturb `fraction` of the corpus's sites —
    /// seed-pure: the dirty set is a function of `(fraction, seed,
    /// n_sites)` only, so two processes applying the same mutation
    /// sequence agree on every byte that follows. Each selected site's
    /// revision is bumped, which re-keys its pages' content RNG; page
    /// *counts* and shard cuts never change, so the dirty shard set is
    /// exactly the shards containing selected sites.
    ///
    /// Returns the number of sites mutated (`⌊fraction · n_sites⌋`,
    /// minimum 1 for any positive fraction).
    ///
    /// # Panics
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn mutate(&mut self, fraction: f64, seed: Seed) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "mutation fraction must be in [0, 1]"
        );
        self.epoch += 1;
        if fraction == 0.0 {
            return 0;
        }
        let n = self.web.n_sites();
        let k = ((n as f64 * fraction).floor() as usize).clamp(1, n);
        let mut rng = Xoshiro256::from_seed(seed.derive("epoch-mutate"));
        let mut picked = rng.sample_indices(n, k);
        picked.sort_unstable();
        for s in picked {
            self.web.bump_revision(s);
        }
        k
    }

    /// Fingerprint of everything that determines extraction output for
    /// fixed page bytes: the pipeline version, the domain, the catalog
    /// universe and the classifier's training seed (the seed fully
    /// determines the trained classifier). Cached snapshots are keyed by
    /// this plus the shard's payload digest; change either and the entry
    /// stops matching.
    #[must_use]
    pub fn extractor_fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"webstruct-extractor-fingerprint-v1\n");
        h.update(&EXTRACTOR_VERSION.to_le_bytes());
        h.update(format!("{:?}", self.domain).as_bytes());
        h.update(&(self.catalog.len() as u64).to_le_bytes());
        h.update(&[u8::from(self.domain.has_attribute(Attribute::Review))]);
        h.update(&self.config.seed.derive("nb").0.to_le_bytes());
        h.finalize()
    }

    fn build_extractor(&self) -> Extractor<'_> {
        let mut extractor = Extractor::new(&self.catalog);
        if self.domain.has_attribute(Attribute::Review) {
            let clf = self.review_clf.get_or_init(|| {
                train_review_classifier(self.config.seed.derive("nb"), 300)
                    .expect("training set is balanced by construction")
            });
            extractor = extractor.with_review_classifier(clf.clone());
        }
        extractor
    }

    /// Bring the store under `dir` to the current epoch state and re-run
    /// the pipeline over it, extracting only shards without a valid
    /// cached snapshot. Produces the merged extraction, the streaming
    /// coverage curve, the entity–site graph, and a digest over all of
    /// them plus the committed manifest.
    ///
    /// Work is scheduled shard-by-shard across `threads` workers; every
    /// downstream accumulator merges commutatively over the disjoint
    /// per-shard site ranges, so the report is byte-identical at any
    /// thread count.
    ///
    /// # Errors
    /// Store/render/cache I/O failures and graph construction failures.
    ///
    /// # Panics
    /// Panics if a worker's partial state goes missing (a bug, not an
    /// environment condition).
    pub fn run(&self, dir: &Path, threads: usize) -> Result<EpochReport, EpochError> {
        self.run_extracted(dir, threads).map(|(report, _)| report)
    }

    /// [`run`](Epoch::run), but also hand back the merged
    /// [`ExtractedWeb`] instead of discarding it after the digest — the
    /// serving layer builds its warm in-memory indexes from exactly the
    /// state the digest covers.
    ///
    /// # Errors
    /// See [`run`](Epoch::run).
    pub fn run_extracted(
        &self,
        dir: &Path,
        threads: usize,
    ) -> Result<(EpochReport, ExtractedWeb), EpochError> {
        let _span = webstruct_util::span!("epoch.run", threads);
        let n_sites = self.web.n_sites();
        let n_entities = self.catalog.len();
        let render_seed = self.config.seed.derive("render");
        let (mut store, recovery) = ShardStore::write_resumable(
            dir,
            &self.web,
            &self.catalog,
            &PageConfig::default(),
            render_seed,
            self.shard_bytes,
        )?;
        let fp = self.extractor_fingerprint();
        let manifest = store.manifest().clone();
        let n_shards = manifest.shards.len();
        // A fingerprint change orphans every carried cache entry at once:
        // count them as invalidations and fall through to re-extraction.
        let manifest_fp_ok = manifest.ext.as_ref().is_some_and(|s| s.fingerprint == fp);
        let fp_invalidations = match &manifest.ext {
            Some(s) if !manifest_fp_ok => s.entries.iter().flatten().count(),
            _ => 0,
        };

        let extractor = self.build_extractor();
        let attr = identifying_attribute(self.domain);
        let sharded = ShardedWeb::Stored(&store);

        struct EpochFold {
            acc: ExtractedWeb,
            cov: StreamingCoverage,
            graph: GraphAccumulator,
            new_entries: Vec<(usize, ExtEntry)>,
            hits: usize,
            misses: usize,
            invalidations: usize,
            err: Option<EpochError>,
        }
        let mut workers = par::par_fold_dynamic_threads(
            threads,
            n_shards,
            || EpochFold {
                acc: ExtractedWeb::new(n_sites, n_entities),
                cov: StreamingCoverage::new(n_entities, COVERAGE_MAX_K),
                graph: GraphAccumulator::new(n_entities, n_sites),
                new_entries: Vec::new(),
                hits: 0,
                misses: 0,
                invalidations: 0,
                err: None,
            },
            |w, i| {
                let entry = &manifest.shards[i];
                let shard_sha = entry.sha256;
                let sites = entry.sites.start as usize..entry.sites.end as usize;
                let cached = if manifest_fp_ok {
                    match manifest.ext.as_ref().and_then(|s| s.entries.get(i)) {
                        Some(Some(e)) => match extcache::load_entry(dir, i, e, shard_sha, fp) {
                            ExtLoad::Hit(payload) => Some(payload),
                            ExtLoad::Miss => None,
                            ExtLoad::Poisoned(_) => {
                                // Detected via digest/key mismatch:
                                // recompute, never trust.
                                w.invalidations += 1;
                                None
                            }
                        },
                        _ => None,
                    }
                } else {
                    None
                };
                let payload = match cached {
                    Some(p) => {
                        w.hits += 1;
                        p
                    }
                    None => {
                        w.misses += 1;
                        let fresh = match extractor.extract_one_shard(&sharded, i, n_sites) {
                            Ok(a) => a,
                            Err(e) => {
                                w.err = Some(EpochError::Store(e));
                                return false;
                            }
                        };
                        let bytes = fresh.shard_snapshot_bytes(sites.clone());
                        // FaultSession is single-threaded by design; each
                        // worker writes under its own clean session.
                        let session = FaultSession::clean();
                        match extcache::write_entry(dir, i, shard_sha, fp, &bytes, &session) {
                            Ok(e) => w.new_entries.push((i, e)),
                            Err(e) => {
                                w.err = Some(EpochError::Store(e));
                                return false;
                            }
                        }
                        bytes
                    }
                };
                // Replay the snapshot into a shard-local accumulator so
                // the streaming aggregates can be fed site by site, then
                // fold it into the worker's partials. Hit and miss paths
                // run the exact same code from here on — that shared
                // suffix is the byte-identity argument in miniature.
                let mut shard_acc = ExtractedWeb::new(n_sites, n_entities);
                if let Err(m) = shard_acc.merge_snapshot(&payload) {
                    w.err = Some(EpochError::Snapshot(m));
                    return false;
                }
                for s in sites {
                    let entities = shard_acc.site_entities(s, attr);
                    w.cov.add_site(&entities);
                    w.graph.add_page(SiteId::new(s as u32), &entities);
                }
                w.acc.merge(shard_acc);
                true
            },
        );

        // Merge worker partials. Every merge below is commutative over
        // the disjoint site ranges the workers processed, so scheduling
        // cannot leak into the outputs.
        let mut first = workers.remove(0);
        for w in workers {
            if let Some(e) = w.err {
                return Err(e);
            }
            first.acc.merge(w.acc);
            first.cov.merge(&w.cov);
            first.graph.merge(w.graph);
            first.new_entries.extend(w.new_entries);
            first.hits += w.hits;
            first.misses += w.misses;
            first.invalidations += w.invalidations;
        }
        if let Some(e) = first.err {
            return Err(e);
        }

        // Commit the cache state: carried entries survive, recomputed
        // shards get their fresh entries, all under our fingerprint.
        let mut entries: Vec<Option<ExtEntry>> = vec![None; n_shards];
        if manifest_fp_ok {
            if let Some(section) = &manifest.ext {
                entries.clone_from_slice(&section.entries);
            }
        }
        for (i, e) in first.new_entries {
            entries[i] = Some(e);
        }
        store.commit_extractions(fp, entries, &FaultSession::clean())?;

        let invalidations = first.invalidations + fp_invalidations;
        let m = obs::metrics();
        m.add("cache.ext_requests", n_shards as u64);
        m.add("cache.ext_hits", first.hits as u64);
        m.add("cache.ext_misses", first.misses as u64);
        m.add("cache.invalidations", invalidations as u64);
        crate::cache::publish_cache_hit_rate();

        let coverages = first.cov.coverages();
        let graph: BipartiteGraph = first.graph.finish().map_err(EpochError::Graph)?;
        let occurrences = first.acc.total_occurrences(attr);

        let mut h = Sha256::new();
        h.update(b"webstruct-epoch-output-v1\n");
        h.update(&first.acc.shard_snapshot_bytes(0..n_sites));
        for c in &coverages {
            h.update(&c.to_bits().to_le_bytes());
        }
        h.update(&(graph.n_edges() as u64).to_le_bytes());
        h.update(&(graph.entities_present() as u64).to_le_bytes());
        h.update(&(occurrences as u64).to_le_bytes());
        h.update(store.manifest().render().as_bytes());
        let output_digest = h.finalize();

        Ok((
            EpochReport {
                epoch: self.epoch,
                recovery,
                cache_hits: first.hits,
                cache_misses: first.misses,
                cache_invalidations: invalidations,
                coverages,
                graph_edges: graph.n_edges(),
                occurrences,
                output_digest,
            },
            first.acc,
        ))
    }

    /// [`run`](Epoch::run) against a throwaway directory with no prior
    /// state — the cold oracle the incremental path is tested against.
    /// The directory is wiped first so nothing can be reused.
    ///
    /// # Errors
    /// See [`run`](Epoch::run).
    pub fn run_cold(&self, dir: &Path, threads: usize) -> Result<EpochReport, EpochError> {
        if dir.exists() {
            std::fs::remove_dir_all(dir).map_err(|e| EpochError::Store(ShardError::Io(e)))?;
        }
        self.run(dir, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("webstruct-epoch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick() -> StudyConfig {
        StudyConfig::quick().with_scale(0.02)
    }

    #[test]
    fn mutate_is_seed_pure_and_counts_sites() {
        let mut a = Epoch::new(Domain::Banks, quick());
        let mut b = Epoch::new(Domain::Banks, quick());
        let ka = a.mutate(0.1, Seed(9));
        let kb = b.mutate(0.1, Seed(9));
        assert_eq!(ka, kb);
        assert!(ka >= 1);
        assert_eq!(a.web().revisions(), b.web().revisions());
        // A different seed dirties a different set.
        let mut c = Epoch::new(Domain::Banks, quick());
        c.mutate(0.1, Seed(10));
        assert_ne!(a.web().revisions(), c.web().revisions());
    }

    #[test]
    fn zero_fraction_mutates_nothing() {
        let mut e = Epoch::new(Domain::Banks, quick());
        assert_eq!(e.mutate(0.0, Seed(1)), 0);
        assert!(e.web().revisions().iter().all(|&r| r == 0));
        assert_eq!(e.epoch(), 1);
    }

    #[test]
    fn warm_rerun_hits_cache_and_matches_cold_digest() {
        let dir = tmpdir("warm");
        let colddir = tmpdir("warm-oracle");
        // Small shards so a 5% site mutation leaves most shards clean.
        let mut e = Epoch::new(Domain::Banks, quick()).with_shard_bytes(16 << 10);
        let first = e.run(&dir, 2).unwrap();
        assert_eq!(first.cache_hits, 0, "epoch 0 has no cache to hit");
        e.mutate(0.05, Seed(3));
        let warm = e.run(&dir, 2).unwrap();
        assert!(warm.cache_hits > 0, "clean shards must replay: {warm:?}");
        assert!(
            warm.recovery.shards_stale > 0,
            "dirty shards re-render: {:?}",
            warm.recovery
        );
        let cold = e.run_cold(&colddir, 2).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(
            warm.output_digest, cold.output_digest,
            "incremental(mutate(E)) must equal cold(mutate(E))"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&colddir);
    }
}
