//! Programmatic paper-vs-measured milestones: the headline numbers of
//! EXPERIMENTS.md, computed from a [`RunOutput`] so reports can never
//! drift from the artifacts they describe.

use crate::runner::RunOutput;
use webstruct_util::report::Table;

/// One comparable milestone.
#[derive(Debug, Clone, PartialEq)]
pub struct Milestone {
    /// Stable identifier.
    pub id: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The paper's reported value (as printed in the paper).
    pub paper: &'static str,
    /// Measured value, when the run contains the artifact.
    pub measured: Option<f64>,
    /// Render the measured value.
    pub unit: Unit,
}

/// How to print a measured value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A fraction rendered as a percentage.
    Percent,
    /// A site count.
    Sites,
    /// A plain ratio.
    Ratio,
}

impl Milestone {
    /// Render the measured value.
    #[must_use]
    pub fn measured_text(&self) -> String {
        match (self.measured, self.unit) {
            (None, _) => "n/a".to_string(),
            (Some(v), Unit::Percent) => format!("{:.1}%", v * 100.0),
            (Some(v), Unit::Sites) => format!("~{v:.0} sites"),
            (Some(v), Unit::Ratio) => format!("{v:.2}"),
        }
    }
}

/// Extract every milestone from a reproduction run.
#[must_use]
pub fn compute_milestones(output: &RunOutput) -> Vec<Milestone> {
    let series = |fig: &str, name: &str| {
        output
            .figure(fig)
            .and_then(|f| f.series_named(name).cloned())
    };
    let mut out = Vec::new();

    let fig1_k1 = series("fig1a", "k=1");
    out.push(Milestone {
        id: "fig1a-top10-k1",
        description: "Restaurant phones: k=1 coverage of the top-10 sites",
        paper: "~93%",
        measured: fig1_k1.as_ref().and_then(|s| s.interpolate(10.0)),
        unit: Unit::Percent,
    });
    out.push(Milestone {
        id: "fig1a-k5-90",
        description: "Restaurant phones: sites needed for 90% k=5 coverage",
        paper: "~5000 (of ~1e5)",
        measured: series("fig1a", "k=5").and_then(|s| s.first_x_reaching(0.9)),
        unit: Unit::Sites,
    });
    out.push(Milestone {
        id: "fig2a-k1-95",
        description: "Restaurant homepages: sites needed for 95% k=1 coverage",
        paper: "~10000 (of ~1e6)",
        measured: series("fig2a", "k=1").and_then(|s| s.first_x_reaching(0.95)),
        unit: Unit::Sites,
    });
    out.push(Milestone {
        id: "fig4a-k1-90",
        description: "Restaurant reviews: sites needed for 90% 1-coverage",
        paper: ">1000",
        measured: series("fig4a", "k=1").and_then(|s| s.first_x_reaching(0.9)),
        unit: Unit::Sites,
    });
    out.push(Milestone {
        id: "fig4b-top1000",
        description: "Share of review pages on the top-1000 sites",
        paper: "~80%",
        measured: series("fig4b", "Aggregate Reviews").and_then(|s| s.interpolate(1000.0)),
        unit: Unit::Percent,
    });
    // Fig 5: max greedy gain.
    let fig5_gain = output.figure("fig5").and_then(|fig| {
        let by_size = fig.series_named("Order by Size")?;
        let greedy = fig.series_named("Greedy Set Cover")?;
        greedy
            .points
            .iter()
            .map(|&(t, g)| g - by_size.interpolate(t).unwrap_or(0.0))
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
    });
    out.push(Milestone {
        id: "fig5-gain",
        description: "Max greedy-cover improvement over order-by-size",
        paper: "insignificant",
        measured: fig5_gain,
        unit: Unit::Ratio,
    });
    out.push(Milestone {
        id: "fig6-imdb-top20",
        description: "IMDb: demand share of top 20% of inventory (search)",
        paper: ">90%",
        measured: series("fig6-cdf-search", "imdb").and_then(|s| s.interpolate(0.2)),
        unit: Unit::Percent,
    });
    out.push(Milestone {
        id: "fig6-yelp-top20",
        description: "Yelp: demand share of top 20% of inventory (search)",
        paper: "~60%",
        measured: series("fig6-cdf-search", "yelp").and_then(|s| s.interpolate(0.2)),
        unit: Unit::Percent,
    });
    // Fig 8: imdb interior peak.
    let imdb_peak = series("fig8-imdb", "search").map(|s| {
        s.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::MIN, f64::max)
    });
    out.push(Milestone {
        id: "fig8-imdb-peak",
        description: "IMDb: peak relative value-add VA(n)/VA(0)",
        paper: ">1 (mid-range bump)",
        measured: imdb_peak,
        unit: Unit::Ratio,
    });
    out.push(Milestone {
        id: "fig8-amazon-head",
        description: "Amazon: head-bin relative value-add (search)",
        paper: "well below 1",
        measured: series("fig8-amazon", "search").and_then(|s| s.final_y()),
        unit: Unit::Ratio,
    });
    out
}

/// Render the milestones as a report table.
#[must_use]
pub fn milestones_table(output: &RunOutput) -> Table {
    let mut table = Table::new(
        "Paper-vs-measured milestones",
        &["Milestone", "Paper", "Measured"],
    );
    for m in compute_milestones(output) {
        table.push_row(vec![
            m.description.to_string(),
            m.paper.to_string(),
            m.measured_text(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_all;
    use crate::study::StudyConfig;

    #[test]
    fn all_milestones_are_computable() {
        let out = run_all(&StudyConfig::quick());
        let ms = compute_milestones(&out);
        assert_eq!(ms.len(), 10);
        for m in &ms {
            assert!(
                m.measured.is_some(),
                "{}: milestone not computable at quick scale",
                m.id
            );
            assert_ne!(m.measured_text(), "n/a");
        }
        // Qualitative relations hold even at quick scale.
        let get = |id: &str| {
            ms.iter()
                .find(|m| m.id == id)
                .and_then(|m| m.measured)
                .unwrap()
        };
        assert!(get("fig1a-top10-k1") > 0.8);
        assert!(get("fig6-imdb-top20") > get("fig6-yelp-top20"));
        assert!(get("fig8-imdb-peak") > 1.0);
        assert!(get("fig8-amazon-head") < 0.5);
    }

    #[test]
    fn table_renders_all_rows() {
        let out = run_all(&StudyConfig::quick());
        let t = milestones_table(&out);
        assert_eq!(t.rows.len(), 10);
        assert!(t.to_markdown().contains("~93%"));
    }

    #[test]
    fn missing_artifacts_yield_na() {
        let empty = RunOutput {
            figures: vec![],
            tables: vec![],
            failures: vec![],
            timings: vec![],
        };
        let ms = compute_milestones(&empty);
        assert!(ms.iter().all(|m| m.measured.is_none()));
        assert!(ms.iter().all(|m| m.measured_text() == "n/a"));
    }
}
